//! The work-stealing scheduler's load-bearing guarantees:
//!
//! 1. **Schedule determinism** — LPT ordering is a pure function of
//!    the plan: equal-cost shards (every shard of one arm at one
//!    scale) always seed the pool in enumeration order.
//! 2. **Merge invariance** — digests and merged metrics are invariant
//!    under thread count *and* adversarial steal interleavings
//!    (property-tested over random `(threads, steal_seed)` pairs via
//!    [`RunPlan::run_with_steal_seed`]).
//!
//! [`RunPlan::run_with_steal_seed`]: riptide_repro::cdn::engine::RunPlan::run_with_steal_seed

use std::sync::OnceLock;

use proptest::prelude::*;
use riptide_repro::cdn::engine::RunPlan;
use riptide_repro::cdn::experiment::ExperimentScale;
use riptide_repro::cdn::schedule::{estimated_events, lpt_order, StealPool};
use riptide_repro::simnet::time::SimDuration;

fn small_scale() -> ExperimentScale {
    let mut scale = ExperimentScale::test();
    scale.duration = SimDuration::from_secs(180);
    scale
}

fn reference_plan() -> RunPlan {
    // Telemetry on, so the invariance claim covers the `metrics=`
    // digest tokens and `merged_metrics()` too.
    RunPlan::probe_comparison(&small_scale(), 1).with_telemetry()
}

/// The serial run every property case compares against, computed once.
fn serial_reference() -> &'static (String, riptide_repro::riptide::telemetry::MetricsSnapshot) {
    static REFERENCE: OnceLock<(String, riptide_repro::riptide::telemetry::MetricsSnapshot)> =
        OnceLock::new();
    REFERENCE.get_or_init(|| {
        let report = reference_plan().run_with_threads(1);
        (report.digest(), report.merged_metrics())
    })
}

#[test]
fn lpt_ordering_is_deterministic_for_equal_cost_shards() {
    // All shards of one probe arm share scale and work shape, so their
    // cost estimates tie; the schedule must fall back to enumeration
    // order, identically on every call.
    let plan = RunPlan::probe_comparison(&small_scale(), 2);
    let costs: Vec<u64> = plan.shards.iter().map(estimated_events).collect();
    assert!(
        costs.windows(2).all(|w| w[0] == w[1]),
        "probe shards at one scale should estimate equal"
    );
    let first = lpt_order(&costs);
    assert_eq!(first, (0..plan.shards.len()).collect::<Vec<_>>());
    for _ in 0..5 {
        assert_eq!(lpt_order(&costs), first, "LPT order must be stable");
    }
    // And the pool deal is equally deterministic.
    for _ in 0..3 {
        let a = StealPool::new(&costs, 3);
        let b = StealPool::new(&costs, 3);
        for w in 0..3 {
            assert_eq!(a.seeded_queue(w), b.seeded_queue(w));
        }
    }
}

#[test]
fn lpt_starts_the_most_expensive_shard_family_first() {
    // A guardrail shard simulates the same wall of organic traffic
    // plus probe senders, so it must estimate at least as expensive as
    // a sender-free cwnd shard at the same scale — and LPT must
    // schedule it first.
    let scale = small_scale();
    let cwnd = RunPlan::cwnd_sweep(&scale, &[None], 1);
    let guard = RunPlan::guardrail_sweep(&scale, &[0.3], 1);
    let cheap = estimated_events(&cwnd.shards[0]);
    let costly = estimated_events(&guard.shards[0]);
    assert!(costly > cheap, "probing shards carry extra estimated load");
    let order = lpt_order(&[cheap, costly]);
    assert_eq!(order[0], 1, "the costlier shard schedules first");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn digests_and_metrics_survive_adversarial_steal_interleavings(
        threads in 1usize..9,
        steal_seed in any::<u64>(),
    ) {
        let (want_digest, want_metrics) = serial_reference();
        let report = reference_plan().run_with_steal_seed(threads, steal_seed);
        prop_assert_eq!(
            &report.digest(),
            want_digest,
            "digest diverged at threads={} steal_seed={}",
            threads,
            steal_seed
        );
        prop_assert_eq!(
            &report.merged_metrics(),
            want_metrics,
            "merged metrics diverged at threads={} steal_seed={}",
            threads,
            steal_seed
        );
    }
}
