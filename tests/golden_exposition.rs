//! Golden test for the Prometheus text exposition.
//!
//! A fixed, fully scripted agent run must render a **byte-exact**
//! exposition: the format is an interface consumed by scrapers, so any
//! drift (metric renamed, help string reworded, bucket layout changed,
//! float formatting altered) should fail loudly and be blessed
//! deliberately.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! RIPTIDE_BLESS=1 cargo test --test golden_exposition
//! ```

use std::net::Ipv4Addr;
use std::path::PathBuf;

use riptide_repro::linuxnet::route::RouteTable;
use riptide_repro::riptide::agent::RiptideAgent;
use riptide_repro::riptide::config::RiptideConfig;
use riptide_repro::riptide::guard::GuardConfig;
use riptide_repro::riptide::history::HistoryStrategy;
use riptide_repro::riptide::observe::{CwndObservation, FnObserver};
use riptide_repro::riptide::telemetry::AgentTelemetry;
use riptide_repro::simnet::time::SimTime;

fn obs(dst: [u8; 4], cwnd: u32, retrans: u64) -> CwndObservation {
    CwndObservation {
        dst: Ipv4Addr::from(dst),
        cwnd,
        bytes_acked: 1_000_000,
        retrans,
        ecn_marks: 0,
    }
}

/// One scripted deployment: jump-starts for three destinations through a
/// two-slot table (forcing an eviction), a loss episode that trips the
/// guard, a TTL sweep, and a graceful shutdown. Every counter family,
/// both breaker gauges, and the install histogram end up populated.
fn scripted_exposition() -> String {
    let cfg = RiptideConfig::builder()
        .history(HistoryStrategy::None)
        .guard(GuardConfig::default())
        .table_capacity(2)
        .build()
        .expect("valid scripted config");
    let mut agent = RiptideAgent::new(cfg).expect("valid scripted config");
    let telemetry = AgentTelemetry::standalone(64);
    // Register the I/O family too, so the golden file pins its names
    // and zero-value rendering alongside the agent metrics.
    let _io = telemetry.io_counters();
    agent.attach_telemetry(telemetry.clone());
    let mut routes = RouteTable::new();

    for (t, n, w) in [(1u64, 1u8, 40u32), (2, 2, 80), (3, 3, 100)] {
        let mut o = FnObserver(move || vec![obs([10, 0, n, 1], w, 0)]);
        agent.tick(SimTime::from_secs(t), &mut o, &mut routes);
    }
    let mut lossy = FnObserver(|| vec![obs([10, 0, 3, 1], 100, 500)]);
    agent.tick(SimTime::from_secs(4), &mut lossy, &mut routes);
    agent.tick(SimTime::from_secs(5), &mut lossy, &mut routes);
    let mut silent = FnObserver(Vec::new);
    agent.tick(SimTime::from_secs(200), &mut silent, &mut routes);
    agent.shutdown(&mut routes);

    telemetry.registry().render_prometheus()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("exposition.prom")
}

#[test]
fn exposition_matches_golden_file_byte_for_byte() {
    let rendered = scripted_exposition();
    assert_eq!(
        rendered,
        scripted_exposition(),
        "scripted exposition must be deterministic across runs"
    );

    let path = golden_path();
    if std::env::var("RIPTIDE_BLESS").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {} ({e}); bless with RIPTIDE_BLESS=1", path.display()));
    assert_eq!(
        rendered,
        want,
        "exposition drifted from {}; re-bless with RIPTIDE_BLESS=1 if intentional",
        path.display()
    );
}

#[test]
fn golden_file_pins_the_exposition_shape() {
    // Belt and braces alongside the byte comparison: the golden scenario
    // actually exercises every metric kind the registry can hold.
    let rendered = scripted_exposition();
    for needle in [
        "# TYPE riptide_ticks_total counter",
        "# TYPE riptide_table_entries gauge",
        "# TYPE riptide_installed_window histogram",
        "riptide_installed_window_bucket{le=\"+Inf\"}",
        "riptide_io_calls_total 0",
        "riptide_guard_trips_total 1",
        "riptide_shutdown_withdrawals_total",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
}
