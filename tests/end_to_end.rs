//! Integration tests spanning all four crates: the full
//! observe → learn → install → jump-start pipeline, run on the simulated
//! CDN exactly as the figure harnesses run it.

use riptide_repro::cdn::experiment::{
    completion_by_bucket, gain_by_percentile, probe_comparison, probe_sender_sites, ExperimentScale,
};
use riptide_repro::cdn::prelude::*;
use riptide_repro::cdn::stats::Cdf;
use riptide_repro::linuxnet::ip_cmd::IpRouteCmd;
use riptide_repro::linuxnet::route::RouteTable;
use riptide_repro::riptide::model;
use riptide_repro::riptide::prelude::*;
use riptide_repro::simnet::prelude::*;
use riptide_repro::simnet::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

fn scale() -> ExperimentScale {
    ExperimentScale::test()
}

#[test]
fn headline_riptide_beats_control_on_large_probes() {
    let cmp = probe_comparison(&scale());
    let sender = probe_sender_sites(&scale())[0];
    for &size in &[50_000u64, 100_000] {
        let pick = |arm: &[ProbeOutcome]| {
            Cdf::new(
                arm.iter()
                    .filter(|p| p.src_site == sender && p.size == size)
                    .map(|p| p.completion.as_millis_f64()),
            )
        };
        let ctl = pick(&cmp.control);
        let rip = pick(&cmp.riptide);
        assert!(
            rip.quantile(0.75) < ctl.quantile(0.75),
            "{size}B p75: riptide {} vs control {}",
            rip.quantile(0.75),
            ctl.quantile(0.75)
        );
    }
}

#[test]
fn headline_small_probes_and_tails_are_unharmed() {
    let cmp = probe_comparison(&scale());
    let sender = probe_sender_sites(&scale())[0];
    let pick = |arm: &[ProbeOutcome], size| {
        Cdf::new(
            arm.iter()
                .filter(|p| p.src_site == sender && p.size == size)
                .map(|p| p.completion.as_millis_f64()),
        )
    };
    // Fig. 12: 10 KB fits the default window — no change either way.
    let ctl = pick(&cmp.control, 10_000);
    let rip = pick(&cmp.riptide, 10_000);
    let rel = (ctl.median() - rip.median()).abs() / ctl.median();
    assert!(rel < 0.2, "10KB medians differ {rel}");
    // §IV-B2: the worst case must not regress dangerously (no induced
    // congestion collapse).
    let ctl100 = pick(&cmp.control, 100_000);
    let rip100 = pick(&cmp.riptide, 100_000);
    assert!(
        rip100.max() <= ctl100.max() * 2.0,
        "tail must not blow up: {} vs {}",
        rip100.max(),
        ctl100.max()
    );
}

#[test]
fn fig15_shape_lower_percentiles_flat_upper_gain() {
    let cmp = probe_comparison(&scale());
    let sender = probe_sender_sites(&scale())[0];
    let gains = gain_by_percentile(&cmp, sender, 50_000);
    let low: Vec<f64> = gains
        .iter()
        .filter(|g| g.percentile <= 40)
        .map(|g| g.gain)
        .collect();
    let high: Vec<f64> = gains
        .iter()
        .filter(|g| g.percentile >= 70)
        .map(|g| g.gain)
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&low).abs() < 0.10,
        "lower percentiles ~unchanged, got {}",
        avg(&low)
    );
    assert!(
        avg(&high) > avg(&low),
        "gains concentrate in upper percentiles: {} vs {}",
        avg(&high),
        avg(&low)
    );
}

#[test]
fn probes_land_in_every_expected_bucket_per_figures_12_to_14() {
    let big = ExperimentScale {
        sites: 34,
        machines_per_pop: 1,
        duration: riptide_repro::simnet::time::SimDuration::from_secs(240),
        warmup: riptide_repro::simnet::time::SimDuration::from_secs(60),
        probe_interval: riptide_repro::simnet::time::SimDuration::from_secs(60),
        seed: 5,
    };
    let outcomes = riptide_repro::cdn::experiment::probe_experiment(&big, false);
    let sender = probe_sender_sites(&big)[0];
    let buckets = completion_by_bucket(&outcomes, sender, 50_000);
    assert_eq!(
        buckets.len(),
        4,
        "all four RTT groups populated from the EU sender: {:?}",
        buckets.keys().collect::<Vec<_>>()
    );
    // Farther buckets have higher completion floors (the best case is
    // one data round trip), as Figs. 12–14 show on their x-axes.
    let floors: Vec<f64> = buckets.values().map(Cdf::min).collect();
    assert!(
        floors.windows(2).all(|w| w[0] < w[1]),
        "bucket completion floors ordered by distance: {floors:?}"
    );
}

#[test]
fn section3c_small_initrwnd_nullifies_riptide() {
    // §III-C: "If a sender opens with large initial congestion window,
    // the default receive window may not be able to handle the first
    // incoming burst" — initrwnd must be raised to c_max or the boost is
    // wasted.
    use riptide_repro::cdn::experiment::{probe_experiment_with, StackTweaks};
    use riptide_repro::riptide::config::RiptideConfig;
    let scale = scale();
    let sender = probe_sender_sites(&scale)[0];
    let med = |outcomes: &[ProbeOutcome]| {
        Cdf::new(
            outcomes
                .iter()
                .filter(|p| p.src_site == sender && p.size == 100_000)
                .map(|p| p.completion.as_millis_f64()),
        )
        .median()
    };
    let proper = med(&probe_experiment_with(
        &scale,
        Some(RiptideConfig::deployment()),
        StackTweaks::default(),
    ));
    let starved = med(&probe_experiment_with(
        &scale,
        Some(RiptideConfig::deployment()),
        StackTweaks {
            initial_rwnd: Some(10),
            ..StackTweaks::default()
        },
    ));
    assert!(
        starved > proper * 1.15,
        "without the initrwnd fix Riptide's boost stalls on flow control: \
         proper {proper:.1}ms vs starved {starved:.1}ms"
    );
}

#[test]
fn simulated_transfer_times_match_the_analytic_model_when_lossless() {
    // Cross-validation of the two independent implementations of the
    // paper's arithmetic: a lossless simulated transfer must take
    // (1 handshake + model RTTs) x RTT, up to serialization epsilon.
    for (rtt_ms, bytes, iw) in [
        (100u64, 10_000u64, 10u32),
        (100, 100_000, 10),
        (100, 100_000, 100),
        (40, 50_000, 25),
        (250, 1_000_000, 50),
    ] {
        let mut w = World::new(TcpConfig::default(), 3);
        let a = w.add_pop();
        let b = w.add_pop();
        let h1 = w.add_host(a);
        let h2 = w.add_host(b);
        w.set_symmetric_path(
            a,
            b,
            PathConfig::with_delay(SimDuration::from_millis(rtt_ms / 2)),
        );
        struct Fixed(u32);
        impl riptide_repro::simnet::world::InitcwndPolicy for Fixed {
            fn initial_cwnd(&self, _s: HostId, _d: std::net::Ipv4Addr) -> Option<u32> {
                Some(self.0)
            }
        }
        w.set_host_policy(h1, Rc::new(Fixed(iw)));
        w.open_and_transfer(h1, h2, bytes);
        w.run_until(SimTime::from_secs(600));
        let recs = w.drain_completed();
        assert_eq!(recs.len(), 1);
        let measured = recs[0].completion_time().as_millis_f64();
        let rtt = SimDuration::from_millis(rtt_ms);
        let predicted =
            model::transfer_time(bytes, w.tcp_config().mss, iw, rtt, true).as_millis_f64();
        let err = (measured - predicted).abs() / predicted;
        assert!(
            err < 0.08,
            "rtt={rtt_ms}ms bytes={bytes} iw={iw}: measured {measured:.1} vs model {predicted:.1}"
        );
    }
}

#[test]
fn agent_commands_round_trip_through_ip_route_syntax() {
    // Every command the agent issues must be parseable by the ip-route
    // grammar and reproduce the same table — fidelity to a real shell
    // deployment.
    let table = Rc::new(RefCell::new(RouteTable::new()));
    let mut controller = SharedRouteController::new(Rc::clone(&table));
    let mut agent = RiptideAgent::new(RiptideConfig::deployment()).unwrap();
    let mut observer = FnObserver(|| {
        (1..=20u8)
            .map(|i| CwndObservation {
                dst: std::net::Ipv4Addr::new(10, 0, i, 1),
                cwnd: 30 + i as u32 * 5,
                bytes_acked: 1 << 20,
                retrans: 0,
                ecn_marks: 0,
            })
            .collect()
    });
    agent.tick(SimTime::from_secs(1), &mut observer, &mut controller);
    let mut silent = FnObserver(Vec::new);
    agent.tick(SimTime::from_secs(200), &mut silent, &mut controller);

    let mut replayed = RouteTable::new();
    for line in controller.render_log().lines() {
        let cmd: IpRouteCmd = line.parse().unwrap_or_else(|e| panic!("{line}: {e}"));
        cmd.apply(&mut replayed).unwrap();
    }
    assert_eq!(replayed.len(), table.borrow().len());
    assert!(replayed.is_empty(), "all routes expired at t=200");
}

#[test]
fn ss_text_drives_the_agent_like_structured_input() {
    // Render a socket table to ss text, parse it back, and feed the
    // parse to the agent: same learned windows as the direct path.
    use riptide_repro::linuxnet::ss::{SockEntry, SockState, SockTable};
    let entries: SockTable = (0..5u8)
        .map(|i| SockEntry {
            src: std::net::Ipv4Addr::new(10, 0, 0, 1),
            dst: std::net::Ipv4Addr::new(10, 0, 9, 1),
            state: SockState::Established,
            cc: "cubic".into(),
            cwnd: 60 + i as u32 * 10,
            ssthresh: Some(50),
            rtt_ms: Some(100.0),
            bytes_acked: 1 << 20,
            retrans: 0,
            lost: 0,
        })
        .collect();
    let text = entries.render();
    let mut parsed = SockTable::parse(&text).unwrap();

    let mut routes = RouteTable::new();
    let mut agent = RiptideAgent::new(
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .unwrap(),
    )
    .unwrap();
    agent.tick(SimTime::from_secs(1), &mut parsed, &mut routes);
    assert_eq!(
        routes.initcwnd_for(std::net::Ipv4Addr::new(10, 0, 9, 1)),
        Some(80),
        "average of 60..=100 is 80"
    );
}

#[test]
fn world_respects_riptide_routes_installed_mid_flight() {
    // A live deployment: the table changes between connections, and each
    // new connection picks up the freshest value.
    let mut w = World::new(TcpConfig::default(), 8);
    let a = w.add_pop();
    let b = w.add_pop();
    let h1 = w.add_host(a);
    let h2 = w.add_host(b);
    w.set_symmetric_path(a, b, PathConfig::with_delay(SimDuration::from_millis(30)));
    let table = Rc::new(RefCell::new(RouteTable::new()));
    struct Policy(Rc<RefCell<RouteTable>>);
    impl InitcwndPolicy for Policy {
        fn initial_cwnd(&self, _s: HostId, d: std::net::Ipv4Addr) -> Option<u32> {
            self.0.borrow().initcwnd_for(d)
        }
    }
    w.set_host_policy(h1, Rc::new(Policy(Rc::clone(&table))));

    let c1 = w.open_connection(h1, h2);
    assert_eq!(w.conn_stats(c1).initial_cwnd, 10, "no route yet: default");

    let dst = w.host_addr(h2);
    table
        .borrow_mut()
        .set_initcwnd(dst.into(), 90)
        .expect("install");
    let c2 = w.open_connection(h1, h2);
    assert_eq!(w.conn_stats(c2).initial_cwnd, 90, "route applies");

    table.borrow_mut().clear_initcwnd(dst.into()).expect("ttl");
    let c3 = w.open_connection(h1, h2);
    assert_eq!(w.conn_stats(c3).initial_cwnd, 10, "expiry restores default");
}

#[test]
fn full_deployment_learns_only_within_clamp() {
    let cfg = CdnSimConfig {
        testbed: TestbedConfig::tiny(4, 2, 77),
        riptide: Some(RiptideConfig::deployment()),
        probes: ProbeConfig {
            interval: SimDuration::from_secs(60),
            ..ProbeConfig::default()
        },
        organic: OrganicConfig::among(vec![0, 1], 0.3),
        cwnd_sample_interval: SimDuration::from_secs(60),
        probe_senders: None,
        faults: riptide_simnet::fault::FaultPlan::none(),
        reconcile_every: None,
        telemetry: false,
        persistence: None,
        gossip: None,
        track_ramp: false,
    };
    let mut sim = CdnSim::new(cfg);
    sim.run_for(SimDuration::from_secs(600));
    // Every probe that used a learned window stayed within [c_min, c_max].
    for p in sim.probe_outcomes() {
        assert!(
            p.initial_cwnd == 10 || (10..=100).contains(&p.initial_cwnd),
            "initial window {} outside clamp",
            p.initial_cwnd
        );
    }
    let stats = sim.agent_stats_total();
    assert!(stats.route_updates > 0);
    assert_eq!(stats.errors, 0, "no control errors in steady state");
}
