//! The parallel experiment engine's two load-bearing guarantees:
//!
//! 1. **Thread-count invariance** — the same `RunPlan` produces a
//!    byte-identical merged `RunReport` digest whether it runs on one
//!    worker or eight (the acceptance test for deterministic sharding).
//! 2. **Order-independent merging** — shard statistics (sorted-CDF
//!    merge, histogram bucket addition) reduce to the same result in
//!    any order, and equal the unsharded computation (property-tested).

use proptest::prelude::*;
use riptide_repro::cdn::engine::{RunPlan, ShardData};
use riptide_repro::cdn::experiment::ExperimentScale;
use riptide_repro::cdn::stats::{Cdf, Histogram};
use riptide_repro::simnet::time::SimDuration;

fn small_scale() -> ExperimentScale {
    let mut scale = ExperimentScale::test();
    scale.duration = SimDuration::from_secs(300);
    scale
}

#[test]
fn probe_plan_is_thread_count_invariant() {
    // 2 arms x 2 senders x 2 replicates = 8 shards: enough that an
    // 8-worker pool actually interleaves completions.
    let plan = RunPlan::probe_comparison(&small_scale(), 2);
    assert_eq!(plan.shards.len(), 8);
    let serial = plan.run_with_threads(1);
    let parallel = plan.run_with_threads(8);
    assert_eq!(
        serial.digest(),
        parallel.digest(),
        "threads=1 and threads=8 must merge to byte-identical reports"
    );
    // The digest covers real data: both arms produced probes.
    assert!(!serial.merged_probes(0).is_empty());
    assert!(!serial.merged_probes(1).is_empty());
    // And the comparison stays seed-paired through the engine.
    let cmp = serial.comparison();
    assert_eq!(cmp.control.len(), cmp.riptide.len());
}

#[test]
fn cwnd_plan_is_thread_count_invariant_and_merge_order_is_plan_order() {
    let plan = RunPlan::cwnd_sweep(&small_scale(), &[None, Some(100)], 2);
    let serial = plan.run_with_threads(1);
    let parallel = plan.run_with_threads(4);
    assert_eq!(serial.digest(), parallel.digest());
    for scenario in 0..2 {
        let a = serial.merged_cwnd(scenario);
        let b = parallel.merged_cwnd(scenario);
        assert_eq!(a, b, "merged CDFs identical for scenario {scenario}");
        assert!(!a.is_empty());
    }
}

#[test]
fn rerunning_the_same_plan_reproduces_the_digest() {
    let plan = RunPlan::cwnd_sweep(&small_scale(), &[Some(50)], 2);
    let first = plan.run_with_threads(2);
    let second = plan.run_with_threads(3);
    assert_eq!(first.digest(), second.digest());
    // Wall time is the one field allowed to differ; the manifest
    // carries it, the digest must not.
    assert!(first.manifest_jsonl().contains("\"wall_ms\""));
    assert!(!first.digest().contains("wall"));
}

#[test]
fn manifest_counts_events_and_retransmits_per_shard() {
    let mut scale = small_scale();
    // Probe shards on the default testbed include loss, so the
    // retransmit counter should see traffic at this duration.
    scale.duration = SimDuration::from_secs(600);
    let plan = RunPlan::probe_comparison(&scale, 1);
    let report = plan.run_with_threads(2);
    for shard in &report.shards {
        assert!(shard.stats.events > 0, "shard {} ran no events", shard.id);
        let ShardData::Probes(probes) = &shard.data else {
            panic!("probe plan produced non-probe data");
        };
        assert!(!probes.is_empty(), "shard {} saw no probes", shard.id);
    }
    assert!(
        report
            .shards
            .iter()
            .map(|s| s.stats.retransmits)
            .sum::<u64>()
            > 0,
        "lossy paths should produce at least one retransmission overall"
    );
}

#[test]
fn telemetry_plan_metrics_are_thread_count_invariant() {
    let plan = RunPlan::probe_comparison(&small_scale(), 2).with_telemetry();
    let serial = plan.run_with_threads(1);
    let parallel = plan.run_with_threads(8);
    assert_eq!(
        serial.digest(),
        parallel.digest(),
        "metrics tokens must not break thread-count invariance"
    );
    let merged = serial.merged_metrics();
    assert_eq!(merged, parallel.merged_metrics());
    // The riptide arm produced real counts that survive the merge.
    assert!(merged.value("riptide_ticks_total").unwrap_or(0) > 0);
    assert!(merged.value("riptide_route_updates_total").unwrap_or(0) > 0);
}

#[test]
fn telemetry_off_leaves_digests_bit_identical() {
    let plan = RunPlan::probe_comparison(&small_scale(), 1);
    let with = plan.clone().with_telemetry().run_with_threads(2);
    let without = plan.run_with_threads(2);
    // Attaching the bundle must not perturb the simulation: stripping
    // the metrics tokens from the telemetry run's digest recovers the
    // plain run's digest byte for byte.
    let stripped: String = with
        .digest()
        .lines()
        .map(|l| match l.find(" metrics=") {
            Some(cut) => format!("{}\n", &l[..cut]),
            None => format!("{l}\n"),
        })
        .collect();
    assert_eq!(stripped, without.digest());
    assert!(with.digest().contains(" metrics="));
    assert!(without.merged_metrics().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdf_shard_merge_is_order_independent_and_equals_unsharded(
        shards in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10_000.0, 0..40),
            1..8,
        ),
        rotate_by in 0usize..8,
    ) {
        let pooled = Cdf::new(shards.iter().flatten().copied());
        let forward = Cdf::merge_all(shards.iter().map(|s| Cdf::new(s.iter().copied())));
        prop_assert_eq!(&forward, &pooled, "sharded merge equals unsharded CDF");

        // Any completion order (modelled as a rotation + reversal of
        // the shard list) merges to the same CDF.
        let mut rotated = shards.clone();
        rotated.rotate_left(rotate_by % shards.len());
        let rotated_merge =
            Cdf::merge_all(rotated.iter().map(|s| Cdf::new(s.iter().copied())));
        prop_assert_eq!(&rotated_merge, &pooled);
        let reversed_merge =
            Cdf::merge_all(shards.iter().rev().map(|s| Cdf::new(s.iter().copied())));
        prop_assert_eq!(&reversed_merge, &pooled);
    }

    #[test]
    fn histogram_shard_merge_is_order_independent_and_equals_unsharded(
        shards in proptest::collection::vec(
            proptest::collection::vec(0.0f64..5_000.0, 0..50),
            1..8,
        ),
        width in 1u64..500,
    ) {
        let mut pooled = Histogram::new(width);
        for sample in shards.iter().flatten() {
            pooled.record(*sample);
        }

        let per_shard: Vec<Histogram> = shards
            .iter()
            .map(|s| {
                let mut h = Histogram::new(width);
                for sample in s {
                    h.record(*sample);
                }
                h
            })
            .collect();

        let mut forward = Histogram::new(width);
        for h in &per_shard {
            forward.merge(h);
        }
        prop_assert_eq!(&forward, &pooled, "sharded merge equals unsharded histogram");

        let mut backward = Histogram::new(width);
        for h in per_shard.iter().rev() {
            backward.merge(h);
        }
        prop_assert_eq!(&backward, &pooled, "merge order cannot matter");
        prop_assert_eq!(forward.total(), shards.iter().map(Vec::len).sum::<usize>() as u64);
    }
}
