//! Golden digest test: the engine must reproduce the seed digests
//! event-for-event.
//!
//! `tests/golden/digests.txt` holds the [`RunReport::digest`] of one
//! plan per [`ShardWork`] variant, captured **before** the hot-path
//! optimisation work (PR 5). Event order is part of the simulator's
//! contract — `(SimTime, seq)` determinism in `simnet::event` — and a
//! shard's `events` counter includes every popped event (stale RTO
//! timers included), so any restructuring of the event queue, the
//! sender's bookkeeping, or the engine's digest rendering that changes
//! behaviour in *any* observable way shows up here as a byte diff.
//!
//! To re-bless after an intentional behaviour change:
//!
//! ```text
//! RIPTIDE_BLESS=1 cargo test --release --test digest_golden
//! ```
//!
//! [`RunReport::digest`]: riptide_repro::cdn::engine::RunReport::digest
//! [`ShardWork`]: riptide_repro::cdn::engine::ShardWork

use std::path::PathBuf;

use riptide_repro::cdn::engine::RunPlan;
use riptide_repro::cdn::experiment::ExperimentScale;
use riptide_repro::simnet::time::SimDuration;

fn small_scale() -> ExperimentScale {
    let mut scale = ExperimentScale::test();
    scale.duration = SimDuration::from_secs(300);
    scale
}

/// Every plan family the engine knows, at a fixed small scale: the
/// concatenated digests fingerprint all six [`ShardWork`] variants,
/// the telemetry `metrics=` token path, and one arm per registered
/// learning policy (the policy-ablation arena).
///
/// [`ShardWork`]: riptide_repro::cdn::engine::ShardWork
fn all_plan_digests() -> String {
    let scale = small_scale();
    let plans = [
        RunPlan::probe_comparison(&scale, 1),
        RunPlan::probe_comparison(&scale, 1).with_telemetry(),
        RunPlan::cwnd_sweep(&scale, &[None, Some(100)], 1),
        RunPlan::chaos_sweep(&scale, &[0.0, 0.2], 1),
        RunPlan::guardrail_sweep(&scale, &[0.3], 1),
        RunPlan::traffic_profile(&scale),
        RunPlan::convergence(&scale, SimDuration::from_secs(120)),
        RunPlan::policy_ablation(&scale, 1),
        RunPlan::scenario_matrix(&scale, 1),
    ];
    let mut out = String::new();
    for plan in &plans {
        out.push_str(&plan.run().digest());
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("digests.txt")
}

#[test]
fn engine_reproduces_the_seed_digests_event_for_event() {
    let digests = all_plan_digests();
    let path = golden_path();
    if std::env::var("RIPTIDE_BLESS").is_ok() {
        std::fs::write(&path, &digests).expect("write golden digests");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {} ({e}); bless with RIPTIDE_BLESS=1", path.display()));
    assert_eq!(
        digests,
        want,
        "run digests drifted from {} — the simulator's observable \
         behaviour changed; re-bless with RIPTIDE_BLESS=1 only if the \
         change is intentional",
        path.display()
    );
}
