//! The policy-ablation arena's two contracts, at test scale.
//!
//! * **Zero-cost seam**: the arena's control and default-EWMA arms
//!   must reproduce [`RunPlan::probe_comparison`] byte for byte —
//!   outcome vectors equal, and every digest line of the comparison
//!   present verbatim in the arena digest. The `Policy` trait may not
//!   perturb the deployment path by a single bit.
//! * **Seed-invariant ranking**: across eight master seeds, every
//!   learning policy's mean median-completion gain vs the paired
//!   control arm stays positive (jump-starting always beats cold
//!   start here), and the conservative p25 policy never out-gains the
//!   other arms. At this scale the EWMA-family arms usually tie
//!   exactly — the observed windows converge and the clamp
//!   quantises them to the same installed cwnd — so the pinned
//!   ordering is `p25 <= others`, not a strict total order.
//!
//! [`RunPlan::probe_comparison`]: riptide_repro::cdn::engine::RunPlan::probe_comparison

use riptide_repro::cdn::engine::RunPlan;
use riptide_repro::cdn::experiment::ExperimentScale;
use riptide_repro::cdn::sim::ProbeOutcome;
use riptide_repro::cdn::stats::Cdf;
use riptide_repro::cdn::workload::ProbeConfig;
use riptide_repro::simnet::time::SimDuration;

fn small_scale() -> ExperimentScale {
    let mut scale = ExperimentScale::test();
    scale.duration = SimDuration::from_secs(300);
    scale
}

#[test]
fn ewma_default_arm_reproduces_probe_comparison_byte_for_byte() {
    let scale = small_scale();
    let arena = RunPlan::policy_ablation(&scale, 1).run();
    let comparison = RunPlan::probe_comparison(&scale, 1).run();

    // Outcome level: the paired arms are indistinguishable.
    assert_eq!(
        arena.merged_probes(0),
        comparison.merged_probes(0),
        "arena control arm diverged from probe_comparison"
    );
    assert_eq!(
        arena.merged_probes(1),
        comparison.merged_probes(1),
        "arena default-EWMA arm diverged from probe_comparison"
    );

    // Digest level: every per-shard line of the comparison — identity,
    // label, seed, counters, data hash — appears verbatim in the arena
    // digest, because the arena keeps the "riptide" label and the
    // seed-pairing excludes the scenario index.
    let arena_digest = arena.digest();
    for line in comparison.digest().lines().skip(1) {
        assert!(
            arena_digest.lines().any(|l| l == line),
            "probe_comparison digest line missing from the arena digest:\n  {line}"
        );
    }
}

fn mean_gain_pct(control: &[ProbeOutcome], treated: &[ProbeOutcome], sizes: &[u64]) -> f64 {
    let mut gains = Vec::new();
    for &size in sizes {
        let median = |probes: &[ProbeOutcome]| {
            let cdf = Cdf::new(
                probes
                    .iter()
                    .filter(|p| p.size == size)
                    .map(|p| p.completion.as_millis_f64()),
            );
            (!cdf.is_empty()).then(|| cdf.median())
        };
        if let (Some(c), Some(t)) = (median(control), median(treated)) {
            gains.push((c - t) / c * 100.0);
        }
    }
    assert!(!gains.is_empty(), "no paired medians at any probe size");
    gains.iter().sum::<f64>() / gains.len() as f64
}

#[test]
fn arena_ranking_is_seed_invariant() {
    let sizes = ProbeConfig::default().sizes;
    for seed in 8..16u64 {
        let mut scale = small_scale();
        scale.seed = seed;
        let report = RunPlan::policy_ablation(&scale, 1).run();
        let control = report.merged_probes(0);
        let names = ["riptide", "ewma-fast", "p25", "p75", "loss-utility"];
        let gains: Vec<f64> = (1..=names.len() as u32)
            .map(|s| mean_gain_pct(&control, &report.merged_probes(s), &sizes))
            .collect();
        let p25 = gains[2];
        for (name, &gain) in names.iter().zip(&gains) {
            // Every learning policy beats the cold-start control arm.
            assert!(
                gain > 0.0,
                "seed {seed}: policy {name} lost to control ({gain:.3}%)"
            );
            // The conservative percentile never out-gains the rest
            // (ties are common — the clamp quantises learned windows).
            assert!(
                p25 <= gain + 1e-9,
                "seed {seed}: p25 ({p25:.3}%) out-gained {name} ({gain:.3}%)"
            );
        }
    }
}
