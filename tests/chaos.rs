//! Failure injection and adversarial-conditions tests: the paper's §V
//! adaptivity claims, and the agent's behaviour when its environment
//! misbehaves.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use riptide_repro::linuxnet::prefix::Ipv4Prefix;
use riptide_repro::linuxnet::route::RouteTable;
use riptide_repro::riptide::prelude::*;
use riptide_repro::simnet::prelude::*;
use riptide_repro::simnet::time::SimTime;

/// A route controller that fails every other call — a stand-in for
/// `ip route` hitting permission or netlink errors in production.
#[derive(Debug, Default)]
struct FlakyController {
    inner: RouteTable,
    calls: usize,
    failures: usize,
}

impl RouteController for FlakyController {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        self.calls += 1;
        if self.calls.is_multiple_of(2) {
            self.failures += 1;
            return Err(ControlError::new("netlink: permission denied"));
        }
        self.inner.set_initcwnd(key, window)
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        self.calls += 1;
        if self.calls.is_multiple_of(2) {
            self.failures += 1;
            return Err(ControlError::new("netlink: permission denied"));
        }
        self.inner.clear_initcwnd(key)
    }
}

#[test]
fn agent_survives_flaky_route_control() {
    let mut agent = RiptideAgent::new(
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut controller = FlakyController::default();
    for t in 1..=20u64 {
        let mut observer = FnObserver(move || {
            (1..=4u8)
                .map(|i| CwndObservation {
                    dst: Ipv4Addr::new(10, 0, i, 1),
                    cwnd: 40 + t as u32 + i as u32, // keeps changing -> keeps installing
                    bytes_acked: 1 << 20,
                    retrans: 0,
                    ecn_marks: 0,
                })
                .collect()
        });
        let report = agent.tick(SimTime::from_secs(t), &mut observer, &mut controller);
        // Failures are surfaced, never panicked on.
        assert_eq!(report.errors.len() + report.updates.len(), 4);
    }
    assert!(controller.failures > 0, "injector actually fired");
    assert!(agent.stats().errors > 0);
    assert!(agent.stats().route_updates > 0, "successes continue");
    assert_eq!(
        agent.table().len(),
        4,
        "learning unaffected by actuator errors"
    );
}

#[test]
fn learned_windows_track_a_path_that_degrades() {
    // The §V adaptivity claim: when a link's capacity collapses, the
    // windows of live connections shrink, and Riptide follows them down.
    struct Policy(Rc<RefCell<RouteTable>>);
    impl InitcwndPolicy for Policy {
        fn initial_cwnd(&self, _s: HostId, d: Ipv4Addr) -> Option<u32> {
            self.0.borrow().initcwnd_for(d)
        }
    }

    let mut w = World::new(TcpConfig::default(), 99);
    let a = w.add_pop();
    let b = w.add_pop();
    let h1 = w.add_host(a);
    let h2 = w.add_host(b);
    let good = PathConfig::with_delay(SimDuration::from_millis(30));
    w.set_symmetric_path(a, b, good.clone());

    let table = Rc::new(RefCell::new(RouteTable::new()));
    w.set_host_policy(h1, Rc::new(Policy(Rc::clone(&table))));
    let mut controller = SharedRouteController::new(Rc::clone(&table));
    let mut agent =
        RiptideAgent::new(RiptideConfig::builder().alpha(0.3).build().unwrap()).unwrap();

    let dst_addr = w.host_addr(h2);
    let drive = |w: &mut World,
                 agent: &mut RiptideAgent,
                 controller: &mut SharedRouteController,
                 from: u64,
                 to: u64| {
        for t in from..to {
            let now = SimTime::from_secs(t);
            w.run_until(now);
            // A fresh 150 KB transfer every 10 s; drain so conns go idle.
            if t % 10 == 0 {
                match w.find_idle_connection(h1, h2) {
                    Some(c) => {
                        w.start_transfer(c, 150_000);
                    }
                    None => {
                        w.open_and_transfer(h1, h2, 150_000);
                    }
                }
            }
            let obs: Vec<CwndObservation> = w
                .host_conn_stats(h1)
                .into_iter()
                .filter(|s| s.state == riptide_repro::simnet::conn::ConnState::Established)
                .map(|s| CwndObservation {
                    dst: s.dst_addr,
                    cwnd: s.cwnd,
                    bytes_acked: s.bytes_acked,
                    retrans: s.retransmits,
                    ecn_marks: s.ece_reductions,
                })
                .collect();
            let mut o = FnObserver(move || obs.clone());
            agent.tick(now, &mut o, controller);
        }
    };

    drive(&mut w, &mut agent, &mut controller, 1, 120);
    let healthy = agent
        .learned_window(dst_addr)
        .expect("learned on healthy path");
    assert!(
        healthy > 30,
        "healthy path learns a big window, got {healthy}"
    );

    // The path degrades hard: 5% loss and a sliver of bandwidth.
    let bad = PathConfig::with_delay(SimDuration::from_millis(30))
        .loss(0.05)
        .rate_bps(5_000_000)
        .queue_bytes(32 * 1024);
    w.reconfigure_path(a, b, bad.clone());
    w.reconfigure_path(b, a, bad);

    drive(&mut w, &mut agent, &mut controller, 120, 400);
    let degraded = agent.learned_window(dst_addr).expect("still learning");
    assert!(
        degraded < healthy,
        "windows shrink with the path: {healthy} -> {degraded}"
    );
}

#[test]
fn connection_storm_and_mass_close_stay_consistent() {
    let mut w = World::new(TcpConfig::default(), 5);
    let a = w.add_pop();
    let b = w.add_pop();
    let h1 = w.add_host(a);
    let h2 = w.add_host(b);
    w.set_symmetric_path(
        a,
        b,
        PathConfig::with_delay(SimDuration::from_millis(20))
            .rate_bps(50_000_000)
            .queue_bytes(128 * 1024),
    );
    // Open a storm of concurrent transfers.
    let conns: Vec<ConnId> = (0..50)
        .map(|_| w.open_and_transfer(h1, h2, 200_000).0)
        .collect();
    w.run_until(SimTime::from_millis(500));
    // Kill half of them mid-flight.
    for c in conns.iter().step_by(2) {
        w.close_connection(*c);
    }
    w.run_until(SimTime::from_secs(120));
    let completed = w.drain_completed().len();
    assert!(
        completed >= 25,
        "survivors complete despite the mass close, got {completed}"
    );
    // The world still works for new traffic.
    w.open_and_transfer(h1, h2, 50_000);
    w.run_until(SimTime::from_secs(130));
    assert_eq!(w.drain_completed().len(), 1);
}

#[test]
fn degenerate_observations_clamp_to_floor() {
    let mut agent = RiptideAgent::new(
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut routes = RouteTable::new();
    // A buggy observer reporting zero windows must not install zero.
    let mut observer = FnObserver(|| {
        vec![CwndObservation {
            dst: Ipv4Addr::new(10, 0, 1, 1),
            cwnd: 0,
            bytes_acked: 0,
            retrans: 0,
            ecn_marks: 0,
        }]
    });
    agent.tick(SimTime::from_secs(1), &mut observer, &mut routes);
    assert_eq!(
        routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
        Some(10),
        "c_min floors garbage"
    );
}

#[test]
fn expiry_storm_after_total_silence() {
    // Learn hundreds of destinations, then go silent: every entry must
    // expire and every route must be withdrawn in one tick.
    let mut agent = RiptideAgent::new(
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut routes = RouteTable::new();
    let mut observer = FnObserver(|| {
        (0..=255u8)
            .map(|i| CwndObservation {
                dst: Ipv4Addr::new(10, 0, i, 1),
                cwnd: 50,
                bytes_acked: 1,
                retrans: 0,
                ecn_marks: 0,
            })
            .collect()
    });
    agent.tick(SimTime::from_secs(1), &mut observer, &mut routes);
    assert_eq!(routes.len(), 256);
    let mut silence = FnObserver(Vec::new);
    let report = agent.tick(SimTime::from_secs(500), &mut silence, &mut routes);
    assert_eq!(report.expired.len(), 256);
    assert!(routes.is_empty());
    assert!(agent.table().is_empty());
}

// ---- The deterministic fault-injection layer ----

use proptest::prelude::*;
use riptide_repro::cdn::engine::RunPlan;
use riptide_repro::cdn::experiment::ExperimentScale;
use riptide_repro::cdn::sim::{CdnSim, CdnSimConfig};
use riptide_repro::cdn::topology::TestbedConfig;
use riptide_repro::cdn::workload::{OrganicConfig, ProbeConfig};
use riptide_repro::simnet::time::SimDuration;

fn chaos_scale() -> ExperimentScale {
    let mut scale = ExperimentScale::test();
    scale.duration = SimDuration::from_secs(300);
    scale
}

#[test]
fn zero_fault_rate_reproduces_the_clean_probe_comparison() {
    // chaos_sweep arms are seed-paired per (unit, replicate) exactly
    // like probe_comparison, so a zero rate must reproduce its probes
    // bit for bit — the fault layer is provably a no-op when disabled.
    let scale = chaos_scale();
    let clean = RunPlan::probe_comparison(&scale, 2).run_with_threads(2);
    let chaos = RunPlan::chaos_sweep(&scale, &[0.0], 2).run_with_threads(2);
    assert_eq!(clean.merged_probes(0), chaos.merged_chaos_probes(0));
    assert_eq!(clean.merged_probes(1), chaos.merged_chaos_probes(1));
    let report = chaos.merged_chaos_report(1);
    assert_eq!(report.faults, Default::default(), "no faults fired");
    assert_eq!(report.degraded_ticks, 0);
}

#[test]
fn chaos_sweep_is_thread_count_invariant() {
    let plan = RunPlan::chaos_sweep(&chaos_scale(), &[0.05], 2);
    assert_eq!(plan.shards.len(), 8);
    let serial = plan.run_with_threads(1);
    let parallel = plan.run_with_threads(8);
    assert_eq!(
        serial.digest(),
        parallel.digest(),
        "fault injection must not break deterministic sharding"
    );
    let report = serial.merged_chaos_report(1);
    assert!(
        report.faults.observe_timeouts > 0,
        "faults fired: {report:?}"
    );
}

#[test]
fn high_fault_rate_degrades_gracefully_and_never_breaks_no_harm() {
    let plan = RunPlan::chaos_sweep(&chaos_scale(), &[0.2], 1);
    let report = plan.run_with_threads(4);
    for scenario in [0, 1] {
        let r = report.merged_chaos_report(scenario);
        assert_eq!(r.invariant_breaches, 0, "scenario {scenario}: {r:?}");
        if let Some((lo, hi)) = r.installed_range() {
            assert!(
                lo >= 10 && hi <= 100,
                "scenario {scenario}: installed range [{lo}, {hi}]"
            );
        }
    }
    let riptide = report.merged_chaos_report(1);
    assert!(riptide.faults.crashes > 0, "{riptide:?}");
    assert!(riptide.observe_retries > 0, "{riptide:?}");
    assert!(
        !report.merged_chaos_probes(1).is_empty(),
        "probes still complete under 20% faults"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The window-range invariant: whatever fault sequence a seed and
    // rate produce — timeouts, truncations, failed and delayed
    // installs, crashes, loss bursts — no installed window ever leaves
    // [c_min, c_max].
    #[test]
    fn any_fault_sequence_keeps_installed_windows_in_bounds(
        seed in 0u64..1_000,
        rate in 0.0f64..0.5,
    ) {
        let cfg = CdnSimConfig {
            testbed: TestbedConfig::tiny(3, 1, seed),
            riptide: Some(RiptideConfig::deployment()),
            probes: ProbeConfig {
                interval: SimDuration::from_secs(30),
                ..ProbeConfig::default()
            },
            organic: OrganicConfig::none(),
            cwnd_sample_interval: SimDuration::from_secs(60),
            probe_senders: None,
            faults: FaultPlan::uniform(rate),
            reconcile_every: None,
            telemetry: false,
            persistence: None,
            gossip: None,
            track_ramp: false,
        };
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(150));
        let r = sim.chaos_report();
        prop_assert_eq!(r.invariant_breaches, 0);
        if let Some((lo, hi)) = r.installed_range() {
            prop_assert!(lo >= 10 && hi <= 100, "installed range [{}, {}]", lo, hi);
        }
    }
}
