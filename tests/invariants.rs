//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use riptide_repro::cdn::stats::Cdf;
use riptide_repro::linuxnet::ip_cmd::IpRouteCmd;
use riptide_repro::linuxnet::lpm::LpmTrie;
use riptide_repro::linuxnet::prefix::Ipv4Prefix;
use riptide_repro::linuxnet::route::{RouteAttrs, RouteProto, RouteTable};
use riptide_repro::linuxnet::ss::{SockEntry, SockState, SockTable};
use riptide_repro::riptide::combine::CombineStrategy;
use riptide_repro::riptide::config::RiptideConfig;
use riptide_repro::riptide::history::HistoryStrategy;
use riptide_repro::riptide::model;
use riptide_repro::riptide::observe::CwndObservation;
use riptide_repro::simnet::config::TcpConfig;
use riptide_repro::simnet::ids::ConnId;
use riptide_repro::simnet::packet::Ack;
use riptide_repro::simnet::tcp::{Receiver, Sender};
use riptide_repro::simnet::time::SimTime;
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------
// Analytic model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn model_rtts_monotone_in_window(bytes in 1u64..20_000_000, iw in 1u32..500) {
        let r1 = model::rtts_for_bytes(bytes, model::DEFAULT_MSS, iw);
        let r2 = model::rtts_for_bytes(bytes, model::DEFAULT_MSS, iw + 1);
        prop_assert!(r2 <= r1, "larger window never needs more RTTs");
    }

    #[test]
    fn model_rtts_monotone_in_size(bytes in 1u64..20_000_000, iw in 1u32..500) {
        let r1 = model::rtts_for_bytes(bytes, model::DEFAULT_MSS, iw);
        let r2 = model::rtts_for_bytes(bytes + 1448, model::DEFAULT_MSS, iw);
        prop_assert!(r2 >= r1, "more data never needs fewer RTTs");
    }

    #[test]
    fn model_one_rtt_exactly_when_file_fits(bytes in 1u64..10_000_000, iw in 1u32..500) {
        let fits = bytes <= model::one_rtt_capacity(model::DEFAULT_MSS, iw);
        let rtts = model::rtts_for_bytes(bytes, model::DEFAULT_MSS, iw);
        prop_assert_eq!(rtts == 1, fits);
    }

    #[test]
    fn model_gain_bounded(bytes in 1u64..10_000_000, iw in 10u32..500) {
        let g = model::rtt_gain(bytes, model::DEFAULT_MSS, iw, 10);
        prop_assert!((0.0..1.0).contains(&g), "gain {g} in [0,1)");
    }
}

// ---------------------------------------------------------------------
// Route table: LPM versus a naive reference
// ---------------------------------------------------------------------

fn naive_lookup(routes: &[(Ipv4Prefix, u32)], addr: Ipv4Addr) -> Option<u32> {
    routes
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|&(_, w)| w)
}

proptest! {
    #[test]
    fn lpm_matches_naive_reference(
        entries in proptest::collection::vec((any::<u32>(), 0u8..=32, 1u32..200), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut table = RouteTable::new();
        let mut reference: Vec<(Ipv4Prefix, u32)> = Vec::new();
        for (bits, len, w) in entries {
            let prefix = Ipv4Prefix::new(Ipv4Addr::from(bits), len);
            table.replace(prefix, RouteAttrs::initcwnd(w));
            reference.retain(|(p, _)| *p != prefix);
            reference.push((prefix, w));
        }
        for bits in probes {
            let addr = Ipv4Addr::from(bits);
            prop_assert_eq!(table.initcwnd_for(addr), naive_lookup(&reference, addr));
        }
    }

    #[test]
    fn lpm_trie_matches_naive_reference_under_churn(
        // Interleaved insert/remove/lookup against a linear-scan oracle.
        // Masking `bits` down to a handful of distinct /8 roots makes
        // overlapping and duplicate prefixes common rather than rare.
        ops in proptest::collection::vec(
            (0u8..3, any::<u32>(), 0u8..=32, 1u32..200), 1..120),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut trie: LpmTrie<u32> = LpmTrie::new();
        let mut reference: Vec<(Ipv4Prefix, u32)> = Vec::new();
        for (op, bits, len, w) in ops {
            let bits = bits & 0x03FF_00FF; // few roots, dense low hosts
            let prefix = Ipv4Prefix::new(Ipv4Addr::from(bits), len);
            match op {
                0 => {
                    let old = trie.insert(prefix, w);
                    let oracle = reference.iter().position(|(p, _)| *p == prefix);
                    prop_assert_eq!(old, oracle.map(|i| reference[i].1));
                    if let Some(i) = oracle {
                        reference[i].1 = w;
                    } else {
                        reference.push((prefix, w));
                    }
                }
                1 => {
                    let old = trie.remove(&prefix);
                    let oracle = reference.iter().position(|(p, _)| *p == prefix);
                    prop_assert_eq!(old, oracle.map(|i| reference[i].1));
                    if let Some(i) = oracle {
                        reference.swap_remove(i);
                    }
                }
                _ => {
                    let got = trie.lookup(Ipv4Addr::from(bits)).map(|(_, w)| *w);
                    let want = naive_lookup(&reference, Ipv4Addr::from(bits));
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(trie.len(), reference.len());
        }
        for bits in probes {
            let addr = Ipv4Addr::from(bits & 0x03FF_00FF);
            prop_assert_eq!(trie.lookup(addr).map(|(_, w)| *w), naive_lookup(&reference, addr));
        }
    }

    #[test]
    fn lpm_trie_default_route_and_host_route_edges(
        bits in any::<u32>(), w0 in 1u32..200, w32 in 1u32..200,
        probe in any::<u32>(),
    ) {
        // /0 matches everything; a /32 over the same address always wins.
        let mut trie: LpmTrie<u32> = LpmTrie::new();
        trie.insert(Ipv4Prefix::new(Ipv4Addr::from(0), 0), w0);
        trie.insert(Ipv4Prefix::new(Ipv4Addr::from(bits), 32), w32);
        prop_assert_eq!(trie.lookup(Ipv4Addr::from(bits)).map(|(_, w)| *w), Some(w32));
        let fallback = trie.lookup(Ipv4Addr::from(probe)).map(|(p, w)| (p.len(), *w));
        if probe == bits {
            prop_assert_eq!(fallback, Some((32, w32)));
        } else {
            prop_assert_eq!(fallback, Some((0, w0)));
        }
        prop_assert_eq!(trie.remove(&Ipv4Prefix::new(Ipv4Addr::from(bits), 32)), Some(w32));
        prop_assert_eq!(trie.lookup(Ipv4Addr::from(bits)).map(|(_, w)| *w), Some(w0));
    }

    #[test]
    fn prefix_display_parse_round_trip(bits in any::<u32>(), len in 0u8..=32) {
        let p = Ipv4Prefix::new(Ipv4Addr::from(bits), len);
        let q: Ipv4Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn add_then_del_is_identity(bits in any::<u32>(), len in 0u8..=32, w in 1u32..200) {
        let mut table = RouteTable::new();
        let p = Ipv4Prefix::new(Ipv4Addr::from(bits), len);
        table.add(p, RouteAttrs::initcwnd(w)).unwrap();
        let removed = table.del(p).unwrap();
        prop_assert_eq!(removed.attrs.initcwnd, Some(w));
        prop_assert!(table.is_empty());
        prop_assert_eq!(table.lookup(Ipv4Addr::from(bits)), None);
    }
}

// ---------------------------------------------------------------------
// ip route / ss text round trips
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn ip_cmd_round_trips(
        bits in any::<u32>(),
        len in 0u8..=32,
        initcwnd in proptest::option::of(1u32..1000),
        initrwnd in proptest::option::of(1u32..1000),
        via in proptest::option::of(any::<u32>()),
        dev in proptest::option::of("[a-z][a-z0-9]{1,6}"),
        action in 0u8..3,
    ) {
        let cmd = IpRouteCmd {
            action: match action {
                0 => riptide_repro::linuxnet::ip_cmd::IpRouteAction::Add,
                1 => riptide_repro::linuxnet::ip_cmd::IpRouteAction::Replace,
                _ => riptide_repro::linuxnet::ip_cmd::IpRouteAction::Del,
            },
            prefix: Ipv4Prefix::new(Ipv4Addr::from(bits), len),
            attrs: RouteAttrs {
                via: via.map(Ipv4Addr::from),
                dev,
                proto: RouteProto::Static,
                initcwnd,
                initrwnd,
            },
        };
        let reparsed: IpRouteCmd = cmd.to_string().parse().unwrap();
        // `del` does not print proto; everything else round-trips exactly.
        prop_assert_eq!(reparsed.action, cmd.action);
        prop_assert_eq!(reparsed.prefix, cmd.prefix);
        prop_assert_eq!(reparsed.attrs.initcwnd, cmd.attrs.initcwnd);
        prop_assert_eq!(reparsed.attrs.initrwnd, cmd.attrs.initrwnd);
        prop_assert_eq!(reparsed.attrs.via, cmd.attrs.via);
        prop_assert_eq!(reparsed.attrs.dev, cmd.attrs.dev);
    }

    #[test]
    fn ss_table_round_trips(
        rows in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 1u32..2000,
             proptest::option::of(1u32..2000), proptest::option::of(0.0f64..2000.0),
             any::<u64>(), 0u8..3, 0u64..10_000, 0u64..1_000),
            0..20,
        )
    ) {
        let table: SockTable = rows
            .into_iter()
            .map(|(src, dst, cwnd, ssthresh, rtt, bytes, state, retrans, lost)| SockEntry {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                state: match state {
                    0 => SockState::Established,
                    1 => SockState::SynSent,
                    _ => SockState::CloseWait,
                },
                cc: "cubic".into(),
                cwnd,
                ssthresh,
                // Rendered at 3 decimals; quantize so equality holds.
                rtt_ms: rtt.map(|r| (r * 1000.0).round() / 1000.0),
                bytes_acked: bytes,
                retrans,
                lost,
            })
            .collect();
        let parsed = SockTable::parse(&table.render()).unwrap();
        prop_assert_eq!(parsed, table);
    }
}

// ---------------------------------------------------------------------
// Riptide algorithm pieces
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn combine_stays_within_group_bounds(
        cwnds in proptest::collection::vec((1u32..500, 0u64..10_000_000), 1..30)
    ) {
        let group: Vec<CwndObservation> = cwnds
            .iter()
            .map(|&(cwnd, bytes)| CwndObservation {
                dst: Ipv4Addr::new(10, 0, 0, 1),
                cwnd,
                bytes_acked: bytes,
                retrans: 0,
                ecn_marks: 0,
            })
            .collect();
        let lo = group.iter().map(|o| o.cwnd as f64).fold(f64::MAX, f64::min);
        let hi = group.iter().map(|o| o.cwnd as f64).fold(f64::MIN, f64::max);
        for s in [
            CombineStrategy::Average,
            CombineStrategy::Max,
            CombineStrategy::TrafficWeighted,
        ] {
            let v = s.combine(&group).unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{s}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn ewma_stays_between_history_and_fresh(
        alpha in 0.0f64..=1.0,
        values in proptest::collection::vec(1.0f64..500.0, 1..50),
    ) {
        let s = HistoryStrategy::Ewma { alpha };
        let mut st = s.new_state();
        let mut prev: Option<f64> = None;
        for v in values {
            let out = s.blend(&mut st, v);
            match prev {
                None => prop_assert!((out - v).abs() < 1e-9),
                Some(p) => {
                    let (lo, hi) = if p < v { (p, v) } else { (v, p) };
                    prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9);
                }
            }
            prev = Some(out);
        }
    }

    #[test]
    fn clamp_always_lands_in_bounds(
        value in -1e6f64..1e6,
        lo in 1u32..200,
        extra in 0u32..200,
    ) {
        let cfg = RiptideConfig::builder()
            .cwnd_min(lo)
            .cwnd_max(lo + extra)
            .build()
            .unwrap();
        let w = cfg.clamp(value);
        prop_assert!(w >= lo && w <= lo + extra);
    }
}

// ---------------------------------------------------------------------
// TCP sender/receiver: eventual delivery under arbitrary loss patterns
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sender_receiver_eventually_deliver_everything(
        segments in 1u64..200,
        loss_mask in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let cfg = TcpConfig::default();
        let conn = ConnId::from_index(0);
        let mut tx = Sender::new(&cfg, 10, SimTime::ZERO);
        let mut rx = Receiver::new(conn, &cfg);
        let mut now = SimTime::from_nanos(0);
        tx.write(segments, now);

        let mut losses = loss_mask.into_iter();
        let mut steps = 0u32;
        while !tx.all_acked() {
            steps += 1;
            prop_assert!(steps < 10_000, "livelock suspected");
            now += riptide_repro::simnet::time::SimDuration::from_millis(10);
            let out = tx.take_outbox();
            let mut delivered_any = false;
            for seg in out {
                // Drop while the mask lasts; afterwards the network is clean,
                // so delivery must eventually finish.
                if losses.next() == Some(true) {
                    continue;
                }
                delivered_any = true;
                // quickack config: every segment is acked immediately.
                let ack: Ack = match rx.on_segment(seg.seq) {
                    riptide_repro::simnet::tcp::receiver::AckDecision::Immediate(a) => a,
                    other => panic!("quickack receiver deferred: {other:?}"),
                };
                tx.on_ack(ack, now);
            }
            if !delivered_any {
                // Nothing moved: fire the retransmission timer if armed.
                if let Some(req) = tx.take_timer_request() {
                    tx.on_rto_fire(req.epoch, req.deadline.max(now));
                }
            }
        }
        prop_assert_eq!(tx.cum_acked(), segments);
        prop_assert_eq!(rx.cum_received(), segments);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn delayed_ack_receiver_still_delivers_everything(
        segments in 1u64..150,
    ) {
        use riptide_repro::simnet::tcp::receiver::AckDecision;
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        let conn = ConnId::from_index(0);
        let mut tx = Sender::new(&cfg, 10, SimTime::ZERO);
        let mut rx = Receiver::new(conn, &cfg);
        let mut now = SimTime::from_nanos(0);
        tx.write(segments, now);
        let mut steps = 0u32;
        while !tx.all_acked() {
            steps += 1;
            prop_assert!(steps < 10_000, "livelock suspected");
            now += riptide_repro::simnet::time::SimDuration::from_millis(10);
            let out = tx.take_outbox();
            let mut pending_timer = None;
            for seg in out {
                match rx.on_segment(seg.seq) {
                    AckDecision::Immediate(ack) => tx.on_ack(ack, now),
                    AckDecision::Deferred { epoch } => pending_timer = Some(epoch),
                }
            }
            // Fire the delayed-ack timer if one was armed this round.
            if let Some(epoch) = pending_timer {
                now += cfg.delayed_ack_timeout;
                if let Some(ack) = rx.on_delack_timer(epoch) {
                    tx.on_ack(ack, now);
                }
            }
            if tx.take_outbox().is_empty() && !tx.all_acked() && pending_timer.is_none() {
                // Nothing in flight released new data: fall back to RTO.
                if let Some(req) = tx.take_timer_request() {
                    tx.on_rto_fire(req.epoch, req.deadline.max(now));
                }
            }
        }
        prop_assert_eq!(rx.cum_received(), segments);
    }
}

// ---------------------------------------------------------------------
// World-level determinism under arbitrary workloads
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn world_runs_are_reproducible_under_arbitrary_schedules(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..3, 1_000u64..300_000, 0u64..5_000), 1..25),
    ) {
        use riptide_repro::simnet::prelude::*;
        let run = || {
            let mut w = World::new(TcpConfig::default(), seed);
            let a = w.add_pop();
            let b = w.add_pop();
            let h1 = w.add_host(a);
            let h2 = w.add_host(b);
            w.set_symmetric_path(
                a,
                b,
                PathConfig::with_delay(
                    riptide_repro::simnet::time::SimDuration::from_millis(25),
                )
                .loss(0.01),
            );
            let mut t = SimTime::ZERO;
            let mut open: Vec<ConnId> = Vec::new();
            for &(kind, bytes, gap_ms) in &ops {
                t += riptide_repro::simnet::time::SimDuration::from_millis(gap_ms);
                w.run_until(t);
                match kind {
                    0 => {
                        let (c, _) = w.open_and_transfer(h1, h2, bytes);
                        open.push(c);
                    }
                    1 => {
                        if let Some(&c) = open.last() {
                            if w.conn_state(c) != riptide_repro::simnet::conn::ConnState::Closed {
                                w.start_transfer(c, bytes);
                            }
                        }
                    }
                    _ => {
                        if let Some(c) = open.pop() {
                            w.close_connection(c);
                        }
                    }
                }
            }
            w.run_until(t + riptide_repro::simnet::time::SimDuration::from_secs(120));
            let recs: Vec<(u64, u64)> = w
                .drain_completed()
                .iter()
                .map(|r| (r.bytes, r.completed_at.as_nanos()))
                .collect();
            (recs, w.stats().events_processed)
        };
        let first = run();
        let second = run();
        prop_assert_eq!(first, second, "identical construction must replay identically");
    }
}

// ---------------------------------------------------------------------
// Closed-loop safety: reconciler audit and the bounded learned table
// ---------------------------------------------------------------------

proptest! {
    // From *any* divergent (kernel routes, learned table) pair, one
    // reconciler audit restores agreement, never touches a foreign
    // route, and never installs a window outside `[c_min, c_max]`.
    #[test]
    fn one_audit_repairs_arbitrary_drift_and_spares_foreign_routes(
        expected_rows in proptest::collection::btree_map(1u8..250, 1u32..300, 0..24),
        perturb in proptest::collection::vec(0u8..4, 24),
        orphans in proptest::collection::btree_map(1u8..250, 1u32..300, 0..8),
        foreigners in proptest::collection::btree_set(1u8..250, 0..8),
        lo in 2u32..50,
        extra in 0u32..120,
    ) {
        use riptide_repro::riptide::reconcile::{audit, is_riptide_route};
        use std::collections::BTreeMap;

        let bounds = (lo, lo + extra);
        let exp_key = |n: u8| Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, n));
        let orphan_key = |n: u8| Ipv4Prefix::host(Ipv4Addr::new(10, 0, 2, n));
        let foreign_key = |n: u8| Ipv4Prefix::host(Ipv4Addr::new(10, 0, 3, n));

        // Drift the kernel away from the expected view, one perturbation
        // per expectation: in sync, deleted behind the agent's back,
        // window rewritten, or shadowed by a foreign squatter.
        let mut expected: BTreeMap<Ipv4Prefix, u32> = BTreeMap::new();
        let mut kernel = RouteTable::new();
        let mut squatted: Vec<Ipv4Prefix> = Vec::new();
        for (i, (&n, &w)) in expected_rows.iter().enumerate() {
            let key = exp_key(n);
            expected.insert(key, w);
            match perturb[i] {
                0 => {
                    kernel.replace(key, RouteAttrs::initcwnd(w));
                }
                1 => {}
                2 => {
                    kernel.replace(key, RouteAttrs::initcwnd(w + 7));
                }
                _ => {
                    kernel.replace(
                        key,
                        RouteAttrs {
                            proto: RouteProto::Boot,
                            via: Some(Ipv4Addr::new(192, 0, 2, 1)),
                            ..RouteAttrs::default()
                        },
                    );
                    squatted.push(key);
                }
            }
        }
        // Signature orphans (a crashed predecessor's leftovers) and
        // unambiguously foreign routes.
        for (&n, &w) in &orphans {
            kernel.replace(orphan_key(n), RouteAttrs::initcwnd(w));
        }
        for &n in &foreigners {
            kernel.replace(
                foreign_key(n),
                RouteAttrs {
                    proto: RouteProto::Kernel,
                    ..RouteAttrs::default()
                },
            );
        }
        let foreign_snapshot: Vec<(Ipv4Prefix, RouteAttrs)> = kernel
            .iter()
            .filter(|r| !is_riptide_route(&r.attrs))
            .map(|r| (r.prefix, r.attrs.clone()))
            .collect();

        // One audit: diff the dump, repair the live table.
        let mut live = kernel.clone();
        let report = audit(&expected, &kernel, bounds, &mut live);
        prop_assert!(report.errors.is_empty(), "{:?}", report.errors);

        // Foreign routes survive byte for byte.
        for (prefix, attrs) in &foreign_snapshot {
            prop_assert_eq!(
                live.get(*prefix).map(|r| &r.attrs),
                Some(attrs),
                "foreign route modified at {}",
                prefix
            );
        }
        // Every expectation converged to its clamped window — except
        // where a foreign squatter holds the key, which is left alone.
        for (&key, &want) in &expected {
            if squatted.contains(&key) {
                continue;
            }
            prop_assert_eq!(
                live.get(key).and_then(|r| r.attrs.initcwnd),
                Some(want.clamp(bounds.0, bounds.1)),
                "expectation not converged at {}",
                key
            );
        }
        // No signature orphan survives the audit.
        for route in live.iter() {
            prop_assert!(
                !is_riptide_route(&route.attrs) || expected.contains_key(&route.prefix),
                "orphan survived at {}",
                route.prefix
            );
        }
        // Nothing the audit installed leaves the bounds.
        for &(_, w) in &report.reinstalled {
            prop_assert!(w >= bounds.0 && w <= bounds.1, "installed {w} outside bounds");
        }
        // A second audit against the repaired table is a no-op.
        let repaired = live.clone();
        let second = audit(&expected, &repaired, bounds, &mut live);
        prop_assert!(second.converged(), "second audit not converged: {second:?}");
    }

    // A capacity-bounded table never exceeds its bound, never evicts the
    // entry that was just refreshed, and evicts deterministically.
    #[test]
    fn bounded_table_respects_capacity_and_lru_order(
        cap in 1usize..12,
        updates in proptest::collection::vec((1u8..40, 1u32..200), 1..60),
    ) {
        use riptide_repro::riptide::table::FinalTable;
        use riptide_repro::riptide::history::HistoryStrategy;
        use riptide_repro::simnet::time::SimDuration;

        let strategy = HistoryStrategy::None;
        let run = || {
            let mut table = FinalTable::bounded(cap);
            let mut log: Vec<Ipv4Prefix> = Vec::new();
            for (i, &(n, w)) in updates.iter().enumerate() {
                let now = SimTime::ZERO + SimDuration::from_secs(i as u64 + 1);
                let key = Ipv4Prefix::host(Ipv4Addr::new(10, 0, 9, n));
                table.update(key, w as f64, w, &strategy, now);
                let evicted = table.enforce_capacity();
                assert!(table.len() <= cap, "table grew past its bound");
                assert!(
                    !evicted.contains(&key),
                    "evicted the entry that was just refreshed"
                );
                log.extend(evicted);
            }
            log
        };
        prop_assert_eq!(run(), run(), "eviction order must be deterministic");
    }
}

// ---------------------------------------------------------------------
// Telemetry: counters, the decision journal, and snapshot merging
// ---------------------------------------------------------------------

proptest! {
    // A counter only moves forward, by exactly what was added.
    #[test]
    fn counters_are_monotone_under_arbitrary_increments(
        increments in proptest::collection::vec(0u64..1_000, 0..100),
    ) {
        use riptide_repro::riptide::telemetry::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let counter = registry.counter("riptide_prop_total", "property fixture");
        let mut prev = counter.get();
        prop_assert_eq!(prev, 0);
        for inc in increments {
            counter.add(inc);
            let cur = counter.get();
            prop_assert!(cur >= prev, "counter moved backwards: {prev} -> {cur}");
            prop_assert_eq!(cur, prev + inc);
            prev = cur;
        }
        // The registry hands back the same underlying cell, not a fresh one.
        prop_assert_eq!(
            registry.counter("riptide_prop_total", "property fixture").get(),
            prev
        );
    }

    // The journal holds at most `capacity` records, drops only from the
    // front, and keeps arrival order among whatever it retains.
    #[test]
    fn journal_is_bounded_and_preserves_order(
        capacity in 1usize..32,
        pushes in 0usize..150,
    ) {
        use riptide_repro::riptide::telemetry::{
            DecisionAction, DecisionCause, DecisionJournal, DecisionRecord,
        };
        let journal = DecisionJournal::bounded(capacity);
        for i in 0..pushes {
            journal.record(DecisionRecord {
                at: SimTime::from_secs(i as u64),
                key: Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 1)),
                // Encode the sequence number in the window so order is
                // observable from the outside.
                action: DecisionAction::Install { window: i as u32 },
                cause: DecisionCause::TtlExpired,
            });
            prop_assert!(journal.len() <= capacity, "journal grew past capacity");
        }
        prop_assert_eq!(journal.total_recorded(), pushes as u64);
        prop_assert_eq!(journal.len(), pushes.min(capacity));
        let held = journal.snapshot();
        let first_kept = pushes.saturating_sub(capacity);
        for (slot, record) in held.iter().enumerate() {
            prop_assert!(
                matches!(
                    record.action,
                    DecisionAction::Install { window } if window as usize == first_kept + slot
                ),
                "slot {slot} holds {record:?}, expected sequence {}",
                first_kept + slot
            );
        }
    }

    // Sharded metric collection is equivalent to unsharded: however the
    // same operations are split across shard registries, and in whatever
    // order the per-shard snapshots merge, the result equals one registry
    // that saw everything.
    #[test]
    fn snapshot_merge_is_interleaving_invariant(
        ops in proptest::collection::vec((0usize..5, 0u8..2, 1u64..120), 1..120),
        shard_count in 1usize..5,
        rotate_by in 0usize..5,
    ) {
        use riptide_repro::riptide::telemetry::{MetricsRegistry, MetricsSnapshot};
        const BOUNDS: [u64; 3] = [10, 50, 100];
        let apply = |registry: &MetricsRegistry, &(_, kind, value): &(usize, u8, u64)| {
            match kind {
                0 => registry
                    .counter("riptide_prop_ops_total", "property fixture")
                    .add(value),
                _ => registry
                    .histogram("riptide_prop_window", "property fixture", &BOUNDS)
                    .observe(value),
            }
        };

        let pooled = MetricsRegistry::new();
        let shards: Vec<MetricsRegistry> =
            (0..shard_count).map(|_| MetricsRegistry::new()).collect();
        for op in &ops {
            apply(&pooled, op);
            apply(&shards[op.0 % shard_count], op);
        }

        let merge_in = |order: &[usize]| {
            let mut merged = MetricsSnapshot::default();
            for &i in order {
                merged.merge(&shards[i].snapshot());
            }
            merged
        };
        let plan_order: Vec<usize> = (0..shard_count).collect();
        let mut rotated = plan_order.clone();
        rotated.rotate_left(rotate_by % shard_count);
        let reversed: Vec<usize> = plan_order.iter().rev().copied().collect();

        let want = pooled.snapshot();
        prop_assert_eq!(&merge_in(&plan_order), &want, "sharded merge equals unsharded");
        prop_assert_eq!(&merge_in(&rotated), &want, "merge order cannot matter");
        prop_assert_eq!(&merge_in(&reversed), &want, "merge order cannot matter");
    }
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn cdf_quantiles_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::new(samples);
        let mut prev = f64::MIN;
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev);
            prev = q;
        }
        prop_assert_eq!(cdf.quantile(1.0), cdf.max());
    }

    #[test]
    fn cdf_fraction_is_consistent_with_quantile(
        samples in proptest::collection::vec(0.0f64..1e6, 2..200),
        p in 0.05f64..1.0,
    ) {
        let cdf = Cdf::new(samples);
        let q = cdf.quantile(p);
        // At least p of the mass sits at or below the p-quantile.
        prop_assert!(cdf.fraction_at_or_below(q) >= p - 1e-9);
    }
}

// ---------------------------------------------------------------------
// Simulated time: constructors never wrap
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn sim_time_constructors_never_wrap(v in 0u64..=u64::MAX) {
        use riptide_repro::simnet::time::{SimDuration, SimTime};
        // A wrapped multiply would produce an instant *smaller* than an
        // exact widening conversion; saturation can only pin at MAX.
        let exact_secs = (v as u128) * 1_000_000_000;
        let got = SimTime::from_secs(v).as_nanos() as u128;
        prop_assert_eq!(got, exact_secs.min(u64::MAX as u128));

        let exact_ms = (v as u128) * 1_000_000;
        let got = SimTime::from_millis(v).as_nanos() as u128;
        prop_assert_eq!(got, exact_ms.min(u64::MAX as u128));

        let exact_us = (v as u128) * 1_000;
        let got = SimDuration::from_micros(v).as_nanos() as u128;
        prop_assert_eq!(got, exact_us.min(u64::MAX as u128));

        let got = SimDuration::from_millis(v).as_nanos() as u128;
        prop_assert_eq!(got, exact_ms.min(u64::MAX as u128));

        let got = SimDuration::from_secs(v).as_nanos() as u128;
        prop_assert_eq!(got, exact_secs.min(u64::MAX as u128));
    }

    #[test]
    fn sim_time_constructors_monotone(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        use riptide_repro::simnet::time::{SimDuration, SimTime};
        // Wrapping breaks monotonicity; saturation preserves it.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(SimTime::from_secs(lo) <= SimTime::from_secs(hi));
        prop_assert!(SimTime::from_millis(lo) <= SimTime::from_millis(hi));
        prop_assert!(SimDuration::from_micros(lo) <= SimDuration::from_micros(hi));
        prop_assert!(SimDuration::from_millis(lo) <= SimDuration::from_millis(hi));
        prop_assert!(SimDuration::from_secs(lo) <= SimDuration::from_secs(hi));
    }
}

// ---------------------------------------------------------------------
// Learning policies: every registered policy honours the same contracts
// ---------------------------------------------------------------------

/// The policies under test: the arena registry plus the spec-grammar
/// corners the registry does not cover (no-history, windowed mean, an
/// odd percentile).
fn policies_under_test() -> Vec<(String, riptide_repro::riptide::policy::LearningPolicy)> {
    use riptide_repro::riptide::policy::LearningPolicy;
    let mut out: Vec<(String, LearningPolicy)> =
        riptide_repro::riptide::policy::registered_policies()
            .into_iter()
            .map(|(name, p)| (name.to_string(), p))
            .collect();
    for spec in ["none", "windowed:5", "percentile:0.5:32"] {
        out.push((
            spec.to_string(),
            LearningPolicy::from_spec(spec).expect("test specs parse"),
        ));
    }
    out
}

proptest! {
    // Whatever a policy learns from arbitrary (cwnd, retransmit,
    // bytes-acked) observations, nothing the agent installs ever
    // leaves [c_min, c_max]: the clamp sits downstream of every
    // policy, not just the default EWMA.
    #[test]
    fn installed_windows_stay_clamped_for_every_policy(
        ticks in proptest::collection::vec(
            proptest::collection::vec((1u32..10_000, 0u64..100, 1u64..10_000_000), 1..5),
            1..8),
    ) {
        use riptide_repro::riptide::agent::RiptideAgent;
        use riptide_repro::riptide::control::SharedRouteController;
        use riptide_repro::riptide::observe::FnObserver;
        use riptide_repro::simnet::time::SimDuration;
        use std::cell::RefCell;
        use std::rc::Rc;

        for (name, policy) in policies_under_test() {
            let cfg = RiptideConfig::builder()
                .policy(policy)
                .build()
                .expect("registered policies build valid configs");
            let (c_min, c_max) = (cfg.cwnd_min, cfg.cwnd_max);
            let table = Rc::new(RefCell::new(RouteTable::new()));
            let mut controller = SharedRouteController::new(Rc::clone(&table));
            let mut agent = RiptideAgent::new(cfg).expect("valid config");
            for (i, tick) in ticks.iter().enumerate() {
                let now = SimTime::ZERO + SimDuration::from_secs(10 * (i as u64 + 1));
                let batch: Vec<CwndObservation> = tick
                    .iter()
                    .enumerate()
                    .map(|(j, &(cwnd, retrans, bytes_acked))| CwndObservation {
                        dst: Ipv4Addr::new(10, 0, j as u8 % 4, 1),
                        cwnd,
                        bytes_acked,
                        retrans,
                        ecn_marks: 0,
                    })
                    .collect();
                let mut observer = FnObserver(|| batch.clone());
                agent.tick(now, &mut observer, &mut controller);
                for route in table.borrow().iter() {
                    if let Some(w) = route.attrs.initcwnd {
                        prop_assert!(
                            (c_min..=c_max).contains(&w),
                            "{}: installed {} outside [{}, {}] at {}",
                            name, w, c_min, c_max, route.prefix
                        );
                    }
                }
            }
        }
    }

    // A constant signal is a fixed point for every policy: feed the
    // same fresh value long enough (loss-free, so the utility score
    // has nothing to discount) and the learned window is that value.
    #[test]
    fn constant_input_converges_for_every_policy(
        c in 1.0f64..1_000_000.0,
        steps in 50usize..200,
    ) {
        use riptide_repro::riptide::policy::{Policy, PolicyInput};

        for (name, policy) in policies_under_test() {
            let mut state = policy.new_state();
            let mut last = f64::NAN;
            for _ in 0..steps {
                last = policy.observe(&mut state, &PolicyInput::fresh_only(c));
            }
            prop_assert!(
                ((last - c) / c).abs() < 1e-9,
                "{}: constant {} converged to {}",
                name, c, last
            );
        }
    }

    // Every policy's history accumulator — the seeded/unseeded EWMA
    // and utility scores, the sample ring, the windowed mean —
    // survives a persist encode → decode round trip bit-exactly
    // (Debug rendering distinguishes -0.0 from 0.0, so comparing it
    // alongside `==` pins the bits, not just numeric equality).
    #[test]
    fn history_states_round_trip_bit_exactly_for_every_policy(
        seeds in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        use riptide_repro::riptide::persist::{
            decode_state, encode_state, SnapshotEntry, TableSnapshot,
        };
        use riptide_repro::riptide::policy::{Policy, PolicyInput};

        let mut entries = Vec::new();
        for (i, (_, policy)) in policies_under_test().into_iter().enumerate() {
            for (j, &seed) in seeds.iter().enumerate() {
                let mut state = policy.new_state();
                let mut rng = seed;
                let mut last = 0.0;
                for _ in 0..1 + seed % 9 {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    last = policy.observe(&mut state, &PolicyInput {
                        fresh: (rng >> 40) as f64 / 16.0 + 1.0,
                        retrans: (rng >> 20) & 0x3,
                        ecn_marks: 0,
                        bytes_acked: 1 << 20,
                    });
                }
                entries.push(SnapshotEntry {
                    key: Ipv4Prefix::host(Ipv4Addr::new(10, i as u8, j as u8, 1)),
                    window: 10 + (seed % 90) as u32,
                    last_fresh: last,
                    last_updated: SimTime::from_secs(seed % 1_000),
                    history: state,
                });
            }
        }
        let snapshot = TableSnapshot {
            taken_at: SimTime::from_secs(1),
            entries,
            installs: Vec::new(),
            guards: Vec::new(),
            skipped_entries: 0,
        };
        let bytes = encode_state(&snapshot, &[]);
        let state = decode_state(&bytes);
        prop_assert!(state.is_ok(), "clean bytes must decode: {:?}", state);
        let state = state.unwrap();
        prop_assert_eq!(
            format!("{:?}", state.snapshot.entries),
            format!("{:?}", snapshot.entries),
            "history payloads must round-trip bit-exactly"
        );
        prop_assert_eq!(&state.snapshot, &snapshot);
    }
}
