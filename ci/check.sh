#!/usr/bin/env bash
# The tier-1 gate: everything CI enforces, runnable locally with
#   ./ci/check.sh
# The workspace is fully self-contained (no registry deps; `proptest`
# and `criterion` are in-repo shims), so every step below works
# offline. Pass --offline through to cargo via CARGO_NET_OFFLINE=true
# if your environment has no network at all.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
run cargo build --release --workspace
run cargo test -q --release --workspace

echo "==> all checks passed"
