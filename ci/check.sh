#!/usr/bin/env bash
# The tier-1 gate: everything CI enforces, runnable locally with
#   ./ci/check.sh
# The workspace is fully self-contained (no registry deps; `proptest`
# and `criterion` are in-repo shims), so every step below works
# offline. Pass --offline through to cargo via CARGO_NET_OFFLINE=true
# if your environment has no network at all.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
run cargo build --release --workspace
run cargo test -q --release --workspace

# Closed-loop safety smoke: the guardrail sweep at test scale asserts
# its own invariants (drift repaired, foreign routes untouched, bounds
# held, breaker reduces harm) and exits nonzero on any violation.
run cargo run --release -p riptide-bench --bin guardrail -- \
    --scale test --seeds 2
run grep -q '"drift_unrepaired": 0' BENCH_guardrail.json
run grep -q '"foreign_touched": 0' BENCH_guardrail.json

# Telemetry smoke: a quick-scale probe plan with the metrics bundle
# attached must keep merged snapshots thread-count invariant, leave
# uninstrumented digests bit-identical (zero overhead), and move the
# key counters; the golden test pins the exposition format itself.
run cargo run --release -p riptide-bench --bin telemetry -- \
    --scale test --seeds 1
run grep -q '"thread_invariant": true' BENCH_telemetry.json
run grep -q '"zero_overhead": true' BENCH_telemetry.json
run cargo test -q --release --test golden_exposition

# Hot-path smoke: replay the quick-scale probe comparison against the
# checked-in BENCH_simperf.json. Any digest drift is fatal (the
# optimisations must be behaviour-preserving, bit for bit), as is an
# events/sec regression past the recorded baseline's floor.
run cargo run --release -p riptide-bench --bin simperf -- \
    --scale quick --check

echo "==> all checks passed"
