#!/usr/bin/env bash
# The tier-1 gate: everything CI enforces, runnable locally with
#   ./ci/check.sh [lint|build|all]
#
# Stages (default: all):
#   lint   fast fail-early checks — fmt, clippy, rustdoc -D warnings
#   build  release build, tests, and the bench smoke gates
#
# CI runs the stages as separate jobs (lint gates build), so a
# formatting error never burns a long bench run. The workspace is
# fully self-contained (no registry deps; `proptest` and `criterion`
# are in-repo shims), so every step below works offline. Pass
# --offline through to cargo via CARGO_NET_OFFLINE=true if your
# environment has no network at all.
#
# Bench smoke runs write their BENCH_*.json output to a scratch
# directory (--out), never to the checked-in baselines: the gate must
# leave the git tree clean. Regression checks (simperf/shardscale
# --check) read the checked-in baselines and write nothing.

set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"
case "$stage" in
    lint|build|all) ;;
    *) echo "usage: ci/check.sh [lint|build|all]" >&2; exit 2 ;;
esac

run() {
    echo "==> $*"
    "$@"
}

if [[ "$stage" == "lint" || "$stage" == "all" ]]; then
    run cargo fmt --all -- --check
    run cargo clippy --workspace --all-targets -- -D warnings
    run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
fi

if [[ "$stage" == "build" || "$stage" == "all" ]]; then
    run cargo build --release --workspace
    run cargo test -q --release --workspace
    # Doc-tests explicitly: the `# Examples` blocks across the crates
    # are executable documentation and must stay honest on their own,
    # even if a future flag trims them from the default test run.
    run cargo test -q --release --doc --workspace

    scratch="$(mktemp -d)"
    trap 'rm -rf "$scratch"' EXIT

    # Closed-loop safety smoke: the guardrail sweep at test scale asserts
    # its own invariants (drift repaired, foreign routes untouched, bounds
    # held, breaker reduces harm) and exits nonzero on any violation.
    run cargo run --release -p riptide-bench --bin guardrail -- \
        --scale test --seeds 2 --out "$scratch/BENCH_guardrail.json"
    run grep -q '"drift_unrepaired": 0' "$scratch/BENCH_guardrail.json"
    run grep -q '"foreign_touched": 0' "$scratch/BENCH_guardrail.json"
    run grep -q '"invariant_breaches": 0' "$scratch/BENCH_guardrail.json"

    # Telemetry smoke: a quick-scale probe plan with the metrics bundle
    # attached must keep merged snapshots thread-count invariant, leave
    # uninstrumented digests bit-identical (zero overhead), and move the
    # key counters; the golden test pins the exposition format itself.
    run cargo run --release -p riptide-bench --bin telemetry -- \
        --scale test --seeds 1 --out "$scratch/BENCH_telemetry.json"
    run grep -q '"thread_invariant": true' "$scratch/BENCH_telemetry.json"
    run grep -q '"zero_overhead": true' "$scratch/BENCH_telemetry.json"
    run cargo test -q --release --test golden_exposition

    # Hot-path smoke: replay the quick-scale probe comparison against the
    # checked-in BENCH_simperf.json. Any digest drift is fatal (the
    # optimisations must be behaviour-preserving, bit for bit), as is an
    # events/sec regression past the recorded baseline's floor.
    run cargo run --release -p riptide-bench --bin simperf -- \
        --scale quick --check

    # Shard-scaling smoke: the work-stealing scheduler must reproduce
    # the checked-in serial digest (drift fatal), merge identically at
    # threads=1 and threads=4 (steal-order divergence fatal), and — on
    # a runner with >= 4 hardware threads — hit the speedup floor at
    # threads=4.
    run cargo run --release -p riptide-bench --bin shardscale -- \
        --scale quick --check

    # Destination-table smoke: a small megacdn run exercises the trie,
    # the aggregation round trip, reconcile and grouped eviction end to
    # end (scratch --out keeps the baseline untouched)...
    run cargo run --release -p riptide-bench --bin megacdn -- \
        --scale test --out "$scratch/BENCH_megacdn.json"
    run grep -q '"roundtrip_ok": true' "$scratch/BENCH_megacdn.json"
    # ...and the full gate replays 1M+ destinations against the
    # checked-in BENCH_megacdn.json: lookup/round-trip digest drift is
    # fatal, as are the aggregation-ratio floor and the sublinear
    # grouped-eviction ceiling.
    run cargo run --release -p riptide-bench --bin megacdn -- \
        --scale quick --check

    # Durability smoke: one coldstart sweep at test scale writes to the
    # scratch dir and asserts its own invariants (zero-rate arms
    # bit-identical to the fault-free run, warm arms over the
    # ramp-improvement floor)...
    run cargo run --release -p riptide-bench --bin coldstart -- \
        --out "$scratch/BENCH_coldstart.json"
    run grep -q '"zero_rate_bit_identical": true' "$scratch/BENCH_coldstart.json"
    # ...and the gate replays the sweep against the checked-in
    # BENCH_coldstart.json: digest drift is fatal, as is a snapshot or
    # snapshot+gossip arm falling under the 1.5x ramp-improvement floor
    # vs. cold relearn.
    run cargo run --release -p riptide-bench --bin coldstart -- --check

    # Policy-arena smoke: one test-scale ablation run writes to the
    # scratch dir; the binary itself aborts unless the default-EWMA arm
    # reproduces the probe comparison bit for bit (the Policy trait
    # seam must cost nothing)...
    run cargo run --release -p riptide-bench --bin policy_arena -- \
        --scale test --out "$scratch/BENCH_policyarena.json"
    run grep -q '"ewma_bit_identical": true' "$scratch/BENCH_policyarena.json"
    # ...and the gate replays the quick-scale arena against the
    # checked-in BENCH_policyarena.json: digest drift in any policy's
    # arm is fatal.
    run cargo run --release -p riptide-bench --bin policy_arena -- \
        --scale quick --check

    # Scenario-matrix smoke: one test-scale matrix run writes to the
    # scratch dir; the binary itself aborts unless the baseline cell
    # reproduces the probe comparison bit for bit, at least two cells
    # re-rank the policies, and loss-utility beats plain EWMA on the
    # lossy-edge arm...
    run cargo run --release -p riptide-bench --bin scenarios -- \
        --scale test --threads 4 --out "$scratch/BENCH_scenarios.json"
    run grep -q '"baseline_bit_identical": true' "$scratch/BENCH_scenarios.json"
    run grep -q '"lossy_edge_loss_utility_beats_ewma": true' "$scratch/BENCH_scenarios.json"
    # ...and the gate replays the matrix against the checked-in
    # BENCH_scenarios.json: digest drift in any scenario cell is fatal.
    run cargo run --release -p riptide-bench --bin scenarios -- \
        --threads 4 --check
fi

echo "==> stage '$stage' passed"
