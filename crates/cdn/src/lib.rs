//! # riptide-cdn
//!
//! The simulated production environment for the Riptide reproduction:
//! the paper's 34-PoP CDN (Table II) with geography-derived RTTs
//! (Fig. 5), the Fig. 2 file-size workload, the §IV-A probe
//! infrastructure, organic back-office traffic, and experiment runners
//! that regenerate every figure of the evaluation.
//!
//! ## Module map (↔ paper sections)
//!
//! | Module | Role | Paper anchor |
//! |---|---|---|
//! | [`geo`] | The 34 PoP sites with coordinates | Table II |
//! | [`topology`] | Testbed: PoPs, machines, geography-derived paths | §IV-A; Fig. 5 |
//! | [`workload`] | Probe harness + organic traffic (file-size model, Zipf popularity) | §IV-A; Fig. 2 |
//! | [`megacdn`] | Million-destination fleet generator for table-scale runs | §III-B at internet scale |
//! | [`scenario`] | Named (topology × workload × AQM × CC) matrix cells | §V threats to validity |
//! | [`sim`] | The deployment loop: agents, probes, sampling, chaos, persistence | §IV-A/§IV-D |
//! | [`gossip`] | Anti-entropy fleet-sync scheduler (seeded fanout, per-peer backoff) | Pied Piper (PAPERS.md) |
//! | [`experiment`] | One runner per figure (Figs. 10–16) | §IV |
//! | [`engine`] | Parallel sharded execution, digests, manifests | — (reproduction infrastructure) |
//! | [`schedule`] | LPT-seeded work-stealing shard scheduler | — (reproduction infrastructure) |
//! | [`stats`] | CDFs, percentile gains, histograms | Figs. 10–16 metrics |
//!
//! See `DESIGN.md` at the repository root for the experiment index.
//!
//! ## Example: one paired experiment
//!
//! ```
//! use riptide_cdn::experiment::{probe_comparison, ExperimentScale};
//!
//! // A miniature control-vs-Riptide run (five PoPs, minutes of
//! // simulated time); scale up with `ExperimentScale::quick()`/`paper()`.
//! let cmp = probe_comparison(&ExperimentScale::test());
//! assert!(!cmp.control.is_empty() && !cmp.riptide.is_empty());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod geo;
pub mod gossip;
pub mod megacdn;
pub mod scenario;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod workload;

/// The types most users need, importable in one line.
pub mod prelude {
    pub use crate::engine::{RunPlan, RunReport, ShardData, ShardId, ShardSpec, ShardWork};
    pub use crate::experiment::{
        probe_comparison, ColdstartMode, ExperimentScale, ProbeComparison,
    };
    pub use crate::geo::{Continent, PopSite, POP_SITES};
    pub use crate::gossip::{GossipConfig, GossipFabric, GossipStats};
    pub use crate::megacdn::MegaCdnConfig;
    pub use crate::scenario::{scenario_catalog, scenario_sim_config, ScenarioSpec, WorkloadShape};
    pub use crate::sim::{
        CdnSim, CdnSimConfig, ChaosReport, ColdstartReport, CwndSample, PersistenceConfig,
        ProbeOutcome,
    };
    pub use crate::stats::{average_gains, percentile_gains, Cdf, PercentileGain};
    pub use crate::topology::{RttBucket, Testbed, TestbedConfig};
    pub use crate::workload::{FileSizeDist, FlashCrowd, OrganicConfig, ProbeConfig, Zipf};
}
