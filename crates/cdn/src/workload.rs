//! Workload generators: the Fig. 2 file-size distribution, the paper's
//! probe schedule, and Poisson "organic" back-office traffic.

use riptide_simnet::rng::DetRng;
use riptide_simnet::time::SimDuration;

/// The CDN file-size distribution of the paper's Fig. 2, as a lognormal
/// fitted through the quantiles the paper states or implies:
///
/// * 46% of files fit in the default 10-segment window (≈ 15 KB) — "54%
///   are too large";
/// * raising the window to 50 lets "over 31% more" complete in one RTT
///   (→ F(75 KB) ≈ 0.77);
/// * at 100 "all but 15%" complete in one RTT (→ F(150 KB) ≈ 0.85).
///
/// Solving those gives `ln S ~ N(μ ≈ 9.81, σ ≈ 1.92)` (bytes). Samples
/// are clamped to `[min_bytes, max_bytes]`; the cap keeps the rare
/// multi-gigabyte tail from dominating simulation cost and is recorded as
/// a substitution in DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct FileSizeDist {
    /// Mean of `ln(bytes)`.
    pub mu: f64,
    /// Standard deviation of `ln(bytes)`.
    pub sigma: f64,
    /// Smallest sample returned.
    pub min_bytes: u64,
    /// Largest sample returned.
    pub max_bytes: u64,
}

impl Default for FileSizeDist {
    fn default() -> Self {
        FileSizeDist::fig2()
    }
}

impl FileSizeDist {
    /// The Fig. 2 fit.
    pub fn fig2() -> Self {
        FileSizeDist {
            mu: 9.81,
            sigma: 1.92,
            min_bytes: 100,
            max_bytes: 10 * 1024 * 1024,
        }
    }

    /// Draws one file size in bytes.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let raw = rng.lognormal(self.mu, self.sigma);
        (raw as u64).clamp(self.min_bytes, self.max_bytes)
    }

    /// The theoretical (unclamped) CDF at `bytes`.
    pub fn cdf(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let z = ((bytes as f64).ln() - self.mu) / self.sigma;
        standard_normal_cdf(z)
    }

    /// The theoretical quantile (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
        let z = standard_normal_quantile(p);
        (self.mu + self.sigma * z).exp() as u64
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7, ample for workload fitting).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal quantile (Acklam's rational approximation).
fn standard_normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Zipf-distributed popularity over `n` ranked items (rank 0 most
/// popular), the classic fit for CDN destination popularity: a few
/// origins take most of the back-office traffic while a long tail is
/// touched rarely. Sampling is a binary search over the precomputed
/// CDF, so a million-rank table costs one `partition_point` per draw.
///
/// # Examples
///
/// ```
/// use riptide_cdn::workload::Zipf;
/// use riptide_simnet::rng::DetRng;
///
/// let zipf = Zipf::new(1_000, 1.07);
/// let mut rng = DetRng::from_seed(7);
/// let head = (0..10_000).filter(|_| zipf.sample(&mut rng) == 0).count();
/// // Rank 0 alone draws a double-digit share of all samples.
/// assert!(head > 1_000, "head rank drew {head}/10000");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[k] = P(rank <= k)`; the last entry
    /// is 1 (up to rounding).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with the given exponent
    /// (`s = 0` is uniform; CDN popularity is typically fit near 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the exponent is negative or non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "a Zipf over zero items cannot be sampled");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "Zipf exponent must be finite and non-negative, got {exponent}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no ranks (never true for a
    /// constructed value; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn probability(&self, rank: usize) -> f64 {
        match rank {
            0 => self.cdf[0],
            _ => self.cdf[rank] - self.cdf[rank - 1],
        }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The paper's probe harness parameters (§IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeConfig {
    /// Probe payloads, bytes. The paper uses 10, 50 and 100 KB
    /// "simultaneously".
    pub sizes: Vec<u64>,
    /// How often each machine probes every other PoP (hourly in the
    /// paper; shorter in scaled-down runs for sample volume).
    pub interval: SimDuration,
    /// Probability that a machine's idle connection to a destination is
    /// closed before a probe round — modelling the application churn of
    /// §II-A (errors, reboots, load-balancing) that forces fresh
    /// connections.
    pub churn: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            sizes: vec![10_000, 50_000, 100_000],
            interval: SimDuration::from_secs(3600),
            churn: 0.5,
        }
    }
}

impl ProbeConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description if sizes are empty, the interval is zero, or
    /// churn is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.sizes.is_empty() {
            return Err("probe sizes must be non-empty".into());
        }
        if self.interval.is_zero() {
            return Err("probe interval must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.churn) {
            return Err(format!("churn must be in [0,1], got {}", self.churn));
        }
        Ok(())
    }
}

/// A flash-crowd burst: within `[start, start + duration)` (offsets from
/// simulation start) the organic arrival rate is multiplied by
/// `multiplier`. Models the sudden back-office fan-out after a cache
/// purge or a breaking-news event — the regime where many *fresh*
/// connections open at once and jump-started windows matter most.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowd {
    /// Burst onset, as an offset from simulation start.
    pub start: SimDuration,
    /// Burst length.
    pub duration: SimDuration,
    /// Arrival-rate multiplier while the burst is active (> 1 for a
    /// crowd; values in (0, 1) model brown-outs).
    pub multiplier: f64,
}

impl FlashCrowd {
    /// Whether simulated time `t_secs` falls inside the burst window.
    pub fn contains(&self, t_secs: f64) -> bool {
        let s = self.start.as_secs_f64();
        t_secs >= s && t_secs < s + self.duration.as_secs_f64()
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description if the duration is zero or the multiplier
    /// is non-positive or non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration.is_zero() {
            return Err("flash-crowd duration must be non-zero".into());
        }
        if !(self.multiplier > 0.0 && self.multiplier.is_finite()) {
            return Err(format!(
                "flash-crowd multiplier must be finite and positive, got {}",
                self.multiplier
            ));
        }
        Ok(())
    }
}

/// Poisson back-office ("organic") traffic between busy PoP pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct OrganicConfig {
    /// Indices (into the testbed's site list) of PoPs that carry organic
    /// traffic. Flows run between every ordered pair of busy PoPs.
    pub busy_pops: Vec<usize>,
    /// Mean flow arrivals per second per ordered busy pair.
    pub flows_per_sec: f64,
    /// Diurnal modulation amplitude in `[0, 1)`: the arrival rate swings
    /// sinusoidally around its mean over a 24-hour simulated period,
    /// `rate(t) = flows_per_sec x (1 + amplitude x sin(2pi t / 24h))`.
    /// Zero (the default) keeps the rate constant. §V ties Riptide's
    /// effectiveness to the traffic profile; this knob exercises that.
    pub diurnal_amplitude: f64,
    /// Flash-crowd bursts layered on top of the diurnal curve; each
    /// active burst multiplies the instantaneous rate. Empty (the
    /// default) leaves the rate curve — and therefore every RNG draw —
    /// untouched.
    pub flash_crowds: Vec<FlashCrowd>,
    /// Flow size distribution.
    pub sizes: FileSizeDist,
}

impl Default for OrganicConfig {
    fn default() -> Self {
        OrganicConfig {
            busy_pops: Vec::new(),
            flows_per_sec: 0.2,
            diurnal_amplitude: 0.0,
            flash_crowds: Vec::new(),
            sizes: FileSizeDist::fig2(),
        }
    }
}

impl OrganicConfig {
    /// No organic traffic at all (probe-only network).
    pub fn none() -> Self {
        OrganicConfig::default()
    }

    /// Organic traffic among the given PoP indices.
    pub fn among(busy_pops: Vec<usize>, flows_per_sec: f64) -> Self {
        OrganicConfig {
            busy_pops,
            flows_per_sec,
            ..OrganicConfig::default()
        }
    }

    /// Whether any organic traffic is configured.
    pub fn is_enabled(&self) -> bool {
        self.busy_pops.len() >= 2 && self.flows_per_sec > 0.0
    }

    /// The instantaneous arrival rate at simulated time `t_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `diurnal_amplitude` is outside `[0, 1)` (validated when
    /// the simulation is built).
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        let mut rate = if self.diurnal_amplitude == 0.0 {
            self.flows_per_sec
        } else {
            let phase = t_secs / (24.0 * 3600.0) * std::f64::consts::TAU;
            self.flows_per_sec * (1.0 + self.diurnal_amplitude * phase.sin())
        };
        for crowd in &self.flash_crowds {
            if crowd.contains(t_secs) {
                rate *= crowd.multiplier;
            }
        }
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_quantiles_match_paper() {
        let d = FileSizeDist::fig2();
        // 54% of files exceed the 15 KB default-window capacity.
        let f15k = d.cdf(15_000);
        assert!((f15k - 0.46).abs() < 0.02, "F(15KB) = {f15k}");
        // Window of 50 → one-RTT capacity ≈ 72 KB; ~31% more complete.
        let f75k = d.cdf(75_000);
        assert!((f75k - 0.77).abs() < 0.02, "F(75KB) = {f75k}");
        // Window of 100 → all but ~15%.
        let f150k = d.cdf(150_000);
        assert!((f150k - 0.855).abs() < 0.025, "F(150KB) = {f150k}");
    }

    #[test]
    fn cdf_is_monotone() {
        let d = FileSizeDist::fig2();
        let mut prev = 0.0;
        for bytes in [0u64, 100, 1_000, 10_000, 100_000, 1_000_000, 100_000_000] {
            let f = d.cdf(bytes);
            assert!(f >= prev, "CDF must not decrease");
            prev = f;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = FileSizeDist::fig2();
        for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let q = d.quantile(p);
            let back = d.cdf(q);
            assert!((back - p).abs() < 0.01, "p={p} q={q} back={back}");
        }
    }

    #[test]
    fn samples_match_theoretical_cdf() {
        let d = FileSizeDist::fig2();
        let mut rng = DetRng::from_seed(77);
        let n = 50_000;
        let below_15k = (0..n).filter(|_| d.sample(&mut rng) <= 15_000).count();
        let frac = below_15k as f64 / n as f64;
        assert!((frac - 0.46).abs() < 0.02, "empirical F(15KB) = {frac}");
    }

    #[test]
    fn samples_respect_clamps() {
        let d = FileSizeDist {
            min_bytes: 1_000,
            max_bytes: 50_000,
            ..FileSizeDist::fig2()
        };
        let mut rng = DetRng::from_seed(3);
        for _ in 0..5_000 {
            let s = d.sample(&mut rng);
            assert!((1_000..=50_000).contains(&s));
        }
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn probe_config_default_is_papers() {
        let p = ProbeConfig::default();
        p.validate().unwrap();
        assert_eq!(p.sizes, vec![10_000, 50_000, 100_000]);
        assert_eq!(p.interval, SimDuration::from_secs(3600));
    }

    #[test]
    fn probe_config_validation() {
        let mut p = ProbeConfig::default();
        p.sizes.clear();
        assert!(p.validate().is_err());
        let p = ProbeConfig {
            churn: 1.5,
            ..ProbeConfig::default()
        };
        assert!(p.validate().is_err());
        let p = ProbeConfig {
            interval: SimDuration::ZERO,
            ..ProbeConfig::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn diurnal_rate_oscillates_around_mean() {
        let cfg = OrganicConfig {
            busy_pops: vec![0, 1],
            flows_per_sec: 1.0,
            diurnal_amplitude: 0.5,
            ..OrganicConfig::default()
        };
        assert!((cfg.rate_at(0.0) - 1.0).abs() < 1e-9, "phase zero = mean");
        let peak = cfg.rate_at(6.0 * 3600.0);
        let trough = cfg.rate_at(18.0 * 3600.0);
        assert!((peak - 1.5).abs() < 1e-9, "peak at +6h: {peak}");
        assert!((trough - 0.5).abs() < 1e-9, "trough at +18h: {trough}");
        // Constant when amplitude is zero.
        let flat = OrganicConfig::among(vec![0, 1], 2.0);
        assert_eq!(flat.rate_at(12345.0), 2.0);
    }

    #[test]
    fn flash_crowd_multiplies_rate_inside_its_window() {
        let cfg = OrganicConfig {
            busy_pops: vec![0, 1],
            flows_per_sec: 1.0,
            flash_crowds: vec![FlashCrowd {
                start: SimDuration::from_secs(100),
                duration: SimDuration::from_secs(50),
                multiplier: 8.0,
            }],
            ..OrganicConfig::default()
        };
        assert_eq!(cfg.rate_at(99.0), 1.0, "before the burst: base rate");
        assert_eq!(cfg.rate_at(100.0), 8.0, "onset is inclusive");
        assert_eq!(cfg.rate_at(149.9), 8.0, "inside the burst");
        assert_eq!(cfg.rate_at(150.0), 1.0, "end is exclusive");
    }

    #[test]
    fn flash_crowd_stacks_on_the_diurnal_curve() {
        let cfg = OrganicConfig {
            busy_pops: vec![0, 1],
            flows_per_sec: 1.0,
            diurnal_amplitude: 0.5,
            flash_crowds: vec![FlashCrowd {
                start: SimDuration::from_secs(6 * 3600),
                duration: SimDuration::from_secs(3600),
                multiplier: 4.0,
            }],
            ..OrganicConfig::default()
        };
        // Diurnal peak (+6h) is 1.5; the crowd quadruples it.
        assert!((cfg.rate_at(6.0 * 3600.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_validation() {
        let good = FlashCrowd {
            start: SimDuration::ZERO,
            duration: SimDuration::from_secs(60),
            multiplier: 8.0,
        };
        good.validate().unwrap();
        let zero_len = FlashCrowd {
            duration: SimDuration::ZERO,
            ..good.clone()
        };
        assert!(zero_len.validate().is_err());
        let bad_mult = FlashCrowd {
            multiplier: 0.0,
            ..good.clone()
        };
        assert!(bad_mult.validate().is_err());
        let nan_mult = FlashCrowd {
            multiplier: f64::NAN,
            ..good
        };
        assert!(nan_mult.validate().is_err());
    }

    #[test]
    fn zipf_head_ranks_follow_theory() {
        let zipf = Zipf::new(10_000, 1.07);
        let mut rng = DetRng::from_seed(42);
        let n = 100_000;
        let mut head_counts = [0usize; 3];
        for _ in 0..n {
            let r = zipf.sample(&mut rng);
            if r < head_counts.len() {
                head_counts[r] += 1;
            }
        }
        for (rank, &count) in head_counts.iter().enumerate() {
            let want = zipf.probability(rank);
            let got = count as f64 / n as f64;
            assert!(
                (got - want).abs() < 0.01,
                "rank {rank}: empirical {got} vs theoretical {want}"
            );
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for rank in 0..4 {
            assert!((zipf.probability(rank) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_is_deterministic() {
        let zipf = Zipf::new(1_000_000, 1.07);
        assert_eq!(zipf.len(), 1_000_000);
        let draw = |seed| {
            let mut rng = DetRng::from_seed(seed);
            (0..100).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn organic_enablement() {
        assert!(!OrganicConfig::none().is_enabled());
        assert!(!OrganicConfig::among(vec![3], 1.0).is_enabled());
        assert!(OrganicConfig::among(vec![1, 2], 1.0).is_enabled());
        assert!(!OrganicConfig::among(vec![1, 2], 0.0).is_enabled());
    }
}
