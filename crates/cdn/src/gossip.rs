//! The anti-entropy gossip fabric: who syncs with whom, and when.
//!
//! The *pure* half of fleet sync — digests, bounded deltas, and the
//! newest-wins clamp-merge conflict rule — lives in `riptide::sync`;
//! the agent-side application of a delta is `RiptideAgent::merge_remote`.
//! This module holds the simulation-facing scheduler around them:
//!
//! * **Seeded schedule** — each round, every live host draws `fanout`
//!   peers from a [`DetRng`] forked off the simulation stream. Forking
//!   is pure, so a run with gossip disabled draws the exact same
//!   sequence everywhere else (the digest-neutrality invariant every
//!   optional layer in this repo obeys).
//! * **Digest-first push-pull** — a pair first compares
//!   [`TableDigest`]s (12 bytes each way); deltas only travel when the
//!   digests differ, and each delta is capped at
//!   [`GossipConfig::max_entries`] entries, so message sizes stay
//!   bounded no matter how large tables grow.
//! * **Per-peer backoff** — a peer found down (crashed, mid-restart)
//!   is not re-probed until [`GossipConfig::backoff`] elapses, so a
//!   dead host does not eat the fleet's gossip budget.
//!
//! The fabric never touches agents itself: [`CdnSim`] asks it for this
//! round's pairs, performs the exchanges, and records them back, which
//! keeps all table mutation on the one code path that honours the
//! no-harm bounds.
//!
//! [`TableDigest`]: riptide::sync::TableDigest
//! [`CdnSim`]: crate::sim::CdnSim

use std::collections::BTreeMap;

use riptide::sync::SyncConfig;
use riptide_simnet::prelude::*;

/// Tuning for the gossip fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// Gossip round interval.
    pub every: SimDuration,
    /// Peers each live host initiates an exchange with per round.
    pub fanout: usize,
    /// Hard cap on entries per shipped delta (bounded message sizes).
    pub max_entries: usize,
    /// How long a peer found down is left alone before being re-tried.
    pub backoff: SimDuration,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            every: SimDuration::from_secs(30),
            fanout: 1,
            max_entries: 256,
            backoff: SimDuration::from_secs(60),
        }
    }
}

impl GossipConfig {
    /// Checks the parameters are usable.
    pub fn validate(&self) -> Result<(), String> {
        if self.every == SimDuration::ZERO {
            return Err("gossip interval must be positive".into());
        }
        if self.fanout == 0 {
            return Err("gossip fanout must be at least 1".into());
        }
        if self.max_entries == 0 {
            return Err("gossip max_entries must be at least 1".into());
        }
        Ok(())
    }
}

/// Scheduling counters for one run's gossip fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Rounds the fabric scheduled.
    pub rounds: u64,
    /// Exchanges drawn between two live, non-backing-off hosts.
    pub pairs: u64,
    /// Peer draws skipped because the peer was inside its backoff.
    pub backoff_skips: u64,
    /// Draws that found the peer down and started a backoff.
    pub peers_marked_down: u64,
}

/// The per-run gossip scheduler: a forked RNG, per-pair freshness
/// stamps, and per-peer backoff clocks.
#[derive(Debug)]
pub struct GossipFabric {
    config: GossipConfig,
    rng: DetRng,
    next_round: SimTime,
    /// Per unordered pair: when the two hosts last exchanged state —
    /// the `newer_than` bound of the next delta between them.
    last_exchange: BTreeMap<(usize, usize), SimTime>,
    /// Per host: do not initiate an exchange with this peer before
    /// this instant (set when a draw finds the peer down).
    backoff_until: Vec<SimTime>,
    stats: GossipStats,
}

fn pair_key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

impl GossipFabric {
    /// Builds the fabric for `hosts` hosts, forking its RNG off
    /// `parent` (purely: the parent's own sequence is not advanced).
    pub fn new(config: GossipConfig, parent: &DetRng, hosts: usize) -> Self {
        GossipFabric {
            rng: parent.fork(0x9055_1FAB),
            next_round: SimTime::ZERO + config.every,
            last_exchange: BTreeMap::new(),
            backoff_until: vec![SimTime::ZERO; hosts],
            stats: GossipStats::default(),
            config,
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// When the next round fires.
    pub fn next_round(&self) -> SimTime {
        self.next_round
    }

    /// Schedules the round after `now`.
    pub fn schedule_next(&mut self, now: SimTime) {
        self.next_round = now + self.config.every;
    }

    /// The delta bound handed to `riptide::sync::delta_for`.
    pub fn sync_config(&self) -> SyncConfig {
        SyncConfig {
            max_entries: self.config.max_entries,
        }
    }

    /// Scheduling counters so far.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Draws this round's exchange pairs: each live host picks
    /// `fanout` uniform peers, skipping itself, peers inside their
    /// backoff window, and pairs already drawn this round. A drawn
    /// peer that turns out to be down is not exchanged with; instead
    /// its backoff clock starts.
    pub fn pairs_for_round(&mut self, now: SimTime, alive: &[bool]) -> Vec<(usize, usize)> {
        self.stats.rounds += 1;
        let n = alive.len();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        if n < 2 {
            return pairs;
        }
        for h in 0..n {
            if !alive[h] {
                continue;
            }
            for _ in 0..self.config.fanout {
                let mut p = self.rng.below(n - 1);
                if p >= h {
                    p += 1;
                }
                if now < self.backoff_until[p] {
                    self.stats.backoff_skips += 1;
                    continue;
                }
                if !alive[p] {
                    self.backoff_until[p] = now + self.config.backoff;
                    self.stats.peers_marked_down += 1;
                    continue;
                }
                let key = pair_key(h, p);
                if pairs.iter().any(|&(a, b)| pair_key(a, b) == key) {
                    continue;
                }
                self.stats.pairs += 1;
                pairs.push((h, p));
            }
        }
        pairs
    }

    /// When `a` and `b` last exchanged state (`SimTime::ZERO` if never)
    /// — the freshness bound for the next delta between them.
    pub fn last_exchange(&self, a: usize, b: usize) -> SimTime {
        self.last_exchange
            .get(&pair_key(a, b))
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// Records that `a` and `b` completed an exchange at `now`.
    pub fn record_exchange(&mut self, a: usize, b: usize, now: SimTime) {
        self.last_exchange.insert(pair_key(a, b), now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(hosts: usize) -> GossipFabric {
        GossipFabric::new(GossipConfig::default(), &DetRng::from_seed(7), hosts)
    }

    #[test]
    fn default_config_validates() {
        assert!(GossipConfig::default().validate().is_ok());
        let bad = GossipConfig {
            fanout: 0,
            ..GossipConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GossipConfig {
            max_entries: 0,
            ..GossipConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GossipConfig {
            every: SimDuration::ZERO,
            ..GossipConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn pair_draws_are_deterministic_and_never_self() {
        let draw = || {
            let mut f = fabric(6);
            f.pairs_for_round(SimTime::from_secs(30), &[true; 6])
        };
        let pairs = draw();
        assert_eq!(pairs, draw(), "same seed, same schedule");
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|&(a, b)| a != b), "no self-gossip");
        // No unordered pair appears twice in one round.
        for (i, &(a, b)) in pairs.iter().enumerate() {
            for &(c, d) in &pairs[i + 1..] {
                assert_ne!(pair_key(a, b), pair_key(c, d));
            }
        }
    }

    #[test]
    fn forking_does_not_advance_the_parent_stream() {
        let rng = DetRng::from_seed(99);
        let mut before = rng.clone();
        let _f = GossipFabric::new(GossipConfig::default(), &rng, 4);
        let mut after = rng.clone();
        assert_eq!(before.next_u64(), after.next_u64());
    }

    #[test]
    fn down_peers_get_backed_off_then_retried() {
        let mut f = fabric(2);
        let mut alive = [true, false];
        // Host 0's only possible peer is 1, which is down: every draw
        // this round marks it down exactly once, then backoff skips.
        let t0 = SimTime::from_secs(30);
        assert!(f.pairs_for_round(t0, &alive).is_empty());
        assert_eq!(f.stats().peers_marked_down, 1);
        // Within the backoff window the peer is not re-probed.
        let t1 = t0 + SimDuration::from_secs(30);
        assert!(f.pairs_for_round(t1, &alive).is_empty());
        assert_eq!(f.stats().peers_marked_down, 1);
        assert_eq!(f.stats().backoff_skips, 1);
        // After backoff elapses and the peer restarts, gossip resumes.
        alive[1] = true;
        let t2 = t0 + SimDuration::from_secs(90);
        assert_eq!(f.pairs_for_round(t2, &alive), vec![(0, 1)]);
    }

    #[test]
    fn exchange_stamps_round_trip() {
        let mut f = fabric(3);
        assert_eq!(f.last_exchange(0, 2), SimTime::ZERO);
        f.record_exchange(2, 0, SimTime::from_secs(60));
        assert_eq!(f.last_exchange(0, 2), SimTime::from_secs(60));
        assert_eq!(f.last_exchange(2, 0), SimTime::from_secs(60), "unordered");
        assert_eq!(f.last_exchange(0, 1), SimTime::ZERO);
    }
}
