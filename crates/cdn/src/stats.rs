//! Descriptive statistics for experiment outputs: empirical CDFs,
//! quantiles and per-percentile gain series.

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "NaN sample in CDF input"
        );
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-quantile (nearest-rank on `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        if p <= 0.0 {
            return self.sorted[0];
        }
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// The median.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty CDF")
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty CDF")
    }

    /// The mean.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.sorted.is_empty(), "mean of empty CDF");
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&s| s <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// `points` evenly spaced `(value, cumulative_probability)` pairs,
    /// suitable for plotting or printing a figure series.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let p = i as f64 / points as f64;
                (self.quantile(p), p)
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Merges two CDFs into one covering both sample sets, in
    /// `O(n + m)` via a two-pointer merge of the sorted sample vectors.
    ///
    /// Because the result is fully determined by the multiset of
    /// samples, merging any number of per-shard CDFs yields the same
    /// CDF in whatever order the shards finished — the property the
    /// parallel experiment engine relies on, checked by proptest in
    /// `tests/parallel_engine.rs`.
    pub fn merge(&self, other: &Cdf) -> Cdf {
        let (a, b) = (&self.sorted, &other.sorted);
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        Cdf { sorted: merged }
    }

    /// Merges an iterator of CDFs (e.g. one per shard) into one.
    pub fn merge_all<I: IntoIterator<Item = Cdf>>(parts: I) -> Cdf {
        parts
            .into_iter()
            .fold(Cdf::new(std::iter::empty()), |acc, c| acc.merge(&c))
    }
}

/// A fixed-width histogram over non-negative `f64` samples, used by the
/// parallel experiment engine to summarise per-shard completion times
/// in a form that merges exactly (bucket counts add, so shard order
/// cannot change the result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Width of each bucket; bucket `i` covers `[i*w, (i+1)*w)`.
    width_millis: u64,
    counts: Vec<u64>,
}

impl Histogram {
    /// An empty histogram with the given bucket width (in the same
    /// unit as the recorded samples, conventionally milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "zero-width histogram bucket");
        Histogram {
            width_millis: width,
            counts: Vec::new(),
        }
    }

    /// Records one sample. Negative and NaN samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is NaN or negative.
    pub fn record(&mut self, sample: f64) {
        assert!(
            sample.is_finite() && sample >= 0.0,
            "histogram sample must be finite and non-negative, got {sample}"
        );
        let bucket = (sample / self.width_millis as f64) as usize;
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
    }

    /// Adds another histogram's counts into this one. Commutative and
    /// associative, so shard completion order cannot affect the merged
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.width_millis, other.width_millis,
            "merging histograms with different bucket widths"
        );
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// The bucket width.
    pub fn width(&self) -> u64 {
        self.width_millis
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Non-empty buckets as `(bucket_start, count)` pairs, in
    /// ascending bucket order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64 * self.width_millis, c))
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::new(iter)
    }
}

/// One row of a Fig. 15/16-style per-percentile gain table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileGain {
    /// The percentile, in percent (5, 10, …, 95).
    pub percentile: u32,
    /// Baseline (control) value at that percentile.
    pub baseline: f64,
    /// Treated (Riptide) value at that percentile.
    pub treated: f64,
    /// Fractional gain: `(baseline − treated) / baseline`; positive means
    /// the treatment is faster.
    pub gain: f64,
}

/// Per-percentile gains of `treated` over `baseline` in steps of
/// `step_pct` (the paper uses 5%).
///
/// # Panics
///
/// Panics if either CDF is empty, or `step_pct` is 0 or above 100.
pub fn percentile_gains(baseline: &Cdf, treated: &Cdf, step_pct: u32) -> Vec<PercentileGain> {
    assert!(
        !baseline.is_empty() && !treated.is_empty(),
        "gain over empty CDF"
    );
    assert!((1..=100).contains(&step_pct), "step must be in [1,100]");
    (1..)
        .map(|i| i * step_pct)
        .take_while(|&p| p < 100)
        .map(|p| {
            let q = p as f64 / 100.0;
            let b = baseline.quantile(q);
            let t = treated.quantile(q);
            PercentileGain {
                percentile: p,
                baseline: b,
                treated: t,
                gain: if b > 0.0 { (b - t) / b } else { 0.0 },
            }
        })
        .collect()
}

/// Averages gain rows across several destination tables, percentile by
/// percentile — the paper's "averaged across destinations".
///
/// # Panics
///
/// Panics if `tables` is empty or rows disagree on percentiles.
pub fn average_gains(tables: &[Vec<PercentileGain>]) -> Vec<PercentileGain> {
    assert!(!tables.is_empty(), "no gain tables to average");
    let rows = tables[0].len();
    (0..rows)
        .map(|r| {
            let pct = tables[0][r].percentile;
            let mut baseline = 0.0;
            let mut treated = 0.0;
            let mut gain = 0.0;
            for t in tables {
                assert_eq!(t[r].percentile, pct, "misaligned percentile rows");
                baseline += t[r].baseline;
                treated += t[r].treated;
                gain += t[r].gain;
            }
            let n = tables.len() as f64;
            PercentileGain {
                percentile: pct,
                baseline: baseline / n,
                treated: treated / n,
                gain: gain / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(v: &[f64]) -> Cdf {
        Cdf::new(v.iter().copied())
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = cdf(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(0.25), 10.0);
        assert_eq!(c.quantile(0.26), 20.0);
        assert_eq!(c.quantile(0.5), 20.0);
        assert_eq!(c.quantile(0.75), 30.0);
        assert_eq!(c.quantile(1.0), 40.0);
        assert_eq!(c.median(), 20.0);
    }

    #[test]
    fn fraction_below() {
        let c = cdf(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(2.0), 0.75);
        assert_eq!(c.fraction_at_or_below(99.0), 1.0);
    }

    #[test]
    fn series_is_monotone() {
        let c = cdf(&[5.0, 1.0, 9.0, 3.0, 7.0]);
        let s = c.series(10);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(s.last().unwrap().0, 9.0);
    }

    #[test]
    fn summary_stats() {
        let c = cdf(&[2.0, 4.0, 6.0]);
        assert_eq!(c.min(), 2.0);
        assert_eq!(c.max(), 6.0);
        assert_eq!(c.mean(), 4.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let c = Cdf::new(std::iter::empty());
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_or_below(1.0), 0.0);
        assert!(c.series(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = cdf(&[1.0, f64::NAN]);
    }

    #[test]
    fn gains_positive_when_treated_faster() {
        let base = cdf(&[100.0, 200.0, 300.0, 400.0]);
        let fast = cdf(&[100.0, 150.0, 210.0, 400.0]);
        let gains = percentile_gains(&base, &fast, 25);
        assert_eq!(gains.len(), 3); // 25, 50, 75
        assert_eq!(gains[0].percentile, 25);
        assert_eq!(gains[0].gain, 0.0, "best percentile unchanged");
        assert!((gains[1].gain - 0.25).abs() < 1e-12);
        assert!((gains[2].gain - 0.30).abs() < 1e-12);
    }

    #[test]
    fn averaging_across_destinations() {
        let t1 = vec![PercentileGain {
            percentile: 50,
            baseline: 100.0,
            treated: 80.0,
            gain: 0.2,
        }];
        let t2 = vec![PercentileGain {
            percentile: 50,
            baseline: 200.0,
            treated: 200.0,
            gain: 0.0,
        }];
        let avg = average_gains(&[t1, t2]);
        assert_eq!(avg.len(), 1);
        assert!((avg[0].gain - 0.1).abs() < 1e-12);
        assert!((avg[0].baseline - 150.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_pooled_construction() {
        let a = cdf(&[3.0, 1.0, 4.0]);
        let b = cdf(&[1.0, 5.0, 9.0, 2.0]);
        let merged = a.merge(&b);
        let pooled = cdf(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]);
        assert_eq!(merged, pooled);
        assert_eq!(a.merge(&b), b.merge(&a), "merge is symmetric");
        assert_eq!(
            Cdf::merge_all([a.clone(), b.clone()]),
            pooled,
            "merge_all pools everything"
        );
        assert_eq!(Cdf::merge_all([] as [Cdf; 0]).len(), 0);
    }

    #[test]
    fn histogram_counts_and_merges() {
        let mut h = Histogram::new(100);
        for s in [0.0, 99.9, 100.0, 250.0, 250.0] {
            h.record(s);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets(), vec![(0, 2), (100, 1), (200, 2)]);

        let mut other = Histogram::new(100);
        other.record(50.0);
        other.record(500.0);
        let mut ab = h.clone();
        ab.merge(&other);
        let mut ba = other.clone();
        ba.merge(&h);
        assert_eq!(ab, ba, "histogram merge commutes");
        assert_eq!(ab.total(), 7);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn histogram_width_mismatch_rejected() {
        let mut a = Histogram::new(10);
        a.merge(&Histogram::new(20));
    }

    #[test]
    fn five_percent_steps_make_nineteen_rows() {
        let base = Cdf::new((1..=100).map(|i| i as f64));
        let gains = percentile_gains(&base, &base, 5);
        assert_eq!(gains.len(), 19);
        assert_eq!(gains[0].percentile, 5);
        assert_eq!(gains[18].percentile, 95);
        assert!(gains.iter().all(|g| g.gain == 0.0));
    }
}
