//! The parallel experiment engine.
//!
//! Every figure harness used to run its simulations back to back in
//! one thread. This module splits an experiment into independent
//! **shards** — one simulation per (scenario × unit × replicate),
//! where a *scenario* is an experiment arm (control vs Riptide, one
//! `c_max` value, one ablation variant), a *unit* is the spatial slice
//! (a probe-sender PoP), and a *replicate* is an independent seed —
//! and executes them on a bounded worker pool.
//!
//! ## Determinism
//!
//! Each shard derives its RNG seed with
//! [`riptide_simnet::rng::stream_seed`] from the plan's master seed
//! and the shard's *pairing key* (unit and replicate, deliberately
//! **excluding** the scenario so that control and treatment arms of
//! the same unit/replicate stay seed-paired, preserving the paper's
//! paired-comparison design). Because every shard is self-contained
//! and results are merged in shard-index order, a run's
//! [`RunReport::digest`] is byte-identical whatever the worker count —
//! `tests/parallel_engine.rs` asserts threads=1 equals threads=8.
//!
//! ## Worker pool
//!
//! [`RunPlan::run`] sizes the pool from `RIPTIDE_THREADS` (when set to
//! a positive integer) or [`std::thread::available_parallelism`];
//! [`RunPlan::run_with_threads`] pins it explicitly. Scheduling is
//! work-stealing with LPT seeding (see [`crate::schedule`]): shards are
//! dealt to per-worker deques slowest-first by estimated event count,
//! and a worker that drains its deque steals the cheapest remaining
//! shard from a victim, so one long scenario never serializes the
//! tail. Each worker reuses a `WorkerScratch` across its shards —
//! the digest-accumulator buffer is allocated once per worker, not
//! once per shard — and writes results into plan-position slots, so
//! merged reports (and digests) are invariant under thread count and
//! steal order.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use riptide::config::RiptideConfig;
use riptide::policy::registered_policies;
use riptide::telemetry::MetricsSnapshot;
use riptide_simnet::rng::{stream_seed, DetRng};
use riptide_simnet::time::{SimDuration, SimTime};

use crate::scenario::{scenario_catalog, scenario_sim_config, ScenarioSpec};
use crate::schedule::{estimated_events, StealPool};

use crate::experiment::{
    chaos_sim_config, coldstart_sim_config, cwnd_sim_config, guarded_riptide_config,
    guardrail_sim_config, probe_sender_sites, probe_sim_config, traffic_profile_sites,
    traffic_sim_config, ColdstartMode, ExperimentScale, ProbeComparison, StackTweaks,
};
use crate::sim::{CdnSim, CdnSimConfig, ChaosReport, ColdstartReport, ProbeOutcome};
use crate::stats::{Cdf, Histogram};

/// The coordinates of one shard inside a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId {
    /// Experiment arm (control, one `c_max`, one ablation variant…).
    pub scenario: u32,
    /// Spatial slice — for probe experiments, the index of the sender
    /// PoP within the plan's sender list.
    pub unit: u32,
    /// Independent replication index (distinct seed).
    pub replicate: u32,
}

impl ShardId {
    /// The seed-pairing key: identifies the (unit, replicate) cell but
    /// **not** the scenario, so all arms of one cell draw the same
    /// RNG stream and stay directly comparable.
    pub fn pairing_key(self) -> u64 {
        ((self.replicate as u64) << 32) | self.unit as u64
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}.u{}.r{}", self.scenario, self.unit, self.replicate)
    }
}

/// What one shard simulates.
#[derive(Debug, Clone)]
pub enum ShardWork {
    /// One Fig. 10 arm: live-cwnd CDF under `c_max` (None = control).
    CwndDistribution {
        /// The `c_max` clamp, or `None` for the no-Riptide control.
        c_max: Option<u32>,
    },
    /// Fig. 11: probe-only vs busy-PoP live-cwnd profiles.
    TrafficProfile,
    /// One arm of the §IV-B2 probe experiment for a subset of senders.
    ProbeArm {
        /// Riptide configuration, or `None` for the control arm.
        riptide: Option<RiptideConfig>,
        /// TCP-stack deviations (ablations).
        tweaks: StackTweaks,
        /// Sender sites probing in this shard.
        senders: Vec<usize>,
    },
    /// Cold-start convergence: the learned-state trajectory sampled
    /// every `step`.
    Convergence {
        /// Sampling step.
        step: SimDuration,
    },
    /// One arm of the chaos experiment: the probe setup under a uniform
    /// fault rate ([`FaultPlan::uniform`]), for a subset of senders.
    ///
    /// [`FaultPlan::uniform`]: riptide_simnet::fault::FaultPlan::uniform
    ChaosArm {
        /// Riptide configuration, or `None` for the control arm.
        riptide: Option<RiptideConfig>,
        /// Per-opportunity fault rate (0 disables the fault layer).
        fault_rate: f64,
        /// Sender sites probing in this shard.
        senders: Vec<usize>,
    },
    /// One arm of the guardrail experiment: the probe setup under
    /// route churn and targeted loss ([`FaultPlan::guardrail`]), with
    /// periodic reconciler audits and a closing audit after the last
    /// churn instant.
    ///
    /// [`FaultPlan::guardrail`]: riptide_simnet::fault::FaultPlan::guardrail
    GuardrailArm {
        /// Riptide configuration, or `None` for the control arm.
        riptide: Option<RiptideConfig>,
        /// Per-opportunity fault rate (0 disables the fault layer).
        fault_rate: f64,
        /// Sender sites probing in this shard.
        senders: Vec<usize>,
    },
    /// One arm of the scenario matrix: the probe setup with one
    /// [`ScenarioSpec`]'s topology, workload, AQM and CC overlaid (see
    /// [`scenario_sim_config`]).
    ScenarioArm {
        /// Riptide configuration, or `None` for the control arm.
        riptide: Option<RiptideConfig>,
        /// The scenario this arm runs under (boxed: a spec is ~10× the
        /// next-largest work payload, and the enum is stored per shard).
        spec: Box<ScenarioSpec>,
        /// Sender sites probing in this shard.
        senders: Vec<usize>,
    },
    /// One arm of the cold-start experiment: the probe setup under
    /// machine-crash faults with ramp tracking on, and the arm's
    /// durability mode (see
    /// [`coldstart_sim_config`]).
    ColdstartArm {
        /// Riptide configuration, or `None` for the control arm.
        riptide: Option<RiptideConfig>,
        /// Per-opportunity crash rate (0 disables the fault layer).
        crash_rate: f64,
        /// Which durability layers the arm enables.
        mode: ColdstartMode,
        /// Sender sites probing in this shard.
        senders: Vec<usize>,
    },
}

/// One schedulable unit of a [`RunPlan`].
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Coordinates within the plan.
    pub id: ShardId,
    /// Human-readable label (arm name, sender site…).
    pub label: String,
    /// The derived per-shard seed (also baked into `scale.seed`).
    pub seed: u64,
    /// The scale this shard simulates at, with `seed` already set to
    /// the shard's derived stream seed.
    pub scale: ExperimentScale,
    /// The simulation to run.
    pub work: ShardWork,
    /// Whether the shard's deployment attaches the telemetry bundle
    /// (see [`RunPlan::with_telemetry`]). Off by default so digests of
    /// existing plans are unchanged.
    pub telemetry: bool,
}

/// An enumerated, ready-to-execute experiment.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Plan name, echoed in the manifest.
    pub name: String,
    /// The user-facing seed all shard streams fork from.
    pub master_seed: u64,
    /// Shards in deterministic enumeration order; results merge in
    /// this order regardless of completion order.
    pub shards: Vec<ShardSpec>,
}

/// One point of a convergence trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Simulated seconds since cold start.
    pub at_secs: u64,
    /// Mean learned initial window across live routes.
    pub mean_window: f64,
    /// Destinations covered by learned routes.
    pub destinations: usize,
    /// Cumulative route updates issued by all agents.
    pub route_updates: u64,
}

/// The measurement a shard produced.
#[derive(Debug, Clone)]
pub enum ShardData {
    /// Live-cwnd CDF (Fig. 10 arms).
    Cwnd(Cdf),
    /// Fig. 11 site profiles.
    Profile {
        /// Live-cwnd CDF at the probe-only PoP.
        probe_only: Cdf,
        /// Live-cwnd CDF at the busy PoP.
        busy: Cdf,
    },
    /// After-warmup probe outcomes (Figs. 12–16, ablations).
    Probes(Vec<ProbeOutcome>),
    /// Cold-start trajectory.
    Convergence(Vec<ConvergencePoint>),
    /// After-warmup probe outcomes plus chaos counters (Fig. 14 under
    /// injected faults).
    Chaos {
        /// After-warmup probe outcomes.
        probes: Vec<ProbeOutcome>,
        /// Fault and resilience counters for the shard.
        report: ChaosReport,
    },
    /// After-warmup probe outcomes plus chaos counters for a guardrail
    /// arm (its own variant so chaos-sweep digests stay stable).
    Guardrail {
        /// After-warmup probe outcomes.
        probes: Vec<ProbeOutcome>,
        /// Fault, guard and reconciler counters for the shard.
        report: ChaosReport,
    },
    /// After-warmup probe outcomes plus cold-start ramp counters (its
    /// own variant so chaos- and guardrail-sweep digests stay stable).
    Coldstart {
        /// After-warmup probe outcomes.
        probes: Vec<ProbeOutcome>,
        /// Restart, restore, gossip and ramp counters for the shard.
        report: ColdstartReport,
    },
}

/// Execution counters for one shard. `wall_millis` is the only
/// non-deterministic field and is excluded from [`RunReport::digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Wall-clock milliseconds the shard took.
    pub wall_millis: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Segments retransmitted on the wire.
    pub retransmits: u64,
    /// Transfers completed.
    pub transfers: u64,
}

/// One executed shard.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Coordinates within the plan.
    pub id: ShardId,
    /// Label copied from the spec.
    pub label: String,
    /// The derived seed the shard ran with.
    pub seed: u64,
    /// Execution counters.
    pub stats: ShardStats,
    /// The measurement.
    pub data: ShardData,
    /// Deployment-wide metrics snapshot — empty unless the plan ran
    /// [`RunPlan::with_telemetry`].
    pub metrics: MetricsSnapshot,
    /// FNV-1a of the `{:?}` rendering of `data`, precomputed on the
    /// worker (into its reusable scratch buffer) so [`RunReport::digest`]
    /// hashes in parallel instead of re-rendering every shard serially.
    pub data_fnv: u64,
    /// FNV-1a of the Prometheus exposition of `metrics`, or 0 when the
    /// snapshot is empty (telemetry off).
    pub metrics_fnv: u64,
}

/// The merged outcome of running a [`RunPlan`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Plan name.
    pub plan_name: String,
    /// The plan's master seed.
    pub master_seed: u64,
    /// Worker threads the run used.
    pub threads: usize,
    /// Shard results in plan order (not completion order).
    pub shards: Vec<ShardResult>,
}

/// Worker-pool size: `RIPTIDE_THREADS` when set to a positive integer,
/// else [`std::thread::available_parallelism`], else 1.
pub fn default_threads() -> usize {
    threads_from(std::env::var("RIPTIDE_THREADS").ok().as_deref())
}

/// [`default_threads`] with the environment value injected (testable).
pub fn threads_from(env_value: Option<&str>) -> usize {
    env_value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

impl RunPlan {
    fn shard(scale: &ExperimentScale, id: ShardId, label: String, work: ShardWork) -> ShardSpec {
        let seed = stream_seed(scale.seed, id.pairing_key());
        let mut shard_scale = scale.clone();
        shard_scale.seed = seed;
        ShardSpec {
            id,
            label,
            seed,
            scale: shard_scale,
            work,
            telemetry: false,
        }
    }

    /// Enables the telemetry bundle on every shard: each deployment
    /// records metrics and decisions, and [`ShardResult::metrics`]
    /// carries a per-shard snapshot merged by
    /// [`RunReport::merged_metrics`]. Digests gain one `metrics=` token
    /// per shard but are otherwise unchanged, and stay thread-count
    /// invariant because snapshots merge in plan order.
    #[must_use]
    pub fn with_telemetry(mut self) -> RunPlan {
        for shard in &mut self.shards {
            shard.telemetry = true;
        }
        self
    }

    /// Fig. 10: one shard per (`c_max` arm × replicate).
    pub fn cwnd_sweep(scale: &ExperimentScale, arms: &[Option<u32>], replicates: u32) -> RunPlan {
        assert!(replicates >= 1, "need at least one replicate");
        let mut shards = Vec::new();
        for (s, &c_max) in arms.iter().enumerate() {
            let arm = match c_max {
                None => "control".to_string(),
                Some(m) => format!("cmax{m}"),
            };
            for r in 0..replicates {
                let id = ShardId {
                    scenario: s as u32,
                    unit: 0,
                    replicate: r,
                };
                shards.push(Self::shard(
                    scale,
                    id,
                    arm.clone(),
                    ShardWork::CwndDistribution { c_max },
                ));
            }
        }
        RunPlan {
            name: "cwnd-sweep".into(),
            master_seed: scale.seed,
            shards,
        }
    }

    /// Figs. 12–16: control (scenario 0) vs Riptide (scenario 1), one
    /// shard per (arm × sender PoP × replicate).
    pub fn probe_comparison(scale: &ExperimentScale, replicates: u32) -> RunPlan {
        let variants = vec![
            ProbeVariant {
                name: "control".into(),
                riptide: None,
                tweaks: StackTweaks::default(),
            },
            ProbeVariant {
                name: "riptide".into(),
                riptide: Some(RiptideConfig::deployment()),
                tweaks: StackTweaks::default(),
            },
        ];
        let mut plan = Self::probe_variants(scale, variants, replicates);
        plan.name = "probe-comparison".into();
        plan
    }

    /// Policy-ablation arena: one arm per registered learning policy
    /// (see [`riptide::policy::registered_policies`]) plus a control
    /// arm, each seed-paired across (sender PoP × replicate) exactly
    /// like [`RunPlan::probe_comparison`]. The default-EWMA arm keeps
    /// the `"riptide"` label so its shard labels — and therefore its
    /// digest lines — are byte-identical to `probe_comparison`'s
    /// treatment arm.
    pub fn policy_ablation(scale: &ExperimentScale, replicates: u32) -> RunPlan {
        let mut variants = vec![ProbeVariant {
            name: "control".into(),
            riptide: None,
            tweaks: StackTweaks::default(),
        }];
        for (name, policy) in registered_policies() {
            let arm_name = if name == "ewma" { "riptide" } else { name };
            variants.push(ProbeVariant {
                name: arm_name.into(),
                riptide: Some(
                    RiptideConfig::builder()
                        .policy(policy)
                        .build()
                        .expect("registered policies produce valid configs"),
                ),
                tweaks: StackTweaks::default(),
            });
        }
        let mut plan = Self::probe_variants(scale, variants, replicates);
        plan.name = "policy-ablation".into();
        plan
    }

    /// Ablations: one shard per (variant × sender PoP × replicate),
    /// seed-paired across variants.
    pub fn probe_variants(
        scale: &ExperimentScale,
        variants: Vec<ProbeVariant>,
        replicates: u32,
    ) -> RunPlan {
        assert!(replicates >= 1, "need at least one replicate");
        assert!(!variants.is_empty(), "need at least one variant");
        let senders = probe_sender_sites(scale);
        let mut shards = Vec::new();
        for (s, variant) in variants.iter().enumerate() {
            for (u, &sender) in senders.iter().enumerate() {
                for r in 0..replicates {
                    let id = ShardId {
                        scenario: s as u32,
                        unit: u as u32,
                        replicate: r,
                    };
                    shards.push(Self::shard(
                        scale,
                        id,
                        format!("{}:site{}", variant.name, sender),
                        ShardWork::ProbeArm {
                            riptide: variant.riptide.clone(),
                            tweaks: variant.tweaks,
                            senders: vec![sender],
                        },
                    ));
                }
            }
        }
        RunPlan {
            name: "probe-variants".into(),
            master_seed: scale.seed,
            shards,
        }
    }

    /// Fig. 11: a single shard profiling probe-only vs busy PoPs.
    pub fn traffic_profile(scale: &ExperimentScale) -> RunPlan {
        let id = ShardId {
            scenario: 0,
            unit: 0,
            replicate: 0,
        };
        RunPlan {
            name: "traffic-profile".into(),
            master_seed: scale.seed,
            shards: vec![Self::shard(
                scale,
                id,
                "profile".into(),
                ShardWork::TrafficProfile,
            )],
        }
    }

    /// The scenario matrix: every [`scenario_catalog`] cell crossed
    /// with a control arm plus one arm per registered learning policy
    /// (the default-EWMA arm keeps the `"riptide"` label, as in
    /// [`RunPlan::policy_ablation`]), one shard per (scenario × arm ×
    /// sender PoP × replicate). Scenario indices are
    /// `arms_per_scenario() * cell + arm`, cells in catalog order, arms
    /// control-first. Arms are seed-paired per (unit, replicate) like
    /// every other plan — and since the pairing key also excludes the
    /// *matrix cell*, all cells of one (unit, replicate) share a seed,
    /// so ranking differences between cells are regime effects, not
    /// draw effects.
    pub fn scenario_matrix(scale: &ExperimentScale, replicates: u32) -> RunPlan {
        assert!(replicates >= 1, "need at least one replicate");
        let senders = probe_sender_sites(scale);
        let arms = Self::scenario_arms();
        let mut shards = Vec::new();
        for (c, spec) in scenario_catalog(scale).into_iter().enumerate() {
            for (arm_idx, (arm, riptide)) in arms.iter().enumerate() {
                for (u, &sender) in senders.iter().enumerate() {
                    for r in 0..replicates {
                        let id = ShardId {
                            scenario: (arms.len() * c + arm_idx) as u32,
                            unit: u as u32,
                            replicate: r,
                        };
                        shards.push(Self::shard(
                            scale,
                            id,
                            format!("{}/{arm}:site{sender}", spec.name),
                            ShardWork::ScenarioArm {
                                riptide: riptide.clone(),
                                spec: Box::new(spec.clone()),
                                senders: vec![sender],
                            },
                        ));
                    }
                }
            }
        }
        RunPlan {
            name: "scenario-matrix".into(),
            master_seed: scale.seed,
            shards,
        }
    }

    /// The policy arms of [`RunPlan::scenario_matrix`], control first —
    /// the same lineup as [`RunPlan::policy_ablation`].
    pub fn scenario_arms() -> Vec<(String, Option<RiptideConfig>)> {
        let mut arms: Vec<(String, Option<RiptideConfig>)> = vec![("control".into(), None)];
        for (name, policy) in registered_policies() {
            let arm_name = if name == "ewma" { "riptide" } else { name };
            arms.push((
                arm_name.into(),
                Some(
                    RiptideConfig::builder()
                        .policy(policy)
                        .build()
                        .expect("registered policies produce valid configs"),
                ),
            ));
        }
        arms
    }

    /// Arms per scenario-matrix cell: control plus every registered
    /// policy. Scenario index arithmetic in bench consumers uses this.
    pub fn arms_per_scenario() -> usize {
        1 + registered_policies().len()
    }

    /// The chaos sweep: control (scenario `2i`) vs Riptide (scenario
    /// `2i + 1`) for each fault rate `i`, one shard per (arm × sender
    /// PoP × replicate). Arms are seed-paired per (unit, replicate)
    /// exactly like [`RunPlan::probe_comparison`], so a zero rate
    /// reproduces that plan's merged probes bit for bit.
    pub fn chaos_sweep(scale: &ExperimentScale, rates: &[f64], replicates: u32) -> RunPlan {
        assert!(replicates >= 1, "need at least one replicate");
        assert!(!rates.is_empty(), "need at least one fault rate");
        let senders = probe_sender_sites(scale);
        let mut shards = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            for (arm_idx, arm) in ["control", "riptide"].iter().enumerate() {
                let riptide = (arm_idx == 1).then(RiptideConfig::deployment);
                for (u, &sender) in senders.iter().enumerate() {
                    for r in 0..replicates {
                        let id = ShardId {
                            scenario: (2 * i + arm_idx) as u32,
                            unit: u as u32,
                            replicate: r,
                        };
                        shards.push(Self::shard(
                            scale,
                            id,
                            format!("{arm}@{rate}:site{sender}"),
                            ShardWork::ChaosArm {
                                riptide: riptide.clone(),
                                fault_rate: rate,
                                senders: vec![sender],
                            },
                        ));
                    }
                }
            }
        }
        RunPlan {
            name: "chaos-sweep".into(),
            master_seed: scale.seed,
            shards,
        }
    }

    /// The guardrail sweep: kernel-default control (scenario `3i`),
    /// unguarded Riptide (scenario `3i + 1`) and guarded Riptide
    /// (scenario `3i + 2`) for each fault rate `i`, one shard per
    /// (arm × sender PoP × replicate). Arms are seed-paired per
    /// (unit, replicate) exactly like [`RunPlan::probe_comparison`], so
    /// a zero rate reproduces that plan's merged probes bit for bit in
    /// the control and unguarded arms.
    pub fn guardrail_sweep(scale: &ExperimentScale, rates: &[f64], replicates: u32) -> RunPlan {
        assert!(replicates >= 1, "need at least one replicate");
        assert!(!rates.is_empty(), "need at least one fault rate");
        let senders = probe_sender_sites(scale);
        let mut shards = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            let arms = [
                ("control", None),
                ("riptide", Some(RiptideConfig::deployment())),
                ("guarded", Some(guarded_riptide_config())),
            ];
            for (arm_idx, (arm, riptide)) in arms.into_iter().enumerate() {
                for (u, &sender) in senders.iter().enumerate() {
                    for r in 0..replicates {
                        let id = ShardId {
                            scenario: (3 * i + arm_idx) as u32,
                            unit: u as u32,
                            replicate: r,
                        };
                        shards.push(Self::shard(
                            scale,
                            id,
                            format!("{arm}@{rate}:site{sender}"),
                            ShardWork::GuardrailArm {
                                riptide: riptide.clone(),
                                fault_rate: rate,
                                senders: vec![sender],
                            },
                        ));
                    }
                }
            }
        }
        RunPlan {
            name: "guardrail-sweep".into(),
            master_seed: scale.seed,
            shards,
        }
    }

    /// The cold-start sweep: persistence off (scenario `3i`), snapshot
    /// only (scenario `3i + 1`) and snapshot+gossip (scenario `3i + 2`)
    /// for each crash rate `i`, one shard per (arm × sender PoP ×
    /// replicate), every arm running the deployment Riptide config.
    /// Arms are seed-paired per (unit, replicate) exactly like
    /// [`RunPlan::probe_comparison`], so all three modes see the *same*
    /// crash schedule and their ramp times are directly comparable.
    pub fn coldstart_sweep(scale: &ExperimentScale, rates: &[f64], replicates: u32) -> RunPlan {
        assert!(replicates >= 1, "need at least one replicate");
        assert!(!rates.is_empty(), "need at least one crash rate");
        let senders = probe_sender_sites(scale);
        let modes = [
            ColdstartMode::Cold,
            ColdstartMode::Snapshot,
            ColdstartMode::SnapshotGossip,
        ];
        let mut shards = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            for (arm_idx, mode) in modes.into_iter().enumerate() {
                for (u, &sender) in senders.iter().enumerate() {
                    for r in 0..replicates {
                        let id = ShardId {
                            scenario: (3 * i + arm_idx) as u32,
                            unit: u as u32,
                            replicate: r,
                        };
                        shards.push(Self::shard(
                            scale,
                            id,
                            format!("{}@{rate}:site{sender}", mode.label()),
                            ShardWork::ColdstartArm {
                                riptide: Some(RiptideConfig::deployment()),
                                crash_rate: rate,
                                mode,
                                senders: vec![sender],
                            },
                        ));
                    }
                }
            }
        }
        RunPlan {
            name: "coldstart-sweep".into(),
            master_seed: scale.seed,
            shards,
        }
    }

    /// Cold-start convergence: a single shard sampling every `step`.
    pub fn convergence(scale: &ExperimentScale, step: SimDuration) -> RunPlan {
        let id = ShardId {
            scenario: 0,
            unit: 0,
            replicate: 0,
        };
        RunPlan {
            name: "convergence".into(),
            master_seed: scale.seed,
            shards: vec![Self::shard(
                scale,
                id,
                "convergence".into(),
                ShardWork::Convergence { step },
            )],
        }
    }

    /// Executes with [`default_threads`] workers.
    pub fn run(&self) -> RunReport {
        self.run_with_threads(default_threads())
    }

    /// Executes on exactly `threads` workers (clamped to the shard
    /// count). The report is identical for every `threads >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or a worker thread panics.
    pub fn run_with_threads(&self, threads: usize) -> RunReport {
        self.run_with_steal_seed(threads, 0)
    }

    /// [`RunPlan::run_with_threads`] with the steal-victim scan seeded
    /// explicitly. Different seeds change *which worker* executes a
    /// stolen shard — never the shard's result or the merged report,
    /// which `tests/scheduler.rs` property-tests across adversarial
    /// seeds.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or a worker thread panics.
    pub fn run_with_steal_seed(&self, threads: usize, steal_seed: u64) -> RunReport {
        assert!(threads >= 1, "need at least one worker");
        let workers = threads.min(self.shards.len()).max(1);
        let costs: Vec<u64> = self.shards.iter().map(estimated_events).collect();
        let pool = StealPool::new(&costs, workers);
        let slots: Vec<Mutex<Option<ShardResult>>> =
            self.shards.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let pool = &pool;
                let slots = &slots;
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::default();
                    let mut steal_rng = DetRng::for_stream(steal_seed, w as u64);
                    while let Some(i) = pool.next(w, &mut steal_rng) {
                        let result = run_shard(&self.shards[i], &mut scratch);
                        *slots[i].lock().expect("result slot") = Some(result);
                    }
                });
            }
        });
        let shards = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every shard executed")
            })
            .collect();
        RunReport {
            plan_name: self.name.clone(),
            master_seed: self.master_seed,
            threads: workers,
            shards,
        }
    }
}

/// One ablation arm for [`RunPlan::probe_variants`].
#[derive(Debug, Clone)]
pub struct ProbeVariant {
    /// Arm name used in shard labels.
    pub name: String,
    /// Riptide configuration (`None` = control).
    pub riptide: Option<RiptideConfig>,
    /// TCP-stack deviations.
    pub tweaks: StackTweaks,
}

/// Per-worker reusable state: buffers allocated once per worker and
/// recycled across every shard it executes (owned or stolen), so the
/// hot loop does not hit the global allocator once per shard from
/// every thread at once.
#[derive(Default)]
struct WorkerScratch {
    /// Digest accumulator: the `{:?}` rendering of a shard's data (and
    /// its metrics exposition) is formatted into this buffer and
    /// hashed, then the buffer is cleared for the next shard.
    fmt_buf: String,
}

impl WorkerScratch {
    /// FNV-1a of `value`'s `Debug` rendering, via the reusable buffer.
    fn fnv_of_debug(&mut self, value: &impl std::fmt::Debug) -> u64 {
        self.fmt_buf.clear();
        write!(self.fmt_buf, "{value:?}").expect("writing to a String cannot fail");
        fnv1a(self.fmt_buf.as_bytes())
    }

    /// FNV-1a of the metrics exposition, or 0 for an empty snapshot.
    fn fnv_of_metrics(&mut self, metrics: &MetricsSnapshot) -> u64 {
        if metrics.is_empty() {
            return 0;
        }
        self.fmt_buf.clear();
        self.fmt_buf.push_str(&metrics.render_prometheus());
        fnv1a(self.fmt_buf.as_bytes())
    }
}

fn run_shard(spec: &ShardSpec, scratch: &mut WorkerScratch) -> ShardResult {
    let started = Instant::now();
    let scale = &spec.scale;
    let cutoff = SimTime::ZERO + scale.warmup;
    let build = |mut cfg: CdnSimConfig| {
        cfg.telemetry = spec.telemetry;
        CdnSim::new(cfg)
    };
    let (data, world, metrics) = match &spec.work {
        ShardWork::CwndDistribution { c_max } => {
            let mut sim = build(cwnd_sim_config(scale, *c_max));
            sim.run_for(scale.total());
            let cdf = Cdf::new(
                sim.cwnd_samples()
                    .iter()
                    .filter(|s| s.at >= cutoff)
                    .map(|s| s.cwnd as f64),
            );
            (
                ShardData::Cwnd(cdf),
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
        ShardWork::TrafficProfile => {
            let (probe_only_site, busy_site) = traffic_profile_sites(scale);
            let mut sim = build(traffic_sim_config(scale));
            sim.run_for(scale.total());
            let at_site = |site: usize| {
                Cdf::new(
                    sim.cwnd_samples()
                        .iter()
                        .filter(|s| s.at >= cutoff && s.site == site)
                        .map(|s| s.cwnd as f64),
                )
            };
            (
                ShardData::Profile {
                    probe_only: at_site(probe_only_site),
                    busy: at_site(busy_site),
                },
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
        ShardWork::ProbeArm {
            riptide,
            tweaks,
            senders,
        } => {
            let cfg = probe_sim_config(scale, riptide.clone(), *tweaks, senders.clone());
            let mut sim = build(cfg);
            sim.run_for(scale.total());
            let probes = sim
                .probe_outcomes()
                .iter()
                .filter(|p| p.requested_at >= cutoff)
                .copied()
                .collect();
            (
                ShardData::Probes(probes),
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
        ShardWork::Convergence { step } => {
            let mut sim = build(cwnd_sim_config(scale, Some(100)));
            let steps = (scale.total().as_secs_f64() / step.as_secs_f64()).ceil() as u64;
            let mut points = Vec::with_capacity(steps as usize);
            for i in 1..=steps {
                sim.run_for(*step);
                let (mean_window, destinations) = sim.mean_learned_window().unwrap_or((0.0, 0));
                points.push(ConvergencePoint {
                    at_secs: (step.as_secs_f64() * i as f64).round() as u64,
                    mean_window,
                    destinations,
                    route_updates: sim.agent_stats_total().route_updates,
                });
            }
            (
                ShardData::Convergence(points),
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
        ShardWork::ChaosArm {
            riptide,
            fault_rate,
            senders,
        } => {
            let cfg = chaos_sim_config(scale, riptide.clone(), senders.clone(), *fault_rate);
            let mut sim = build(cfg);
            sim.run_for(scale.total());
            let probes = sim
                .probe_outcomes()
                .iter()
                .filter(|p| p.requested_at >= cutoff)
                .copied()
                .collect();
            let report = sim.chaos_report();
            (
                ShardData::Chaos { probes, report },
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
        ShardWork::GuardrailArm {
            riptide,
            fault_rate,
            senders,
        } => {
            let cfg = guardrail_sim_config(scale, riptide.clone(), senders.clone(), *fault_rate);
            let mut sim = build(cfg);
            sim.run_for(scale.total());
            // Closing audit: the last churn instant may postdate the last
            // scheduled audit, and the repair claim is about convergence.
            if *fault_rate > 0.0 {
                sim.reconcile_now();
            }
            let probes = sim
                .probe_outcomes()
                .iter()
                .filter(|p| p.requested_at >= cutoff)
                .copied()
                .collect();
            let report = sim.chaos_report();
            (
                ShardData::Guardrail { probes, report },
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
        ShardWork::ScenarioArm {
            riptide,
            spec: scenario,
            senders,
        } => {
            let cfg = scenario_sim_config(scale, riptide.clone(), senders.clone(), scenario);
            let mut sim = build(cfg);
            sim.run_for(scale.total());
            let probes = sim
                .probe_outcomes()
                .iter()
                .filter(|p| p.requested_at >= cutoff)
                .copied()
                .collect();
            (
                ShardData::Probes(probes),
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
        ShardWork::ColdstartArm {
            riptide,
            crash_rate,
            mode,
            senders,
        } => {
            let cfg =
                coldstart_sim_config(scale, riptide.clone(), senders.clone(), *crash_rate, *mode);
            let mut sim = build(cfg);
            sim.run_for(scale.total());
            let probes = sim
                .probe_outcomes()
                .iter()
                .filter(|p| p.requested_at >= cutoff)
                .copied()
                .collect();
            let report = sim.coldstart_report();
            (
                ShardData::Coldstart { probes, report },
                sim.testbed().world.stats(),
                sim.metrics_snapshot(),
            )
        }
    };
    let data_fnv = scratch.fnv_of_debug(&data);
    let metrics_fnv = scratch.fnv_of_metrics(&metrics);
    ShardResult {
        id: spec.id,
        label: spec.label.clone(),
        seed: spec.seed,
        stats: ShardStats {
            wall_millis: started.elapsed().as_millis() as u64,
            events: world.events_processed,
            retransmits: world.retransmits,
            transfers: world.transfers_completed,
        },
        data,
        metrics,
        data_fnv,
        metrics_fnv,
    }
}

impl RunReport {
    /// Shards of one scenario, in plan order.
    fn scenario_shards(&self, scenario: u32) -> impl Iterator<Item = &ShardResult> {
        self.shards
            .iter()
            .filter(move |s| s.id.scenario == scenario)
    }

    /// The merged live-cwnd CDF of one scenario (Fig. 10 arm),
    /// reduced in plan order.
    pub fn merged_cwnd(&self, scenario: u32) -> Cdf {
        Cdf::merge_all(
            self.scenario_shards(scenario)
                .filter_map(|s| match &s.data {
                    ShardData::Cwnd(cdf) => Some(cdf.clone()),
                    _ => None,
                }),
        )
    }

    /// All probe outcomes of one scenario, concatenated in plan order.
    pub fn merged_probes(&self, scenario: u32) -> Vec<ProbeOutcome> {
        self.scenario_shards(scenario)
            .filter_map(|s| match &s.data {
                ShardData::Probes(p) => Some(p.as_slice()),
                _ => None,
            })
            .flatten()
            .copied()
            .collect()
    }

    /// The paired control (scenario 0) vs Riptide (scenario 1)
    /// comparison of a [`RunPlan::probe_comparison`] run.
    pub fn comparison(&self) -> ProbeComparison {
        ProbeComparison {
            control: self.merged_probes(0),
            riptide: self.merged_probes(1),
        }
    }

    /// All chaos-arm probe outcomes of one scenario, concatenated in
    /// plan order.
    pub fn merged_chaos_probes(&self, scenario: u32) -> Vec<ProbeOutcome> {
        self.scenario_shards(scenario)
            .filter_map(|s| match &s.data {
                ShardData::Chaos { probes, .. } => Some(probes.as_slice()),
                _ => None,
            })
            .flatten()
            .copied()
            .collect()
    }

    /// The merged chaos counters of one scenario, reduced in plan order.
    pub fn merged_chaos_report(&self, scenario: u32) -> ChaosReport {
        let mut merged = ChaosReport::default();
        for s in self.scenario_shards(scenario) {
            if let ShardData::Chaos { report, .. } = &s.data {
                merged.merge(report);
            }
        }
        merged
    }

    /// All guardrail-arm probe outcomes of one scenario, concatenated
    /// in plan order.
    pub fn merged_guardrail_probes(&self, scenario: u32) -> Vec<ProbeOutcome> {
        self.scenario_shards(scenario)
            .filter_map(|s| match &s.data {
                ShardData::Guardrail { probes, .. } => Some(probes.as_slice()),
                _ => None,
            })
            .flatten()
            .copied()
            .collect()
    }

    /// The merged guardrail counters of one scenario, reduced in plan
    /// order.
    pub fn merged_guardrail_report(&self, scenario: u32) -> ChaosReport {
        let mut merged = ChaosReport::default();
        for s in self.scenario_shards(scenario) {
            if let ShardData::Guardrail { report, .. } = &s.data {
                merged.merge(report);
            }
        }
        merged
    }

    /// All cold-start-arm probe outcomes of one scenario, concatenated
    /// in plan order.
    pub fn merged_coldstart_probes(&self, scenario: u32) -> Vec<ProbeOutcome> {
        self.scenario_shards(scenario)
            .filter_map(|s| match &s.data {
                ShardData::Coldstart { probes, .. } => Some(probes.as_slice()),
                _ => None,
            })
            .flatten()
            .copied()
            .collect()
    }

    /// The merged cold-start counters of one scenario, reduced in plan
    /// order.
    pub fn merged_coldstart_report(&self, scenario: u32) -> ColdstartReport {
        let mut merged = ColdstartReport::default();
        for s in self.scenario_shards(scenario) {
            if let ShardData::Coldstart { report, .. } = &s.data {
                merged.merge(report);
            }
        }
        merged
    }

    /// The Fig. 11 `(probe_only, busy)` profiles, if the plan ran one.
    pub fn profile(&self) -> Option<(Cdf, Cdf)> {
        self.shards.iter().find_map(|s| match &s.data {
            ShardData::Profile { probe_only, busy } => Some((probe_only.clone(), busy.clone())),
            _ => None,
        })
    }

    /// The convergence trajectory, if the plan ran one.
    pub fn convergence_points(&self) -> Vec<ConvergencePoint> {
        self.shards
            .iter()
            .find_map(|s| match &s.data {
                ShardData::Convergence(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Probe completion times of one scenario as a fixed-width
    /// histogram (milliseconds), built per shard and merged in plan
    /// order — bucket addition commutes, so the result is independent
    /// of shard completion order.
    pub fn completion_histogram(&self, scenario: u32, width_ms: u64) -> Histogram {
        let mut merged = Histogram::new(width_ms);
        for shard in self.scenario_shards(scenario) {
            if let ShardData::Probes(probes) = &shard.data {
                let mut h = Histogram::new(width_ms);
                for p in probes {
                    h.record(p.completion.as_millis_f64());
                }
                merged.merge(&h);
            }
        }
        merged
    }

    /// Total simulator events across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.events).sum()
    }

    /// Total wall-clock milliseconds summed across shards (CPU cost;
    /// wall time of the run is lower with more workers).
    pub fn total_shard_millis(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.wall_millis).sum()
    }

    /// The JSON-lines run manifest: one header object, then one object
    /// per shard with its ID, label, seed, wall time and counters.
    pub fn manifest_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"plan\":{},\"master_seed\":{},\"threads\":{},\"shards\":{}}}\n",
            json_string(&self.plan_name),
            self.master_seed,
            self.threads,
            self.shards.len()
        ));
        for s in &self.shards {
            out.push_str(&format!(
                "{{\"shard\":\"{}\",\"label\":{},\"seed\":{},\"wall_ms\":{},\
                 \"events\":{},\"retransmits\":{},\"transfers\":{}}}\n",
                s.id,
                json_string(&s.label),
                s.seed,
                s.stats.wall_millis,
                s.stats.events,
                s.stats.retransmits,
                s.stats.transfers
            ));
        }
        out
    }

    /// A deterministic fingerprint of the run: every shard's identity,
    /// counters and a hash of its full measurement data — everything
    /// except wall-clock times. Two runs of the same plan produce the
    /// same digest regardless of worker count.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan={} master_seed={} shards={}\n",
            self.plan_name,
            self.master_seed,
            self.shards.len()
        ));
        for s in &self.shards {
            out.push_str(&format!(
                "{} label={} seed={} events={} retransmits={} transfers={} data={:016x}",
                s.id,
                s.label,
                s.seed,
                s.stats.events,
                s.stats.retransmits,
                s.stats.transfers,
                s.data_fnv
            ));
            // Telemetry-off shards carry an empty snapshot and emit no
            // token, keeping historical digests byte-identical.
            if !s.metrics.is_empty() {
                out.push_str(&format!(" metrics={:016x}", s.metrics_fnv));
            }
            out.push('\n');
        }
        out
    }

    /// The FNV-1a 64-bit hash of [`RunReport::digest`] — a compact
    /// fingerprint for bench baselines and smoke checks.
    pub fn digest_fnv64(&self) -> u64 {
        fnv1a(self.digest().as_bytes())
    }

    /// The union of every shard's metrics snapshot, merged in plan
    /// order. Counters sum, gauges sum, histogram buckets add
    /// element-wise — all commutative, so the result is invariant to
    /// worker count and completion order. Empty unless the plan ran
    /// [`RunPlan::with_telemetry`].
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for s in &self.shards {
            merged.merge(&s.metrics);
        }
        merged
    }
}

/// Minimal JSON string quoting for manifest labels.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_key_ignores_scenario() {
        let a = ShardId {
            scenario: 0,
            unit: 3,
            replicate: 2,
        };
        let b = ShardId {
            scenario: 7,
            unit: 3,
            replicate: 2,
        };
        assert_eq!(a.pairing_key(), b.pairing_key());
        let c = ShardId {
            scenario: 0,
            unit: 4,
            replicate: 2,
        };
        assert_ne!(a.pairing_key(), c.pairing_key());
    }

    #[test]
    fn probe_comparison_plan_is_seed_paired() {
        let plan = RunPlan::probe_comparison(&ExperimentScale::test(), 2);
        // 2 scenarios x 2 senders x 2 replicates.
        assert_eq!(plan.shards.len(), 8);
        for shard in &plan.shards {
            let twin = plan
                .shards
                .iter()
                .find(|s| {
                    s.id.scenario != shard.id.scenario
                        && s.id.unit == shard.id.unit
                        && s.id.replicate == shard.id.replicate
                })
                .expect("paired arm exists");
            assert_eq!(twin.seed, shard.seed, "arms of one cell share a seed");
        }
        // Distinct cells draw distinct streams.
        let mut seeds: Vec<u64> = plan
            .shards
            .iter()
            .filter(|s| s.id.scenario == 0)
            .map(|s| s.seed)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "one stream per (unit, replicate) cell");
    }

    #[test]
    fn scenario_matrix_is_seed_paired_across_cells_and_arms() {
        let scale = ExperimentScale::test();
        let plan = RunPlan::scenario_matrix(&scale, 2);
        let arms = RunPlan::arms_per_scenario();
        let cells = crate::scenario::scenario_catalog(&scale).len();
        // cells x arms x 2 senders x 2 replicates.
        assert_eq!(plan.shards.len(), cells * arms * 2 * 2);
        for shard in &plan.shards {
            let twin = plan
                .shards
                .iter()
                .find(|s| {
                    s.id.scenario != shard.id.scenario
                        && s.id.unit == shard.id.unit
                        && s.id.replicate == shard.id.replicate
                })
                .expect("paired arm exists");
            assert_eq!(
                twin.seed, shard.seed,
                "every cell and arm of one (unit, replicate) shares a seed"
            );
        }
        // Labels carry both the scenario and the arm name, and the
        // EWMA arm keeps the probe-comparison "riptide" label.
        assert!(plan
            .shards
            .iter()
            .any(|s| s.label.starts_with("baseline/riptide:")));
        assert!(plan
            .shards
            .iter()
            .any(|s| s.label.starts_with("red-ecn/loss-utility:")));
    }

    #[test]
    fn coldstart_sweep_is_seed_paired_and_reports_merge() {
        let scale = ExperimentScale::test();
        let plan = RunPlan::coldstart_sweep(&scale, &[0.05], 1);
        // 3 modes x 2 senders x 1 replicate.
        assert_eq!(plan.shards.len(), 6);
        for shard in &plan.shards {
            let twin = plan
                .shards
                .iter()
                .find(|s| {
                    s.id.scenario != shard.id.scenario
                        && s.id.unit == shard.id.unit
                        && s.id.replicate == shard.id.replicate
                })
                .expect("paired arm exists");
            assert_eq!(
                twin.seed, shard.seed,
                "modes of one cell share a seed, so crash schedules pair up"
            );
        }
        let report = plan.run_with_threads(2);
        let cold = report.merged_coldstart_report(0);
        let snap = report.merged_coldstart_report(1);
        let gossip = report.merged_coldstart_report(2);
        // Persistence off: nothing written, nothing restored.
        assert_eq!(cold.snapshots_written, 0);
        assert_eq!(cold.restored_routes, 0);
        // Snapshot arms journal, snapshot and restore.
        assert!(snap.snapshots_written > 0, "snapshot arm never snapshotted");
        assert!(snap.restored_routes > 0, "snapshot arm restored nothing");
        assert!(snap.restarts_tracked > 0, "no restart was ramp-tracked");
        // The gossip arm additionally runs anti-entropy rounds.
        assert!(gossip.gossip_rounds > 0, "gossip arm never gossiped");
        assert!(
            !report.merged_coldstart_probes(0).is_empty(),
            "cold arm produced no probe outcomes"
        );
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 2 ")), 2);
        let fallback = threads_from(None);
        assert!(fallback >= 1);
        assert_eq!(threads_from(Some("0")), fallback, "zero is ignored");
        assert_eq!(threads_from(Some("nope")), fallback, "garbage is ignored");
    }

    #[test]
    fn manifest_has_header_and_one_line_per_shard() {
        let mut scale = ExperimentScale::test();
        scale.duration = SimDuration::from_secs(120);
        let plan = RunPlan::cwnd_sweep(&scale, &[None, Some(50)], 1);
        let report = plan.run_with_threads(2);
        let manifest = report.manifest_jsonl();
        let lines: Vec<&str> = manifest.lines().collect();
        assert_eq!(lines.len(), 1 + plan.shards.len());
        assert!(lines[0].contains("\"plan\":\"cwnd-sweep\""));
        for (line, spec) in lines[1..].iter().zip(&plan.shards) {
            assert!(line.contains(&format!("\"shard\":\"{}\"", spec.id)));
            assert!(line.contains("\"wall_ms\":"));
            assert!(line.contains("\"events\":"));
            assert!(line.contains("\"retransmits\":"));
        }
        assert!(report.total_events() > 0, "simulations actually ran");
    }

    #[test]
    fn merged_cwnd_covers_all_replicates() {
        let mut scale = ExperimentScale::test();
        scale.duration = SimDuration::from_secs(180);
        let plan = RunPlan::cwnd_sweep(&scale, &[None], 2);
        let report = plan.run_with_threads(2);
        let merged = report.merged_cwnd(0);
        let per_shard: usize = report
            .shards
            .iter()
            .map(|s| match &s.data {
                ShardData::Cwnd(c) => c.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(merged.len(), per_shard);
        assert!(!merged.is_empty());
    }
}
