//! Mega-CDN topology/workload generator: a synthetic back-office fleet
//! large enough to exercise the destination table at a **million-plus
//! learned prefixes** — far past the paper's 34-PoP testbed, at the
//! scale §III-B's "destinations as routes" discussion worries about.
//!
//! The generator is purely deterministic (seeded [`DetRng`] streams, no
//! wall clock) and deliberately simple in structure:
//!
//! * every PoP owns one `/20` carved out of `10.0.0.0/8`, hosts
//!   numbered consecutively from the PoP base;
//! * each PoP has a **base window** drawn once from `[24, 100]` — paths
//!   into one PoP share fate, so its hosts' learned windows cluster;
//! * within a PoP, each `/24` slab is independently marked *divergent*
//!   with probability [`MegaCdnConfig::divergent_fraction`]. A
//!   convergent slab jitters its hosts by at most 2 segments (inside
//!   the default aggregation band, so the slab coalesces to one `/24`
//!   route); a divergent slab splits its hosts across two windows a
//!   half-base apart (outside any sane band, so it never merges);
//! * destination *popularity* for lookup workloads is Zipf-ranked
//!   ([`Zipf`]), the classic CDN fit: a handful of origins draw most of
//!   the traffic while a million-entry tail is touched rarely.
//!
//! # Examples
//!
//! ```
//! use riptide_cdn::megacdn::MegaCdnConfig;
//!
//! let cfg = MegaCdnConfig::test();
//! assert_eq!(cfg.total_destinations(), 48 * 256);
//! // Hosts of PoP 1 live in its own /20.
//! assert_eq!(cfg.host_addr(1, 0).to_string(), "10.0.16.0");
//! // Windows are deterministic in (seed, pop, host).
//! assert_eq!(cfg.window_for(3, 17, false), cfg.window_for(3, 17, false));
//! ```

use std::net::Ipv4Addr;

use riptide::prelude::CwndObservation;
use riptide_simnet::rng::{stream_seed, DetRng};

use crate::workload::Zipf;

/// Hosts per `/24` slab.
const SLAB: usize = 256;

/// RNG stream tags, so the per-PoP and per-slab streams never collide.
const STREAM_BASE_WINDOW: u64 = 0x5741_4c4c; // "WALL"
const STREAM_DIVERGENCE: u64 = 0x4449_5647; // "DIVG"

/// Shape of the synthetic mega-CDN.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaCdnConfig {
    /// Number of PoPs; each owns one `/20` (up to 4096 hosts).
    pub pops: usize,
    /// Hosts per PoP, consecutive from the PoP base address.
    pub hosts_per_pop: usize,
    /// Zipf exponent for destination popularity (≈ 1 for CDNs).
    pub zipf_exponent: f64,
    /// Fraction of `/24` slabs whose hosts *disagree* about the window
    /// (they never aggregate; everything else coalesces per slab).
    pub divergent_fraction: f64,
    /// Master seed for every derived stream.
    pub seed: u64,
}

impl Default for MegaCdnConfig {
    fn default() -> Self {
        MegaCdnConfig::quick()
    }
}

impl MegaCdnConfig {
    /// Smoke-test shape: 48 PoPs × 256 hosts = 12,288 destinations.
    pub fn test() -> Self {
        MegaCdnConfig {
            pops: 48,
            hosts_per_pop: 256,
            zipf_exponent: 1.07,
            divergent_fraction: 0.04,
            seed: 11,
        }
    }

    /// CI shape: 512 PoPs × 2048 hosts = 1,048,576 destinations — the
    /// million-prefix point the destination table is sized for.
    pub fn quick() -> Self {
        MegaCdnConfig {
            pops: 512,
            hosts_per_pop: 2048,
            ..MegaCdnConfig::test()
        }
    }

    /// Full-scale shape: 1024 PoPs × 4096 hosts = 4,194,304 destinations.
    pub fn paper() -> Self {
        MegaCdnConfig {
            pops: 1024,
            hosts_per_pop: 4096,
            ..MegaCdnConfig::test()
        }
    }

    /// Checks the shape.
    ///
    /// # Errors
    ///
    /// Returns a description if a dimension is zero, a PoP would
    /// overflow its `/20`, the fleet would leave `10.0.0.0/8`, or the
    /// divergent fraction is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.pops == 0 || self.hosts_per_pop == 0 {
            return Err("pops and hosts_per_pop must be non-zero".into());
        }
        if self.hosts_per_pop > 4096 {
            return Err(format!(
                "hosts_per_pop {} overflows the /20 a PoP owns (max 4096)",
                self.hosts_per_pop
            ));
        }
        if self.pops > 4096 {
            return Err(format!(
                "pops {} would leave 10.0.0.0/8 (max 4096 /20s)",
                self.pops
            ));
        }
        if !(0.0..=1.0).contains(&self.divergent_fraction) {
            return Err(format!(
                "divergent_fraction must be in [0,1], got {}",
                self.divergent_fraction
            ));
        }
        if !(self.zipf_exponent >= 0.0 && self.zipf_exponent.is_finite()) {
            return Err(format!(
                "zipf_exponent must be finite and non-negative, got {}",
                self.zipf_exponent
            ));
        }
        Ok(())
    }

    /// Total destinations across the fleet.
    pub fn total_destinations(&self) -> usize {
        self.pops * self.hosts_per_pop
    }

    /// The `/20` base address of PoP `pop`.
    pub fn pop_base(&self, pop: usize) -> Ipv4Addr {
        debug_assert!(pop < self.pops);
        let base = u32::from(Ipv4Addr::new(10, 0, 0, 0)) + (pop as u32) * 4096;
        Ipv4Addr::from(base)
    }

    /// The address of host `host` inside PoP `pop`.
    pub fn host_addr(&self, pop: usize, host: usize) -> Ipv4Addr {
        debug_assert!(host < self.hosts_per_pop);
        let base = u32::from(self.pop_base(pop));
        Ipv4Addr::from(base + host as u32)
    }

    /// The flat destination index of `(pop, host)`, and back: index
    /// `i` is host `i % hosts_per_pop` of PoP `i / hosts_per_pop`.
    pub fn addr_of_index(&self, index: usize) -> Ipv4Addr {
        self.host_addr(index / self.hosts_per_pop, index % self.hosts_per_pop)
    }

    /// The PoP's base congestion window, uniform in `[24, 100]`.
    pub fn base_window(&self, pop: usize) -> u32 {
        let mut rng = DetRng::for_stream(stream_seed(self.seed, STREAM_BASE_WINDOW), pop as u64);
        24 + rng.below(77) as u32
    }

    /// Whether the given `/24` slab of a PoP diverges (its hosts never
    /// agree on a window).
    pub fn slab_diverges(&self, pop: usize, slab: usize) -> bool {
        let mut rng = DetRng::for_stream(
            stream_seed(self.seed, STREAM_DIVERGENCE),
            (pop as u64) << 16 | slab as u64,
        );
        rng.chance(self.divergent_fraction)
    }

    /// The learned-window ground truth for one host.
    ///
    /// With `diverge` false every slab is convergent (hosts within two
    /// segments of the PoP base); with `diverge` true the slabs marked
    /// by [`MegaCdnConfig::slab_diverges`] split their hosts across two
    /// windows half a base apart — far outside any aggregation band.
    pub fn window_for(&self, pop: usize, host: usize, diverge: bool) -> u32 {
        let base = self.base_window(pop);
        if diverge && self.slab_diverges(pop, host / SLAB) && host % 2 == 1 {
            return (base / 2).max(10);
        }
        base + (host % 3) as u32
    }

    /// One full-fleet observation sweep, in destination order: every
    /// host reports its ground-truth window (see
    /// [`MegaCdnConfig::window_for`]) with clean loss counters.
    pub fn observations(&self, diverge: bool) -> Vec<CwndObservation> {
        let mut out = Vec::with_capacity(self.total_destinations());
        for pop in 0..self.pops {
            for host in 0..self.hosts_per_pop {
                out.push(CwndObservation {
                    dst: self.host_addr(pop, host),
                    cwnd: self.window_for(pop, host, diverge),
                    bytes_acked: 1_000_000,
                    retrans: 0,
                    ecn_marks: 0,
                });
            }
        }
        out
    }

    /// The Zipf popularity ranking over all destinations, for lookup
    /// workloads. Rank is mapped to a destination by a fixed stride
    /// walk so popular destinations spread across PoPs instead of
    /// clustering in PoP 0.
    pub fn popularity(&self) -> Zipf {
        Zipf::new(self.total_destinations(), self.zipf_exponent)
    }

    /// Maps a popularity rank to a destination index: a coprime stride
    /// walk over the index space, so the hot head of the Zipf is spread
    /// across PoPs rather than packed into PoP 0.
    pub fn rank_to_index(&self, rank: usize) -> usize {
        // 0x9E37_79B1 is odd (coprime with any power of two) and close
        // to 2^32/φ, the classic multiplicative-hash constant.
        let n = self.total_destinations();
        (rank.wrapping_mul(0x9E37_79B1)) % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn shapes_validate() {
        for cfg in [
            MegaCdnConfig::test(),
            MegaCdnConfig::quick(),
            MegaCdnConfig::paper(),
        ] {
            cfg.validate().unwrap();
        }
        assert_eq!(MegaCdnConfig::quick().total_destinations(), 1_048_576);
        assert!(MegaCdnConfig {
            hosts_per_pop: 5000,
            ..MegaCdnConfig::test()
        }
        .validate()
        .is_err());
        assert!(MegaCdnConfig {
            pops: 5000,
            ..MegaCdnConfig::test()
        }
        .validate()
        .is_err());
        assert!(MegaCdnConfig {
            divergent_fraction: 1.5,
            ..MegaCdnConfig::test()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn pops_own_disjoint_slash_20s() {
        let cfg = MegaCdnConfig::test();
        let mut seen = BTreeSet::new();
        for pop in 0..cfg.pops {
            let base = u32::from(cfg.pop_base(pop));
            assert_eq!(base % 4096, 0, "PoP base is /20-aligned");
            assert!(seen.insert(base), "PoP bases are distinct");
            let last = u32::from(cfg.host_addr(pop, cfg.hosts_per_pop - 1));
            assert!(last < base + 4096, "hosts stay inside the PoP's /20");
        }
    }

    #[test]
    fn windows_are_deterministic_and_clustered() {
        let cfg = MegaCdnConfig::test();
        let other = MegaCdnConfig::test();
        for pop in [0, 7, 47] {
            let base = cfg.base_window(pop);
            assert!((24..=100).contains(&base));
            assert_eq!(base, other.base_window(pop), "seeded, not time-varying");
            for host in 0..cfg.hosts_per_pop {
                let w = cfg.window_for(pop, host, false);
                assert!(w >= base && w - base <= 2, "convergent jitter stays tight");
            }
        }
    }

    #[test]
    fn divergent_slabs_split_past_any_band() {
        let cfg = MegaCdnConfig {
            divergent_fraction: 1.0,
            ..MegaCdnConfig::test()
        };
        let base = cfg.base_window(0);
        let lo = cfg.window_for(0, 1, true);
        let hi = cfg.window_for(0, 0, true);
        assert_eq!(lo, (base / 2).max(10));
        assert!(hi - lo >= 12, "spread {} never fits a sane band", hi - lo);
        // The same host converges when divergence is off.
        assert_eq!(cfg.window_for(0, 1, false), base + 1);
    }

    #[test]
    fn divergence_marks_about_the_configured_fraction() {
        let cfg = MegaCdnConfig::quick();
        let slabs_per_pop = cfg.hosts_per_pop / SLAB;
        let total = cfg.pops * slabs_per_pop;
        let divergent = (0..cfg.pops)
            .flat_map(|p| (0..slabs_per_pop).map(move |s| (p, s)))
            .filter(|&(p, s)| cfg.slab_diverges(p, s))
            .count();
        let frac = divergent as f64 / total as f64;
        assert!(
            (frac - cfg.divergent_fraction).abs() < 0.02,
            "divergent fraction {frac} vs configured {}",
            cfg.divergent_fraction
        );
    }

    #[test]
    fn observation_sweep_covers_every_destination_once() {
        let cfg = MegaCdnConfig::test();
        let obs = cfg.observations(false);
        assert_eq!(obs.len(), cfg.total_destinations());
        let distinct: BTreeSet<_> = obs.iter().map(|o| o.dst).collect();
        assert_eq!(distinct.len(), obs.len(), "no duplicate destinations");
    }

    #[test]
    fn rank_walk_is_a_permutation_over_a_power_of_two_fleet() {
        let cfg = MegaCdnConfig::test(); // 12,288 = 3 · 2^12 — not a power
        let n = cfg.total_destinations();
        let distinct: BTreeSet<_> = (0..n).map(|r| cfg.rank_to_index(r)).collect();
        // The stride is odd; over non-power-of-two n it can collide, but
        // coverage must stay near-total so the hot set isn't degenerate.
        assert!(
            distinct.len() > n / 2,
            "{} of {n} indices hit",
            distinct.len()
        );
        let quick = MegaCdnConfig::quick(); // 2^20: odd stride ⇒ bijection
        let m = 100_000;
        let hit: BTreeSet<_> = (0..m).map(|r| quick.rank_to_index(r)).collect();
        assert_eq!(hit.len(), m, "odd stride is a bijection mod 2^20");
    }
}
