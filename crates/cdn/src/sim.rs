//! The deployment harness: a simulated CDN with (optionally) a Riptide
//! agent on every machine, the paper's probe infrastructure, and organic
//! back-office traffic.
//!
//! This is the simulated equivalent of §IV-A: every machine probes every
//! other PoP with 10/50/100 KB objects on a fixed interval, reusing idle
//! connections when available; Riptide agents poll `ss` every `i_u`
//! seconds and steer per-destination routes; and an observer samples live
//! congestion windows once a minute, considering only connections opened
//! after the agent started — exactly the paper's measurement filter.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::rc::Rc;

use riptide::prelude::*;
use riptide::sync::{delta_for, digest_of, SyncEntry};
use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_linuxnet::route::{RouteAttrs, RouteProto, RouteTable};
use riptide_simnet::prelude::*;

use crate::gossip::{GossipConfig, GossipFabric};
use crate::topology::{RttBucket, Testbed, TestbedConfig};
use crate::workload::{OrganicConfig, ProbeConfig};

/// An [`InitcwndPolicy`] that reads a host's (shared) routing table — the
/// kernel's route lookup at connect time.
#[derive(Debug)]
struct TablePolicy {
    table: Rc<RefCell<RouteTable>>,
}

impl InitcwndPolicy for TablePolicy {
    fn initial_cwnd(&self, _src: HostId, dst_addr: Ipv4Addr) -> Option<u32> {
        self.table.borrow().initcwnd_for(dst_addr)
    }
}

/// Full configuration of one deployment run.
#[derive(Debug, Clone)]
pub struct CdnSimConfig {
    /// The substrate.
    pub testbed: TestbedConfig,
    /// Riptide configuration, or `None` for a control run.
    pub riptide: Option<RiptideConfig>,
    /// Probe harness parameters.
    pub probes: ProbeConfig,
    /// Organic traffic parameters.
    pub organic: OrganicConfig,
    /// How often live congestion windows are sampled (the paper samples
    /// "each minute using the ss tool").
    pub cwnd_sample_interval: SimDuration,
    /// Site indices that send probes (`None` = every site). The paper's
    /// transfer-time analysis uses two sender PoPs.
    pub probe_senders: Option<Vec<usize>>,
    /// Fault-injection plan ([`FaultPlan::none`] disables the chaos layer
    /// entirely, leaving the run bit-identical to one without it).
    pub faults: FaultPlan,
    /// How often each agent runs a reconciler audit against a fresh
    /// kernel route dump (`None` disables auditing — the paper's
    /// open-loop deployment).
    pub reconcile_every: Option<SimDuration>,
    /// Attach a shared telemetry bundle (metrics registry + decision
    /// journal) to every agent. Off by default: a disabled registry does
    /// no telemetry work and leaves run digests bit-identical.
    pub telemetry: bool,
    /// Warm-restart persistence: each host keeps a simulated on-disk
    /// state file (snapshot + journal) that survives crash faults, and
    /// a restarted daemon reloads it instead of starting empty. `None`
    /// (the default) leaves runs bit-identical to builds without the
    /// feature.
    pub persistence: Option<PersistenceConfig>,
    /// Anti-entropy gossip between the fleet's agents. `None` (the
    /// default) is digest-neutral: the fabric's RNG is forked purely,
    /// so no other draw sequence moves.
    pub gossip: Option<GossipConfig>,
    /// Track per-host ramp-up after crash restarts: the time for a
    /// restarted host's installed-window sum to climb back to 90% of
    /// its pre-crash level (reported via [`CdnSim::coldstart_report`]).
    /// Off by default; tracking draws no randomness either way.
    pub track_ramp: bool,
}

impl Default for CdnSimConfig {
    fn default() -> Self {
        CdnSimConfig {
            testbed: TestbedConfig::default(),
            riptide: Some(RiptideConfig::deployment()),
            probes: ProbeConfig::default(),
            organic: OrganicConfig::none(),
            cwnd_sample_interval: SimDuration::from_secs(60),
            probe_senders: None,
            faults: FaultPlan::none(),
            reconcile_every: None,
            telemetry: false,
            persistence: None,
            gossip: None,
            track_ramp: false,
        }
    }
}

/// Warm-restart persistence parameters for simulated hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistenceConfig {
    /// How often each live host rewrites its snapshot (the journal is
    /// truncated into it).
    pub snapshot_every: SimDuration,
    /// Append a journal record for every install/withdraw delta between
    /// snapshots, so a crash loses at most one agent tick of learning
    /// instead of up to `snapshot_every`.
    pub journal: bool,
}

impl Default for PersistenceConfig {
    fn default() -> Self {
        PersistenceConfig {
            snapshot_every: SimDuration::from_secs(60),
            journal: true,
        }
    }
}

impl PersistenceConfig {
    /// Checks the parameters are usable.
    pub fn validate(&self) -> Result<(), String> {
        if self.snapshot_every == SimDuration::ZERO {
            return Err("snapshot interval must be positive".into());
        }
        Ok(())
    }
}

/// Cold-start counters for one run: how fast restarted hosts climbed
/// back to steady state, and what the durability/sync layers did to get
/// them there. All-zero when crashes, persistence and gossip are off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColdstartReport {
    /// Restarts whose ramp-up was tracked (the host had installed
    /// windows to lose when it crashed).
    pub restarts_tracked: u64,
    /// Tracked restarts that reached 90% of their pre-crash installed
    /// window sum before the run ended.
    pub recoveries: u64,
    /// Summed restart→90% ramp time across recoveries, nanoseconds.
    pub ramp_nanos_total: u64,
    /// Worst single ramp time, nanoseconds.
    pub ramp_nanos_max: u64,
    /// Tracked restarts still below 90% at report time.
    pub unrecovered: u64,
    /// Routes reinstalled from persisted state at warm restarts.
    pub restored_routes: u64,
    /// Snapshots written by live hosts.
    pub snapshots_written: u64,
    /// Journal records appended between snapshots.
    pub journal_records: u64,
    /// Gossip rounds the fabric scheduled.
    pub gossip_rounds: u64,
    /// Gossip exchanges between two live hosts.
    pub gossip_pairs: u64,
    /// Exchanges settled by matching digests (no delta shipped).
    pub digests_matched: u64,
    /// Delta entries shipped across all exchanges.
    pub entries_shipped: u64,
    /// Delta entries accepted under the newest-wins clamp-merge rule.
    pub entries_accepted: u64,
    /// Peer draws skipped because the peer was inside its backoff.
    pub gossip_backoff_skips: u64,
    /// Draws that found the peer down and started a backoff.
    pub gossip_peers_marked_down: u64,
}

impl ColdstartReport {
    /// Mean restart→90% ramp time in seconds, `None` before any
    /// tracked restart recovered.
    pub fn mean_ramp_secs(&self) -> Option<f64> {
        (self.recoveries > 0).then(|| self.ramp_nanos_total as f64 / self.recoveries as f64 / 1e9)
    }

    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &ColdstartReport) {
        self.restarts_tracked += other.restarts_tracked;
        self.recoveries += other.recoveries;
        self.ramp_nanos_total += other.ramp_nanos_total;
        self.ramp_nanos_max = self.ramp_nanos_max.max(other.ramp_nanos_max);
        self.unrecovered += other.unrecovered;
        self.restored_routes += other.restored_routes;
        self.snapshots_written += other.snapshots_written;
        self.journal_records += other.journal_records;
        self.gossip_rounds += other.gossip_rounds;
        self.gossip_pairs += other.gossip_pairs;
        self.digests_matched += other.digests_matched;
        self.entries_shipped += other.entries_shipped;
        self.entries_accepted += other.entries_accepted;
        self.gossip_backoff_skips += other.gossip_backoff_skips;
        self.gossip_peers_marked_down += other.gossip_peers_marked_down;
    }
}

/// One host's simulated on-disk state file: the encoded snapshot plus
/// journal tail, and the installed view it last described (so agent
/// ticks journal only the deltas).
#[derive(Debug, Clone, Default)]
struct HostStore {
    /// Encoded `persist::StateFile` bytes — what a real daemon would
    /// have on disk. Survives crash faults (the disk does not die with
    /// the process).
    bytes: Vec<u8>,
    /// The installed view as of the last snapshot or journal append.
    last_installed: BTreeMap<Ipv4Prefix, u32>,
}

/// Persistence-layer state; present only when configured.
#[derive(Debug)]
struct PersistLayer {
    cfg: PersistenceConfig,
    next_snapshot: SimTime,
    stores: Vec<HostStore>,
}

/// Aggregated chaos and resilience counters for one run.
///
/// All-zero (with an empty installed range) when the fault layer is
/// disabled and no routes were installed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosReport {
    /// Faults the injector fired, by category.
    pub faults: FaultStats,
    /// Agent cycles run in degraded mode (observation failed even after
    /// retries: learning frozen, only TTL expiry ran).
    pub degraded_ticks: u64,
    /// Extra observation attempts beyond each cycle's first.
    pub observe_retries: u64,
    /// Extra route-install attempts beyond each call's first.
    pub install_retries: u64,
    /// Route installs that failed even after retrying.
    pub install_gave_up: u64,
    /// Delayed installs that eventually landed.
    pub delayed_applied: u64,
    /// Stale routes wiped by restarted agents on recovery.
    pub routes_recovered: u64,
    /// Window installs accepted by the bounds gate.
    pub installs: u64,
    /// Installs rejected by the bounds gate for leaving `[c_min, c_max]`
    /// — always 0 unless the no-harm invariant is broken.
    pub invariant_breaches: u64,
    /// Smallest window ever installed (`u32::MAX` when none).
    pub installed_min: u32,
    /// Largest window ever installed (0 when none).
    pub installed_max: u32,
    /// Agent-installed routes deleted behind the agent's back by churn.
    pub drift_deleted: u64,
    /// Orphan riptide-signature routes injected by churn.
    pub drift_orphaned: u64,
    /// Foreign (non-signature) routes injected by churn.
    pub foreign_injected: u64,
    /// Drift repairs performed by reconciler audits (across all hosts,
    /// including incarnations since crashed).
    pub reconcile_repairs: u64,
    /// Foreign routes observed (and left alone) by reconciler audits.
    pub reconcile_foreign_seen: u64,
    /// Loss-guard breaker trips (across all hosts, including incarnations
    /// since crashed).
    pub guard_trips: u64,
    /// Riptide-signature routes still disagreeing with some agent's
    /// installed view at report time — 0 once audits have converged.
    pub drift_unrepaired: u64,
    /// Injected foreign routes missing or modified at report time —
    /// always 0 unless the reconciler touched state it must not.
    pub foreign_missing: u64,
}

impl Default for ChaosReport {
    fn default() -> Self {
        ChaosReport {
            faults: FaultStats::default(),
            degraded_ticks: 0,
            observe_retries: 0,
            install_retries: 0,
            install_gave_up: 0,
            delayed_applied: 0,
            routes_recovered: 0,
            installs: 0,
            invariant_breaches: 0,
            installed_min: u32::MAX,
            installed_max: 0,
            drift_deleted: 0,
            drift_orphaned: 0,
            foreign_injected: 0,
            reconcile_repairs: 0,
            reconcile_foreign_seen: 0,
            guard_trips: 0,
            drift_unrepaired: 0,
            foreign_missing: 0,
        }
    }
}

impl ChaosReport {
    /// `(min, max)` of every installed window, or `None` if nothing was
    /// ever installed.
    pub fn installed_range(&self) -> Option<(u32, u32)> {
        (self.installs > 0).then_some((self.installed_min, self.installed_max))
    }

    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &ChaosReport) {
        self.faults.observe_timeouts += other.faults.observe_timeouts;
        self.faults.observe_partials += other.faults.observe_partials;
        self.faults.install_errors += other.faults.install_errors;
        self.faults.install_delays += other.faults.install_delays;
        self.faults.crashes += other.faults.crashes;
        self.faults.bursts += other.faults.bursts;
        self.faults.route_churns += other.faults.route_churns;
        self.faults.targeted_bursts += other.faults.targeted_bursts;
        self.degraded_ticks += other.degraded_ticks;
        self.observe_retries += other.observe_retries;
        self.install_retries += other.install_retries;
        self.install_gave_up += other.install_gave_up;
        self.delayed_applied += other.delayed_applied;
        self.routes_recovered += other.routes_recovered;
        self.installs += other.installs;
        self.invariant_breaches += other.invariant_breaches;
        self.installed_min = self.installed_min.min(other.installed_min);
        self.installed_max = self.installed_max.max(other.installed_max);
        self.drift_deleted += other.drift_deleted;
        self.drift_orphaned += other.drift_orphaned;
        self.foreign_injected += other.foreign_injected;
        self.reconcile_repairs += other.reconcile_repairs;
        self.reconcile_foreign_seen += other.reconcile_foreign_seen;
        self.guard_trips += other.guard_trips;
        self.drift_unrepaired += other.drift_unrepaired;
        self.foreign_missing += other.foreign_missing;
    }
}

/// A route write accepted while faulted as "delayed", waiting to land.
#[derive(Debug, Clone, Copy)]
struct PendingInstall {
    due: SimTime,
    host: usize,
    key: Ipv4Prefix,
    /// `Some(window)` for a delayed install, `None` for a delayed clear.
    window: Option<u32>,
}

/// One link loss burst in progress, with the configs to restore.
#[derive(Debug, Clone)]
struct ActiveBurst {
    until: SimTime,
    a: PopId,
    b: PopId,
    saved_ab: PathConfig,
    saved_ba: PathConfig,
}

/// Mutable chaos-layer state; present only when the plan is enabled.
#[derive(Debug)]
struct ChaosState {
    injector: FaultInjector,
    policy: BackoffPolicy,
    /// Per host: when a crashed agent's replacement may start ticking.
    down_until: Vec<Option<SimTime>>,
    pending: Vec<PendingInstall>,
    bursts: Vec<ActiveBurst>,
    next_burst_check: SimTime,
    /// Per host: foreign routes churn injected, by key — the reconciler
    /// must leave every one of these byte-identical.
    foreign: Vec<BTreeMap<Ipv4Prefix, RouteAttrs>>,
    /// Loss episodes in progress on paths targeted at jump-started
    /// destinations, with the configs to restore.
    loss_episodes: Vec<ActiveBurst>,
    report: ChaosReport,
}

/// Injects install faults between the retry layer above and the bounds
/// gate below: `ExecError` surfaces as a failed `ip route` invocation
/// (which the retry layer may re-attempt, drawing a fresh fault),
/// `Delayed` queues the write to land `install_delay_for` later.
#[derive(Debug)]
struct ChaosController<'a> {
    inner: &'a mut CheckedController<SharedRouteController>,
    injector: &'a mut FaultInjector,
    pending: &'a mut Vec<PendingInstall>,
    now: SimTime,
    delay_for: SimDuration,
    host: usize,
}

impl ChaosController<'_> {
    fn faulted(
        &mut self,
        key: Ipv4Prefix,
        window: Option<u32>,
        apply: impl FnOnce(&mut CheckedController<SharedRouteController>) -> Result<(), ControlError>,
    ) -> Result<(), ControlError> {
        match self.injector.install_fault() {
            InstallFault::ExecError => {
                Err(ControlError::new("injected: ip route invocation failed"))
            }
            InstallFault::Delayed => {
                self.pending.push(PendingInstall {
                    due: self.now + self.delay_for,
                    host: self.host,
                    key,
                    window,
                });
                Ok(())
            }
            InstallFault::None => apply(self.inner),
        }
    }
}

impl RouteController for ChaosController<'_> {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        self.faulted(key, Some(window), |c| c.set_initcwnd(key, window))
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        self.faulted(key, None, |c| c.clear_initcwnd(key))
    }
}

/// One completed probe, annotated with the experiment dimensions the
/// paper's figures group on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// Sending site index.
    pub src_site: usize,
    /// Destination site index.
    pub dst_site: usize,
    /// Probe payload, bytes.
    pub size: u64,
    /// Distance group of the destination relative to the sender.
    pub bucket: RttBucket,
    /// End-to-end completion time.
    pub completion: SimDuration,
    /// Whether a fresh connection (with handshake) carried it.
    pub fresh_connection: bool,
    /// When the probe was requested.
    pub requested_at: SimTime,
    /// Initial congestion window of the carrying connection.
    pub initial_cwnd: u32,
}

/// One live-window sample (a row of the paper's per-minute `ss` sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CwndSample {
    /// Site owning the observed connection.
    pub site: usize,
    /// Destination site of the connection.
    pub dst_site: usize,
    /// The congestion window, in segments.
    pub cwnd: u32,
    /// Sample instant.
    pub at: SimTime,
}

/// A running deployment.
#[derive(Debug)]
pub struct CdnSim {
    tb: Testbed,
    cfg: CdnSimConfig,
    agents: Vec<Option<RiptideAgent>>,
    controllers: Vec<Option<CheckedController<SharedRouteController>>>,
    chaos: Option<ChaosState>,
    rng: DetRng,
    next_agent_tick: SimTime,
    next_cwnd_sample: SimTime,
    /// Next reconciler audit instant (`None` when auditing is off).
    next_reconcile: Option<SimTime>,
    /// Host address → host, for mapping learned route keys back to the
    /// destination machine they steer.
    addr_to_host: HashMap<Ipv4Addr, HostId>,
    /// Per probing machine: (next fire time, host, site index).
    probe_schedule: Vec<(SimTime, HostId, usize)>,
    /// Per ordered busy pair: (next arrival, src site, dst site).
    organic_schedule: Vec<(SimTime, usize, usize)>,
    /// Min-heap of `(fire time, index into probe_schedule)`. Every entry
    /// is current (an index is rescheduled only when popped), and ties
    /// pop in index order — the same order the linear scan fired them,
    /// so RNG draw order is unchanged.
    probe_heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
    /// Min-heap of `(arrival time, index into organic_schedule)`.
    organic_heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
    /// Cached minimum of `probe_schedule` fire times (`SimTime::MAX` when
    /// empty), maintained by `fire_due_probes` so the event loop's outer
    /// step avoids rescanning the schedule.
    next_probe_due: SimTime,
    /// Cached minimum of `organic_schedule` arrival times (`SimTime::MAX`
    /// when empty).
    next_organic_due: SimTime,
    probe_tags: HashMap<TransferId, (usize, usize, u64)>,
    probe_outcomes: Vec<ProbeOutcome>,
    cwnd_samples: Vec<CwndSample>,
    organic_completed: u64,
    organic_started: u64,
    /// Shared telemetry bundle, when `cfg.telemetry` is on: every agent
    /// (including crash-restart incarnations) registers on one registry,
    /// so counters aggregate across the whole deployment.
    telemetry: Option<AgentTelemetry>,
    /// I/O counters on the same registry, mirrored out of the resilient
    /// wrappers the chaos path builds each tick.
    io_counters: Option<IoCounters>,
    /// Simulated on-disk state files, when persistence is configured.
    persist: Option<PersistLayer>,
    /// Gossip scheduler, when fleet sync is configured.
    gossip: Option<GossipFabric>,
    /// Cold-start counters (ramp tracking, persistence, gossip).
    coldstart: ColdstartReport,
    /// Per host: pre-crash installed-window sum awaiting the restart
    /// (set at the crash instant when `track_ramp` is on).
    ramp_pending: Vec<Option<u64>>,
    /// Per host: `(pre-crash sum, restart instant)` of a ramp-up in
    /// progress.
    ramp_active: Vec<Option<(u64, SimTime)>>,
}

/// Decision-journal depth for simulated deployments. Large enough to hold
/// the tail of a bench-scale run, small enough to bound memory.
const TELEMETRY_JOURNAL_CAPACITY: usize = 256;

impl CdnSim {
    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics on invalid probe or Riptide configuration.
    pub fn new(cfg: CdnSimConfig) -> Self {
        if let Err(e) = cfg.probes.validate() {
            panic!("invalid probe config: {e}");
        }
        if let Err(e) = cfg.faults.validate() {
            panic!("invalid fault plan: {e}");
        }
        for crowd in &cfg.organic.flash_crowds {
            if let Err(e) = crowd.validate() {
                panic!("invalid flash crowd: {e}");
            }
        }
        if let Some(g) = &cfg.gossip {
            if let Err(e) = g.validate() {
                panic!("invalid gossip config: {e}");
            }
        }
        if let Some(p) = &cfg.persistence {
            if let Err(e) = p.validate() {
                panic!("invalid persistence config: {e}");
            }
        }
        let mut tb = Testbed::build(&cfg.testbed);
        let mut rng = DetRng::from_seed(cfg.testbed.seed ^ 0x5EED_CD11);
        let host_count = tb.world.host_count();

        // Forking is pure, so attaching (or not attaching) the chaos
        // layer leaves `rng`'s own sequence untouched.
        let chaos = cfg.faults.is_enabled().then(|| ChaosState {
            injector: FaultInjector::new(cfg.faults.clone(), &rng),
            policy: BackoffPolicy::agent_default(),
            down_until: vec![None; host_count],
            pending: Vec::new(),
            bursts: Vec::new(),
            next_burst_check: SimTime::ZERO + cfg.faults.burst_check_every,
            foreign: vec![BTreeMap::new(); host_count],
            loss_episodes: Vec::new(),
            report: ChaosReport::default(),
        });

        // Forked purely, like the chaos injector: attaching (or not
        // attaching) the gossip fabric leaves `rng`'s own sequence —
        // and therefore every gossip-free draw — untouched.
        let gossip = cfg.gossip.map(|g| GossipFabric::new(g, &rng, host_count));
        let persist = cfg.persistence.map(|p| PersistLayer {
            next_snapshot: SimTime::ZERO + p.snapshot_every,
            stores: vec![HostStore::default(); host_count],
            cfg: p,
        });

        let addr_to_host: HashMap<Ipv4Addr, HostId> = (0..host_count)
            .map(|h| {
                let host = HostId::from_index(h as u32);
                (tb.world.host_addr(host), host)
            })
            .collect();

        let telemetry = (cfg.telemetry && cfg.riptide.is_some())
            .then(|| AgentTelemetry::standalone(TELEMETRY_JOURNAL_CAPACITY));
        let io_counters = telemetry.as_ref().map(|t| t.io_counters());

        let mut agents: Vec<Option<RiptideAgent>> = Vec::with_capacity(host_count);
        let mut controllers: Vec<Option<CheckedController<SharedRouteController>>> =
            Vec::with_capacity(host_count);
        for h in 0..host_count {
            match &cfg.riptide {
                Some(rc) => {
                    let table = Rc::new(RefCell::new(RouteTable::new()));
                    tb.world.set_host_policy(
                        HostId::from_index(h as u32),
                        Rc::new(TablePolicy {
                            table: Rc::clone(&table),
                        }),
                    );
                    controllers.push(Some(CheckedController::new(
                        SharedRouteController::new(table),
                        rc.cwnd_min,
                        rc.cwnd_max,
                    )));
                    let mut agent =
                        RiptideAgent::new(rc.clone()).expect("validated riptide config");
                    if let Some(t) = &telemetry {
                        agent.attach_telemetry(t.clone());
                    }
                    agents.push(Some(agent));
                }
                None => {
                    agents.push(None);
                    controllers.push(None);
                }
            }
        }

        // Stagger each machine's probe phase uniformly over one interval.
        let mut probe_schedule = Vec::new();
        let senders: Vec<usize> = cfg
            .probe_senders
            .clone()
            .unwrap_or_else(|| (0..tb.pop_count()).collect());
        for &site in &senders {
            for &host in tb.machines(site) {
                let phase = rng.jitter(cfg.probes.interval);
                probe_schedule.push((SimTime::ZERO + phase, host, site));
            }
        }

        // Organic arrivals per ordered busy pair.
        let mut organic_schedule = Vec::new();
        if cfg.organic.is_enabled() {
            for &i in &cfg.organic.busy_pops {
                for &j in &cfg.organic.busy_pops {
                    if i == j {
                        continue;
                    }
                    let gap = rng
                        .exp_duration(SimDuration::from_secs_f64(1.0 / cfg.organic.flows_per_sec));
                    organic_schedule.push((SimTime::ZERO + gap, i, j));
                }
            }
        }

        let agent_interval = cfg
            .riptide
            .as_ref()
            .map(|r| r.update_interval)
            .unwrap_or(SimDuration::from_secs(1));

        let probe_heap: std::collections::BinaryHeap<_> = probe_schedule
            .iter()
            .enumerate()
            .map(|(idx, e)| std::cmp::Reverse((e.0, idx)))
            .collect();
        let organic_heap: std::collections::BinaryHeap<_> = organic_schedule
            .iter()
            .enumerate()
            .map(|(idx, e)| std::cmp::Reverse((e.0, idx)))
            .collect();
        let next_probe_due = probe_heap.peek().map(|r| (r.0).0).unwrap_or(SimTime::MAX);
        let next_organic_due = organic_heap.peek().map(|r| (r.0).0).unwrap_or(SimTime::MAX);

        let ramp_pending = vec![None; host_count];
        let ramp_active = vec![None; host_count];
        CdnSim {
            tb,
            next_agent_tick: SimTime::ZERO + agent_interval,
            next_cwnd_sample: SimTime::ZERO + cfg.cwnd_sample_interval,
            next_reconcile: cfg.reconcile_every.map(|d| SimTime::ZERO + d),
            addr_to_host,
            cfg,
            agents,
            controllers,
            chaos,
            rng,
            probe_schedule,
            organic_schedule,
            probe_heap,
            organic_heap,
            next_probe_due,
            next_organic_due,
            probe_tags: HashMap::new(),
            probe_outcomes: Vec::new(),
            cwnd_samples: Vec::new(),
            organic_completed: 0,
            organic_started: 0,
            telemetry,
            io_counters,
            persist,
            gossip,
            coldstart: ColdstartReport::default(),
            ramp_pending,
            ramp_active,
        }
    }

    /// Point-in-time snapshot of the deployment-wide metrics registry.
    ///
    /// Empty (and therefore absent from run digests) unless
    /// [`CdnSimConfig::telemetry`] was set.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry
            .as_ref()
            .map(|t| t.registry().snapshot())
            .unwrap_or_default()
    }

    /// The shared decision journal, when telemetry is enabled.
    pub fn decision_journal(&self) -> Option<&DecisionJournal> {
        self.telemetry.as_ref().map(|t| t.journal())
    }

    /// Whether this run has Riptide agents.
    pub fn riptide_enabled(&self) -> bool {
        self.cfg.riptide.is_some()
    }

    /// The underlying testbed (read access for assertions).
    pub fn testbed(&self) -> &Testbed {
        &self.tb
    }

    /// Completed probes so far.
    pub fn probe_outcomes(&self) -> &[ProbeOutcome] {
        &self.probe_outcomes
    }

    /// Live-window samples so far.
    pub fn cwnd_samples(&self) -> &[CwndSample] {
        &self.cwnd_samples
    }

    /// Organic flows completed so far.
    pub fn organic_completed(&self) -> u64 {
        self.organic_completed
    }

    /// Organic flows started so far.
    pub fn organic_started(&self) -> u64 {
        self.organic_started
    }

    /// Mean learned (installed) window across every agent's live table,
    /// with the number of live destination entries — a convergence
    /// snapshot. `None` for control runs or before anything is learned.
    pub fn mean_learned_window(&self) -> Option<(f64, usize)> {
        let mut sum = 0u64;
        let mut n = 0usize;
        for agent in self.agents.iter().flatten() {
            for (_, entry) in agent.table().iter() {
                sum += entry.window as u64;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some((sum as f64 / n as f64, n))
        }
    }

    /// Aggregated agent counters (zeros for control runs).
    ///
    /// Under chaos, counters of crashed agent incarnations are gone with
    /// them; this sums the live incarnations only (crash losses are
    /// tracked in [`CdnSim::chaos_report`]).
    pub fn agent_stats_total(&self) -> AgentStats {
        let mut total = AgentStats::default();
        for a in self.agents.iter().flatten() {
            let s = a.stats();
            total.ticks += s.ticks;
            total.observations += s.observations;
            total.route_updates += s.route_updates;
            total.route_expirations += s.route_expirations;
            total.errors += s.errors;
            total.degraded_ticks += s.degraded_ticks;
            total.guard_trips += s.guard_trips;
            total.table_evictions += s.table_evictions;
            total.reconcile_repairs += s.reconcile_repairs;
        }
        total
    }

    /// Chaos and resilience counters for this run.
    ///
    /// Installs, breaches and the installed-window range come from the
    /// per-host bounds gates and are meaningful (and usually non-zero)
    /// even with the fault layer disabled; everything else is zero for a
    /// clean run.
    pub fn chaos_report(&self) -> ChaosReport {
        let mut r = self
            .chaos
            .as_ref()
            .map(|c| {
                let mut r = c.report;
                r.faults = c.injector.stats();
                r
            })
            .unwrap_or_default();
        let live = self.agent_stats_total();
        r.degraded_ticks += live.degraded_ticks;
        r.guard_trips += live.guard_trips;
        r.reconcile_repairs += live.reconcile_repairs;
        for ctl in self.controllers.iter().flatten() {
            r.installs += ctl.installs();
            r.invariant_breaches += ctl.breaches();
            if let Some((lo, hi)) = ctl.installed_range() {
                r.installed_min = r.installed_min.min(lo);
                r.installed_max = r.installed_max.max(hi);
            }
        }
        // Point-in-time drift audit: does every host's kernel table agree
        // with its agent's installed view, and is every injected foreign
        // route still exactly as injected?
        for h in 0..self.agents.len() {
            let (Some(agent), Some(ctl)) = (&self.agents[h], &self.controllers[h]) else {
                continue;
            };
            let table = ctl.inner().table();
            let kernel = table.borrow();
            for (&key, &want) in agent.installed_view() {
                match kernel.get(key) {
                    Some(route)
                        if is_riptide_route(&route.attrs) && route.attrs.initcwnd == Some(want) => {
                    }
                    _ => r.drift_unrepaired += 1,
                }
            }
            for route in kernel.iter() {
                if is_riptide_route(&route.attrs)
                    && !agent.installed_view().contains_key(&route.prefix)
                {
                    r.drift_unrepaired += 1;
                }
            }
            if let Some(chaos) = &self.chaos {
                for (&key, attrs) in &chaos.foreign[h] {
                    if kernel.get(key).map(|route| &route.attrs) != Some(attrs) {
                        r.foreign_missing += 1;
                    }
                }
            }
        }
        r
    }

    /// Cold-start counters for this run: crash-restart ramp-up times
    /// (when [`CdnSimConfig::track_ramp`] is on) plus what the
    /// persistence and gossip layers did. All-zero when those features
    /// are off.
    pub fn coldstart_report(&self) -> ColdstartReport {
        let mut r = self.coldstart;
        if let Some(g) = &self.gossip {
            let s = g.stats();
            r.gossip_rounds = s.rounds;
            r.gossip_pairs = s.pairs;
            r.gossip_backoff_skips = s.backoff_skips;
            r.gossip_peers_marked_down = s.peers_marked_down;
        }
        r.unrecovered = (self.ramp_pending.iter().flatten().count()
            + self.ramp_active.iter().flatten().count()) as u64;
        r
    }

    /// The learned window a host currently has for a destination address
    /// (for tests).
    pub fn learned_window(&self, host: HostId, dst: Ipv4Addr) -> Option<u32> {
        self.agents[host.index()]
            .as_ref()
            .and_then(|a| a.learned_window(dst))
    }

    /// Runs one reconciler audit immediately on every live riptide host,
    /// regardless of the `reconcile_every` schedule — the hook benches
    /// use to demonstrate convergence after the last churn instant.
    pub fn reconcile_now(&mut self) {
        let now = self.tb.world.now();
        self.run_reconcile(now);
    }

    /// Advances the deployment by `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.tb.world.now() + duration;
        loop {
            let mut next = end;
            if self.riptide_enabled() {
                next = next.min(self.next_agent_tick);
            }
            next = next.min(self.next_cwnd_sample);
            next = next.min(self.next_probe_due);
            next = next.min(self.next_organic_due);
            if let Some(chaos) = &self.chaos {
                next = next.min(chaos.next_burst_check);
                if let Some(t) = chaos.bursts.iter().map(|b| b.until).min() {
                    next = next.min(t);
                }
                if let Some(t) = chaos.loss_episodes.iter().map(|b| b.until).min() {
                    next = next.min(t);
                }
                if let Some(t) = chaos.pending.iter().map(|p| p.due).min() {
                    next = next.min(t);
                }
            }
            if let Some(t) = self.next_reconcile {
                next = next.min(t);
            }
            if let Some(g) = &self.gossip {
                if self.riptide_enabled() {
                    next = next.min(g.next_round());
                }
            }
            if let Some(p) = &self.persist {
                if self.riptide_enabled() {
                    next = next.min(p.next_snapshot);
                }
            }
            self.tb.world.run_until(next);
            self.collect_completed();
            if next >= end {
                break;
            }
            let now = next;
            if self.chaos.is_some() {
                self.apply_due_installs(now);
                self.chaos_burst_tick(now);
            }
            if self.riptide_enabled() && now >= self.next_agent_tick {
                self.chaos_churn_tick(now);
                self.tick_agents(now);
                self.journal_deltas(now);
                let interval = self
                    .cfg
                    .riptide
                    .as_ref()
                    .expect("riptide enabled")
                    .update_interval;
                self.next_agent_tick = now + interval;
            }
            if self.riptide_enabled() {
                if let Some(g) = &self.gossip {
                    if now >= g.next_round() {
                        self.gossip_round(now);
                    }
                }
                if let Some(p) = &self.persist {
                    if now >= p.next_snapshot {
                        self.snapshot_hosts(now);
                    }
                }
                self.check_ramp(now);
            }
            if let Some(t) = self.next_reconcile {
                if now >= t {
                    self.run_reconcile(now);
                    let every = self.cfg.reconcile_every.expect("reconcile scheduled");
                    self.next_reconcile = Some(now + every);
                }
            }
            if now >= self.next_cwnd_sample {
                self.sample_cwnds(now);
                self.next_cwnd_sample = now + self.cfg.cwnd_sample_interval;
            }
            self.fire_due_probes(now);
            self.fire_due_organic(now);
        }
    }

    fn collect_completed(&mut self) {
        for rec in self.tb.world.drain_completed() {
            match self.probe_tags.remove(&rec.transfer) {
                Some((src_site, dst_site, size)) => {
                    self.probe_outcomes.push(ProbeOutcome {
                        src_site,
                        dst_site,
                        size,
                        bucket: self.tb.bucket(src_site, dst_site),
                        completion: rec.completion_time(),
                        fresh_connection: rec.fresh_connection,
                        requested_at: rec.requested_at,
                        initial_cwnd: rec.initial_cwnd,
                    });
                }
                None => self.organic_completed += 1,
            }
        }
    }

    fn tick_agents(&mut self, now: SimTime) {
        // PoP pairs whose fresh jump-start installs drew a targeted loss
        // fault this tick; episodes start after the loop so the world is
        // not reconfigured while agents still borrow chaos state.
        let mut targeted: Vec<(PopId, PopId)> = Vec::new();
        for h in 0..self.agents.len() {
            let host = HostId::from_index(h as u32);
            if self.agents[h].is_some() {
                if let Some(chaos) = self.chaos.as_mut() {
                    match chaos.down_until[h] {
                        // The daemon is mid-restart: nothing runs.
                        Some(until) if now < until => continue,
                        Some(_) => {
                            // Restart: the replacement's first act is the
                            // §IV-D startup recovery — wipe whatever
                            // riptide routes the dead incarnation left.
                            chaos.down_until[h] = None;
                            let ctl = self.controllers[h]
                                .as_mut()
                                .expect("controller exists when agent does");
                            let table = ctl.inner().table();
                            let wiped = recover_stale_routes(&mut table.borrow_mut());
                            chaos.report.routes_recovered += wiped as u64;
                            // Warm restart: reload the host's persisted
                            // state file (it survived on "disk") and
                            // reinstall the surviving routes, instead of
                            // re-learning from an empty table. A torn or
                            // corrupt file degrades to a cold start.
                            if let Some(p) = self.persist.as_mut() {
                                let store = &mut p.stores[h];
                                if let Ok(state) = riptide::persist::decode_state(&store.bytes) {
                                    let merged =
                                        riptide::persist::replay(&state.snapshot, &state.journal);
                                    let agent = self.agents[h]
                                        .as_mut()
                                        .expect("fresh agent installed at crash");
                                    let restored = agent.restore_state(&merged, now, ctl);
                                    self.coldstart.restored_routes += restored.len() as u64;
                                    store.last_installed = agent.installed_view().clone();
                                }
                            }
                            if self.cfg.track_ramp {
                                if let Some(pre) = self.ramp_pending[h].take() {
                                    self.ramp_active[h] = Some((pre, now));
                                    self.coldstart.restarts_tracked += 1;
                                }
                            }
                        }
                        None => {
                            if chaos.injector.crashes_now() {
                                // Crash loses the learned table (it lives
                                // in the daemon) but not installed routes
                                // (they live in the kernel) — nor the
                                // persisted state file (it lives on disk).
                                let old = self.agents[h].take().expect("agent present");
                                chaos.report.degraded_ticks += old.stats().degraded_ticks;
                                chaos.report.guard_trips += old.stats().guard_trips;
                                chaos.report.reconcile_repairs += old.stats().reconcile_repairs;
                                if self.cfg.track_ramp {
                                    let pre: u64 =
                                        old.installed_view().values().map(|&w| w as u64).sum();
                                    self.ramp_active[h] = None;
                                    self.ramp_pending[h] = (pre > 0).then_some(pre);
                                }
                                let rc = self.cfg.riptide.clone().expect("agent implies config");
                                let mut fresh =
                                    RiptideAgent::new(rc).expect("validated riptide config");
                                if let Some(t) = &self.telemetry {
                                    fresh.attach_telemetry(t.clone());
                                }
                                self.agents[h] = Some(fresh);
                                chaos.down_until[h] =
                                    Some(now + chaos.injector.plan().restart_after);
                                if chaos.injector.plan().crash_resets_connections {
                                    // Machine restart: the host's TCP
                                    // state (both directions) dies with
                                    // it — nothing to observe until
                                    // traffic returns.
                                    self.tb.world.reset_host_connections(host);
                                }
                                continue;
                            }
                        }
                    }
                }
            }
            let Some(agent) = self.agents[h].as_mut() else {
                continue;
            };
            let controller = self.controllers[h]
                .as_mut()
                .expect("controller exists when agent does");
            let mut observations: Vec<CwndObservation> = Vec::new();
            self.tb.world.each_host_conn_stat(host, |s| {
                if s.state == ConnState::Established {
                    observations.push(CwndObservation {
                        dst: s.dst_addr,
                        cwnd: s.cwnd,
                        bytes_acked: s.bytes_acked,
                        retrans: s.retransmits,
                        ecn_marks: s.ece_reductions,
                    });
                }
            });
            match self.chaos.as_mut() {
                None => {
                    // The agent polls exactly once per tick; hand the rows
                    // over instead of cloning them per poll.
                    let mut rows = Some(observations);
                    let mut observer =
                        FnObserver(move || rows.take().expect("agent polls once per tick"));
                    agent.tick(now, &mut observer, controller);
                }
                Some(chaos) => {
                    let update_interval = self
                        .cfg
                        .riptide
                        .as_ref()
                        .expect("agent implies config")
                        .update_interval;
                    let ChaosState {
                        injector,
                        policy,
                        pending,
                        report,
                        ..
                    } = chaos;

                    // Observation: fault-injected poll under retry with a
                    // per-cycle budget. A timed-out attempt is modeled as
                    // costing 200 ms of the cycle.
                    let rows = &observations;
                    // Scoped so the observer's borrow of `injector` ends
                    // before the controller takes it.
                    let (polled, obs_retries) = {
                        let mut resilient = ResilientObserver::new(
                            FnFallibleObserver(|| match injector.observe_fault(rows.len()) {
                                ObserveFault::None => Ok(rows.clone()),
                                ObserveFault::Timeout => Err(ObserveError::Timeout),
                                ObserveFault::Partial { keep } => Ok(rows[..keep].to_vec()),
                            }),
                            *policy,
                            SimDuration::from_millis(200),
                            update_interval,
                        );
                        if let Some(io) = &self.io_counters {
                            resilient.set_counters(io.clone());
                        }
                        let polled = resilient.observe();
                        (polled, resilient.stats().retries)
                    };
                    report.observe_retries += obs_retries;

                    match polled {
                        Err(_) => {
                            // Degraded cycle: never guess from stale rows
                            // — freeze learning, let TTL expiry run.
                            agent.tick_degraded(now, controller);
                        }
                        Ok(polled_rows) => {
                            let delay_for = injector.plan().install_delay_for;
                            let chaos_ctl = ChaosController {
                                inner: controller,
                                injector,
                                pending,
                                now,
                                delay_for,
                                host: h,
                            };
                            let mut rctl = ResilientController::new(chaos_ctl, *policy);
                            if let Some(io) = &self.io_counters {
                                rctl.set_counters(io.clone());
                            }
                            let mut polled_rows = Some(polled_rows);
                            let mut observer = FnObserver(move || {
                                polled_rows.take().expect("agent polls once per tick")
                            });
                            let tick = agent.tick(now, &mut observer, &mut rctl);
                            let io = rctl.stats();
                            report.install_retries += io.retries;
                            report.install_gave_up += io.gave_up;
                            // Adversarial loss: each *jump-start* install
                            // (window above the kernel default of 10) may
                            // draw a loss episode on exactly the path the
                            // learned window now accelerates.
                            for &(key, window) in &tick.updates {
                                if window <= 10 || !injector.targeted_burst() {
                                    continue;
                                }
                                let Some(&dst) = self.addr_to_host.get(&key.network()) else {
                                    continue;
                                };
                                let a = self.tb.world.pop_of(host);
                                let b = self.tb.world.pop_of(dst);
                                if a != b {
                                    targeted.push((a, b));
                                }
                            }
                        }
                    }
                }
            }
        }
        self.start_loss_episodes(now, targeted);
    }

    /// Starts a targeted loss episode on each drawn PoP pair that does not
    /// already have one running, raising path loss to the plan's
    /// `targeted_loss_rate` until `targeted_loss_for` elapses.
    fn start_loss_episodes(&mut self, now: SimTime, pairs: Vec<(PopId, PopId)>) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        for (a, b) in pairs {
            let hit = chaos
                .loss_episodes
                .iter()
                .any(|x| (x.a == a && x.b == b) || (x.a == b && x.b == a));
            if hit {
                continue;
            }
            let saved_ab = self
                .tb
                .world
                .path_config(a, b)
                .expect("inter-pop path exists")
                .clone();
            let saved_ba = self
                .tb
                .world
                .path_config(b, a)
                .expect("inter-pop path exists")
                .clone();
            let loss = chaos.injector.plan().targeted_loss_rate;
            let mut lossy_ab = saved_ab.clone();
            lossy_ab.loss = lossy_ab.loss.max(loss);
            let mut lossy_ba = saved_ba.clone();
            lossy_ba.loss = lossy_ba.loss.max(loss);
            self.tb.world.reconfigure_path(a, b, lossy_ab);
            self.tb.world.reconfigure_path(b, a, lossy_ba);
            chaos.loss_episodes.push(ActiveBurst {
                until: now + chaos.injector.plan().targeted_loss_for,
                a,
                b,
                saved_ab,
                saved_ba,
            });
        }
    }

    /// Route-table churn: at each agent-tick instant every riptide host
    /// draws a churn fault that mutates its kernel table behind the
    /// agent's back — deleting an installed route, injecting an orphan
    /// riptide-signature route, or injecting a foreign route the
    /// reconciler must never touch.
    fn chaos_churn_tick(&mut self, _now: SimTime) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        for h in 0..self.agents.len() {
            let Some(ctl) = self.controllers[h].as_mut() else {
                continue;
            };
            let installed = self.agents[h]
                .as_ref()
                .map_or(0, |a| a.installed_view().len());
            match chaos.injector.churn_fault(installed) {
                ChurnFault::None => {}
                ChurnFault::DeleteInstalled { pick } => {
                    let key = self.agents[h]
                        .as_ref()
                        .and_then(|a| a.installed_view().keys().nth(pick).copied());
                    if let Some(key) = key {
                        if ctl.inner().table().borrow_mut().del(key).is_ok() {
                            chaos.report.drift_deleted += 1;
                        }
                    }
                }
                ChurnFault::InjectOrphan { octet, window } => {
                    // TEST-NET-3: outside the testbed's 10.x address range,
                    // so the orphan never shadows a live destination.
                    let key = Ipv4Prefix::host(Ipv4Addr::new(203, 0, 113, octet));
                    let mut attrs = RouteAttrs::initcwnd(window);
                    attrs.proto = RouteProto::Static;
                    ctl.inner().table().borrow_mut().replace(key, attrs);
                    chaos.report.drift_orphaned += 1;
                }
                ChurnFault::InjectForeign { octet } => {
                    // TEST-NET-2, proto kernel, no initcwnd: not ours.
                    let key = Ipv4Prefix::host(Ipv4Addr::new(198, 51, 100, octet));
                    let attrs = RouteAttrs {
                        proto: RouteProto::Kernel,
                        ..RouteAttrs::default()
                    };
                    ctl.inner().table().borrow_mut().replace(key, attrs.clone());
                    chaos.foreign[h].insert(key, attrs);
                    chaos.report.foreign_injected += 1;
                }
            }
        }
    }

    /// One reconciler audit on every live riptide host: render the host's
    /// kernel table, re-parse it through the `ip route show` seam, and let
    /// the agent diff the dump against its installed view and repair any
    /// drift.
    fn run_reconcile(&mut self, now: SimTime) {
        for h in 0..self.agents.len() {
            if let Some(chaos) = self.chaos.as_ref() {
                if chaos.down_until[h].is_some_and(|until| now < until) {
                    continue;
                }
            }
            let Some(agent) = self.agents[h].as_mut() else {
                continue;
            };
            let Some(ctl) = self.controllers[h].as_mut() else {
                continue;
            };
            let text = ctl.inner().table().borrow().render();
            let (dump, defects) = RouteTable::parse_lossy(&text);
            debug_assert!(defects.is_empty(), "self-rendered dump parses clean");
            let audit = agent.reconcile(&dump, ctl);
            if let Some(chaos) = self.chaos.as_mut() {
                chaos.report.reconcile_foreign_seen += audit.foreign_seen as u64;
            }
        }
    }

    /// Lands every delayed route write whose delay has elapsed. The write
    /// still goes through the host's bounds gate, and may target a host
    /// whose agent has crashed since — the kernel applies it regardless.
    fn apply_due_installs(&mut self, now: SimTime) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        let mut i = 0;
        while i < chaos.pending.len() {
            if chaos.pending[i].due > now {
                i += 1;
                continue;
            }
            let p = chaos.pending.swap_remove(i);
            if let Some(ctl) = self.controllers[p.host].as_mut() {
                let landed = match p.window {
                    Some(w) => ctl.set_initcwnd(p.key, w).is_ok(),
                    None => ctl.clear_initcwnd(p.key).is_ok(),
                };
                if landed {
                    chaos.report.delayed_applied += 1;
                }
            }
        }
    }

    /// Ends elapsed link loss bursts (restoring the saved path configs)
    /// and, at each burst-check instant, possibly starts a new one on a
    /// randomly drawn PoP pair.
    fn chaos_burst_tick(&mut self, now: SimTime) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        let mut i = 0;
        while i < chaos.bursts.len() {
            if now >= chaos.bursts[i].until {
                let b = chaos.bursts.swap_remove(i);
                self.tb.world.reconfigure_path(b.a, b.b, b.saved_ab);
                self.tb.world.reconfigure_path(b.b, b.a, b.saved_ba);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < chaos.loss_episodes.len() {
            if now >= chaos.loss_episodes[i].until {
                let e = chaos.loss_episodes.swap_remove(i);
                self.tb.world.reconfigure_path(e.a, e.b, e.saved_ab);
                self.tb.world.reconfigure_path(e.b, e.a, e.saved_ba);
            } else {
                i += 1;
            }
        }
        if now >= chaos.next_burst_check {
            if let Some((ai, bi)) = chaos.injector.burst_starts(self.tb.pop_count()) {
                let (a, b) = (PopId::from_index(ai as u32), PopId::from_index(bi as u32));
                let hit = chaos
                    .bursts
                    .iter()
                    .any(|x| (x.a == a && x.b == b) || (x.a == b && x.b == a));
                if !hit {
                    let saved_ab = self
                        .tb
                        .world
                        .path_config(a, b)
                        .expect("inter-pop path exists")
                        .clone();
                    let saved_ba = self
                        .tb
                        .world
                        .path_config(b, a)
                        .expect("inter-pop path exists")
                        .clone();
                    let loss = chaos.injector.plan().burst_loss;
                    let mut burst_ab = saved_ab.clone();
                    burst_ab.loss = burst_ab.loss.max(loss);
                    let mut burst_ba = saved_ba.clone();
                    burst_ba.loss = burst_ba.loss.max(loss);
                    self.tb.world.reconfigure_path(a, b, burst_ab);
                    self.tb.world.reconfigure_path(b, a, burst_ba);
                    chaos.bursts.push(ActiveBurst {
                        until: now + chaos.injector.plan().burst_for,
                        a,
                        b,
                        saved_ab,
                        saved_ba,
                    });
                }
            }
            chaos.next_burst_check = now + chaos.injector.plan().burst_check_every;
        }
    }

    /// Whether host `h`'s daemon is up at `now` (always true without a
    /// chaos layer; a down daemon neither snapshots, journals, nor
    /// gossips).
    fn host_up(chaos: &Option<ChaosState>, h: usize, now: SimTime) -> bool {
        chaos
            .as_ref()
            .is_none_or(|c| c.down_until[h].is_none_or(|until| now >= until))
    }

    /// One host's learned table as sync entries, key-sorted (tables
    /// iterate in key order).
    fn sync_entries(agents: &[Option<RiptideAgent>], h: usize) -> Vec<SyncEntry> {
        agents[h].as_ref().map_or_else(Vec::new, |a| {
            a.table()
                .iter()
                .map(|(k, e)| SyncEntry {
                    key: *k,
                    window: e.window,
                    last_updated: e.last_updated,
                })
                .collect()
        })
    }

    /// Appends journal records for each host whose installed view
    /// changed since its state file last described it — the WAL half of
    /// the persistence hybrid, so a crash loses at most one tick.
    fn journal_deltas(&mut self, now: SimTime) {
        let Some(p) = self.persist.as_mut() else {
            return;
        };
        if !p.cfg.journal {
            return;
        }
        for h in 0..self.agents.len() {
            if !Self::host_up(&self.chaos, h, now) {
                continue;
            }
            let Some(agent) = self.agents[h].as_ref() else {
                continue;
            };
            let store = &mut p.stores[h];
            let cur = agent.installed_view();
            if *cur == store.last_installed {
                continue;
            }
            // A journal needs a snapshot header to replay onto; the
            // first append starts from an empty one.
            if store.bytes.is_empty() {
                let empty = TableSnapshot::default();
                store.bytes = encode_state(&empty, &[]);
            }
            let mut records = 0u64;
            for &key in store.last_installed.keys() {
                if !cur.contains_key(&key) {
                    JournalRecord {
                        at: now,
                        key,
                        op: JournalOp::Withdraw,
                    }
                    .encode_into(&mut store.bytes);
                    records += 1;
                }
            }
            for (&key, &window) in cur {
                if store.last_installed.get(&key) != Some(&window) {
                    JournalRecord {
                        at: now,
                        key,
                        op: JournalOp::Install { window },
                    }
                    .encode_into(&mut store.bytes);
                    records += 1;
                }
            }
            store.last_installed = cur.clone();
            self.coldstart.journal_records += records;
        }
    }

    /// Rewrites every live host's snapshot from its agent's full state,
    /// truncating the journal tail into it.
    fn snapshot_hosts(&mut self, now: SimTime) {
        let Some(p) = self.persist.as_mut() else {
            return;
        };
        for h in 0..self.agents.len() {
            if !Self::host_up(&self.chaos, h, now) {
                continue;
            }
            let Some(agent) = self.agents[h].as_ref() else {
                continue;
            };
            let store = &mut p.stores[h];
            store.bytes = encode_state(&agent.snapshot_state(now), &[]);
            store.last_installed = agent.installed_view().clone();
            self.coldstart.snapshots_written += 1;
        }
        p.next_snapshot = now + p.cfg.snapshot_every;
    }

    /// One gossip round: draw this round's pairs, compare digests, and
    /// ship bounded deltas both ways where they differ. All table
    /// mutation goes through [`RiptideAgent::merge_remote`], which
    /// applies the newest-wins clamp-merge rules and installs through
    /// the same bounds-checked controller as learning.
    fn gossip_round(&mut self, now: SimTime) {
        let alive: Vec<bool> = (0..self.agents.len())
            .map(|h| self.agents[h].is_some() && Self::host_up(&self.chaos, h, now))
            .collect();
        let Some(fabric) = self.gossip.as_mut() else {
            return;
        };
        let pairs = fabric.pairs_for_round(now, &alive);
        fabric.schedule_next(now);
        let sync_cfg = fabric.sync_config();
        for (a, b) in pairs {
            let ea = Self::sync_entries(&self.agents, a);
            let eb = Self::sync_entries(&self.agents, b);
            let fabric = self.gossip.as_mut().expect("gossip enabled");
            if digest_of(&ea) == digest_of(&eb) {
                self.coldstart.digests_matched += 1;
                fabric.record_exchange(a, b, now);
                continue;
            }
            let since = fabric.last_exchange(a, b);
            let delta_ab = delta_for(&ea, since, &sync_cfg);
            let delta_ba = delta_for(&eb, since, &sync_cfg);
            fabric.record_exchange(a, b, now);
            self.coldstart.entries_shipped +=
                (delta_ab.entries.len() + delta_ba.entries.len()) as u64;
            for (dst, delta) in [(b, delta_ab), (a, delta_ba)] {
                if delta.entries.is_empty() {
                    continue;
                }
                let agent = self.agents[dst].as_mut().expect("alive host has agent");
                let ctl = self.controllers[dst]
                    .as_mut()
                    .expect("controller exists when agent does");
                let accepted = agent.merge_remote(&delta.entries, now, ctl);
                self.coldstart.entries_accepted += accepted.len() as u64;
            }
        }
    }

    /// Completes any in-progress ramp whose host climbed back to 90% of
    /// its pre-crash installed-window sum.
    fn check_ramp(&mut self, now: SimTime) {
        if !self.cfg.track_ramp {
            return;
        }
        for h in 0..self.agents.len() {
            let Some((pre, since)) = self.ramp_active[h] else {
                continue;
            };
            if !Self::host_up(&self.chaos, h, now) {
                continue;
            }
            let Some(agent) = self.agents[h].as_ref() else {
                continue;
            };
            let cur: u64 = agent.installed_view().values().map(|&w| w as u64).sum();
            if cur * 10 >= pre * 9 {
                let ramp = now.saturating_since(since);
                self.coldstart.recoveries += 1;
                self.coldstart.ramp_nanos_total += ramp.as_nanos();
                self.coldstart.ramp_nanos_max = self.coldstart.ramp_nanos_max.max(ramp.as_nanos());
                self.ramp_active[h] = None;
            }
        }
    }

    fn sample_cwnds(&mut self, now: SimTime) {
        for h in 0..self.tb.world.host_count() {
            let host = HostId::from_index(h as u32);
            let site = self.tb.world.pop_of(host).index();
            let world = &self.tb.world;
            let samples = &mut self.cwnd_samples;
            world.each_host_conn_stat(host, |s| {
                // The paper's filter: only connections created after
                // Riptide was started (t = 0 here), in ESTAB state.
                if s.state != ConnState::Established {
                    return;
                }
                samples.push(CwndSample {
                    site,
                    dst_site: world.pop_of(s.dst).index(),
                    cwnd: s.cwnd,
                    at: now,
                });
            });
        }
    }

    fn fire_due_probes(&mut self, now: SimTime) {
        if now < self.next_probe_due {
            return;
        }
        while let Some(&std::cmp::Reverse((due, idx))) = self.probe_heap.peek() {
            if due > now {
                break;
            }
            self.probe_heap.pop();
            let (_, host, site) = self.probe_schedule[idx];
            self.probe_one_machine(host, site);
            let next = now + self.cfg.probes.interval;
            self.probe_schedule[idx].0 = next;
            self.probe_heap.push(std::cmp::Reverse((next, idx)));
        }
        self.next_probe_due = self
            .probe_heap
            .peek()
            .map(|r| (r.0).0)
            .unwrap_or(SimTime::MAX);
    }

    fn probe_one_machine(&mut self, host: HostId, site: usize) {
        let machine_slot = self
            .tb
            .machines(site)
            .iter()
            .position(|&h| h == host)
            .expect("host belongs to its site");
        for dst_site in 0..self.tb.pop_count() {
            if dst_site == site {
                continue;
            }
            let targets = self.tb.machines(dst_site);
            let target = targets[machine_slot % targets.len()];
            for size_idx in 0..self.cfg.probes.sizes.len() {
                let size = self.cfg.probes.sizes[size_idx];
                // §II-A churn: some idle connections have been closed by
                // application behaviour since the last round.
                if self.rng.chance(self.cfg.probes.churn) {
                    if let Some(cid) = self.tb.world.find_idle_connection(host, target) {
                        self.tb.world.close_connection(cid);
                    }
                }
                let tid = match self.tb.world.find_idle_connection(host, target) {
                    Some(cid) => self.tb.world.start_transfer(cid, size),
                    None => self.tb.world.open_and_transfer(host, target, size).1,
                };
                self.probe_tags.insert(tid, (site, dst_site, size));
            }
        }
    }

    fn fire_due_organic(&mut self, now: SimTime) {
        if now < self.next_organic_due {
            return;
        }
        while let Some(&std::cmp::Reverse((due, idx))) = self.organic_heap.peek() {
            if due > now {
                break;
            }
            self.organic_heap.pop();
            let (_, src_site, dst_site) = self.organic_schedule[idx];
            let src_hosts = self.tb.machines(src_site);
            let dst_hosts = self.tb.machines(dst_site);
            let src = src_hosts[self.rng.below(src_hosts.len())];
            let dst = dst_hosts[self.rng.below(dst_hosts.len())];
            let bytes = self.cfg.organic.sizes.sample(&mut self.rng);
            match self.tb.world.find_idle_connection(src, dst) {
                Some(cid) => {
                    self.tb.world.start_transfer(cid, bytes);
                }
                None => {
                    self.tb.world.open_and_transfer(src, dst, bytes);
                }
            }
            self.organic_started += 1;
            let rate = self.cfg.organic.rate_at(now.as_secs_f64()).max(1e-6);
            let gap = self
                .rng
                .exp_duration(SimDuration::from_secs_f64(1.0 / rate));
            self.organic_schedule[idx].0 = now + gap;
            self.organic_heap.push(std::cmp::Reverse((now + gap, idx)));
        }
        self.next_organic_due = self
            .organic_heap
            .peek()
            .map(|r| (r.0).0)
            .unwrap_or(SimTime::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(riptide: bool, seed: u64) -> CdnSimConfig {
        CdnSimConfig {
            testbed: TestbedConfig::tiny(3, 2, seed),
            riptide: riptide.then(RiptideConfig::deployment),
            probes: ProbeConfig {
                interval: SimDuration::from_secs(60),
                ..ProbeConfig::default()
            },
            organic: OrganicConfig::none(),
            cwnd_sample_interval: SimDuration::from_secs(30),
            probe_senders: None,
            faults: FaultPlan::none(),
            reconcile_every: None,
            telemetry: false,
            persistence: None,
            gossip: None,
            track_ramp: false,
        }
    }

    #[test]
    fn probes_complete_in_both_modes() {
        for riptide in [false, true] {
            let mut sim = CdnSim::new(tiny_cfg(riptide, 11));
            sim.run_for(SimDuration::from_secs(300));
            // 3 sites × 2 machines × 2 destinations × 3 sizes per round,
            // several rounds in 300 s.
            let n = sim.probe_outcomes().len();
            assert!(n >= 3 * 2 * 2 * 3 * 3, "riptide={riptide}: {n} probes");
            assert!(
                sim.probe_outcomes()
                    .iter()
                    .all(|p| p.completion > SimDuration::ZERO && p.src_site != p.dst_site),
                "well-formed outcomes"
            );
        }
    }

    #[test]
    fn agents_learn_windows_for_probed_destinations() {
        let mut sim = CdnSim::new(tiny_cfg(true, 13));
        sim.run_for(SimDuration::from_secs(200));
        let host = sim.testbed().machines(0)[0];
        let dst_host = sim.testbed().machines(1)[0];
        let dst_addr = sim.testbed().world.host_addr(dst_host);
        let learned = sim.learned_window(host, dst_addr);
        assert!(learned.is_some(), "agent learned a window after probing");
        let w = learned.unwrap();
        assert!(
            (10..=100).contains(&w),
            "learned window {w} in [c_min, c_max]"
        );
        let stats = sim.agent_stats_total();
        assert!(stats.ticks > 0 && stats.route_updates > 0);
    }

    #[test]
    fn control_run_has_no_agents() {
        let mut sim = CdnSim::new(tiny_cfg(false, 13));
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(sim.agent_stats_total(), AgentStats::default());
        assert!(!sim.riptide_enabled());
        assert!(!sim.probe_outcomes().is_empty());
    }

    #[test]
    fn cwnd_samples_accumulate() {
        let mut sim = CdnSim::new(tiny_cfg(true, 17));
        sim.run_for(SimDuration::from_secs(200));
        assert!(!sim.cwnd_samples().is_empty());
        assert!(sim.cwnd_samples().iter().all(|s| s.cwnd >= 1));
    }

    #[test]
    fn organic_traffic_flows() {
        let mut cfg = tiny_cfg(true, 19);
        cfg.organic = OrganicConfig::among(vec![0, 1], 0.5);
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(300));
        assert!(
            sim.organic_started() > 30,
            "started {}",
            sim.organic_started()
        );
        assert!(
            sim.organic_completed() > 20,
            "completed {}",
            sim.organic_completed()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut sim = CdnSim::new(tiny_cfg(true, seed));
            sim.run_for(SimDuration::from_secs(180));
            sim.probe_outcomes()
                .iter()
                .map(|p| (p.src_site, p.dst_site, p.size, p.completion.as_nanos()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(23), run(23));
        assert_ne!(run(23), run(24));
    }

    #[test]
    fn probe_senders_can_be_restricted() {
        let mut cfg = tiny_cfg(false, 29);
        cfg.probe_senders = Some(vec![0]);
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(150));
        assert!(sim.probe_outcomes().iter().all(|p| p.src_site == 0));
    }

    #[test]
    fn chaos_fires_faults_but_windows_stay_in_bounds() {
        let mut cfg = tiny_cfg(true, 41);
        cfg.faults = FaultPlan::uniform(0.2);
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(400));
        let r = sim.chaos_report();
        assert!(r.faults.observe_timeouts > 0, "{r:?}");
        assert!(
            r.faults.install_errors + r.faults.install_delays > 0,
            "{r:?}"
        );
        assert!(r.degraded_ticks > 0, "degraded cycles happened: {r:?}");
        assert!(r.observe_retries > 0, "retries happened: {r:?}");
        assert_eq!(r.invariant_breaches, 0, "no-harm invariant: {r:?}");
        let (lo, hi) = r.installed_range().expect("something was installed");
        assert!(lo >= 10 && hi <= 100, "installed range [{lo}, {hi}]");
    }

    #[test]
    fn chaos_crashes_lose_tables_and_recovery_wipes_stale_routes() {
        let mut cfg = tiny_cfg(true, 43);
        cfg.faults = FaultPlan {
            crash: 0.05,
            restart_after: SimDuration::from_secs(5),
            ..FaultPlan::none()
        };
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(400));
        let r = sim.chaos_report();
        assert!(r.faults.crashes > 0, "{r:?}");
        assert!(r.routes_recovered > 0, "restarts wiped stale routes: {r:?}");
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = |seed| {
            let mut cfg = tiny_cfg(true, seed);
            cfg.faults = FaultPlan::uniform(0.1);
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(300));
            let probes = sim
                .probe_outcomes()
                .iter()
                .map(|p| (p.src_site, p.dst_site, p.size, p.completion.as_nanos()))
                .collect::<Vec<_>>();
            (probes, sim.chaos_report())
        };
        assert_eq!(run(23), run(23));
        assert_ne!(run(23), run(24));
    }

    #[test]
    fn link_bursts_hit_control_runs_too() {
        // The burst stream is independent of agent-facing faults, so a
        // control run draws the same burst schedule as a riptide run.
        let report = |riptide| {
            let mut cfg = tiny_cfg(riptide, 47);
            cfg.faults = FaultPlan {
                burst_start: 0.5,
                burst_loss: 0.2,
                ..FaultPlan::none()
            };
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(200));
            sim.chaos_report().faults.bursts
        };
        let control = report(false);
        assert!(control > 0, "bursts fired in the control run");
        assert_eq!(control, report(true), "same burst schedule in both arms");
    }

    #[test]
    fn route_churn_creates_drift_and_reconcile_repairs_it() {
        let mut cfg = tiny_cfg(true, 53);
        cfg.faults = FaultPlan::guardrail(0.3);
        cfg.faults.targeted_loss = 0.0; // churn only, in this test
        cfg.reconcile_every = Some(SimDuration::from_secs(45));
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(600));
        // Let a final audit land after the last churn instant: the last
        // agent tick is at t <= 600 and the reconciler runs every 45 s,
        // so running past one more audit instant converges the tables.
        let last_tick = sim.next_agent_tick;
        sim.run_for(last_tick + SimDuration::from_secs(46) - sim.tb.world.now());
        let r = sim.chaos_report();
        assert!(r.faults.route_churns > 0, "{r:?}");
        assert!(
            r.drift_deleted + r.drift_orphaned > 0,
            "churn mutated agent-owned state: {r:?}"
        );
        assert!(r.reconcile_repairs > 0, "audits repaired drift: {r:?}");
        assert_eq!(r.foreign_missing, 0, "foreign routes untouched: {r:?}");
        assert_eq!(r.invariant_breaches, 0, "repairs respect bounds: {r:?}");
    }

    #[test]
    fn unreconciled_churn_leaves_visible_drift() {
        let mut cfg = tiny_cfg(true, 53);
        cfg.faults = FaultPlan::guardrail(0.3);
        cfg.faults.targeted_loss = 0.0;
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(600));
        let r = sim.chaos_report();
        assert!(r.faults.route_churns > 0, "{r:?}");
        assert!(
            r.drift_unrepaired > 0,
            "without audits, drift persists: {r:?}"
        );
    }

    #[test]
    fn targeted_loss_trips_guards() {
        let mut cfg = tiny_cfg(true, 59);
        cfg.riptide = Some(
            RiptideConfig::builder()
                .guard(GuardConfig::default())
                .build()
                .expect("valid config"),
        );
        cfg.faults = FaultPlan::guardrail(0.6);
        cfg.faults.route_churn = 0.0; // loss only, in this test
        cfg.faults.targeted_loss_rate = 0.3;
        cfg.faults.targeted_loss_for = SimDuration::from_secs(60);
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(900));
        let r = sim.chaos_report();
        assert!(r.faults.targeted_bursts > 0, "{r:?}");
        assert!(
            r.guard_trips > 0,
            "loss on jump-started paths tripped breakers: {r:?}"
        );
        assert_eq!(r.invariant_breaches, 0, "{r:?}");
    }

    #[test]
    fn guardrail_chaos_runs_are_deterministic() {
        let run = |seed| {
            let mut cfg = tiny_cfg(true, seed);
            cfg.riptide = Some(
                RiptideConfig::builder()
                    .guard(GuardConfig::default())
                    .build()
                    .expect("valid config"),
            );
            cfg.faults = FaultPlan::guardrail(0.25);
            cfg.reconcile_every = Some(SimDuration::from_secs(45));
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(400));
            let probes = sim
                .probe_outcomes()
                .iter()
                .map(|p| (p.src_site, p.dst_site, p.size, p.completion.as_nanos()))
                .collect::<Vec<_>>();
            (probes, sim.chaos_report())
        };
        assert_eq!(run(61), run(61));
        assert_ne!(run(61), run(62));
    }

    #[test]
    fn zero_rate_guardrail_plan_is_bit_identical_to_no_faults() {
        let run = |faults: FaultPlan, reconcile: Option<SimDuration>| {
            let mut cfg = tiny_cfg(true, 67);
            cfg.faults = faults;
            cfg.reconcile_every = reconcile;
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(300));
            sim.probe_outcomes()
                .iter()
                .map(|p| (p.src_site, p.dst_site, p.size, p.completion.as_nanos()))
                .collect::<Vec<_>>()
        };
        let clean = run(FaultPlan::none(), None);
        assert_eq!(
            clean,
            run(FaultPlan::guardrail(0.0), None),
            "zero-rate plan adds nothing"
        );
        assert_eq!(
            clean,
            run(FaultPlan::none(), Some(SimDuration::from_secs(45))),
            "audits on a converged table are invisible"
        );
    }

    /// A crash plan for warm-restart tests: machine restarts (crash +
    /// connection reset) only, quick downtime, everything else clean.
    fn crash_plan(rate: f64) -> FaultPlan {
        FaultPlan {
            crash: rate,
            restart_after: SimDuration::from_secs(5),
            crash_resets_connections: true,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn crash_restart_with_persistence_restores_learned_tables() {
        let mut cfg = tiny_cfg(true, 43);
        cfg.faults = crash_plan(0.05);
        cfg.persistence = Some(PersistenceConfig::default());
        cfg.track_ramp = true;
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(400));
        let r = sim.chaos_report();
        assert!(r.faults.crashes > 0, "{r:?}");
        let c = sim.coldstart_report();
        assert!(c.snapshots_written > 0, "{c:?}");
        assert!(c.journal_records > 0, "installs were journalled: {c:?}");
        assert!(
            c.restored_routes > 0,
            "restarts reloaded persisted routes: {c:?}"
        );
        assert!(c.restarts_tracked > 0, "{c:?}");
        assert_eq!(r.invariant_breaches, 0, "restores respect bounds: {r:?}");
        // Every restored window the kernel now carries is in bounds.
        if let Some((lo, hi)) = r.installed_range() {
            assert!(lo >= 10 && hi <= 100, "installed range [{lo}, {hi}]");
        }
    }

    #[test]
    fn persisted_restarts_ramp_up_faster_than_cold_ones() {
        let run = |persistence: Option<PersistenceConfig>| {
            let mut cfg = tiny_cfg(true, 43);
            cfg.faults = crash_plan(0.01);
            cfg.persistence = persistence;
            cfg.track_ramp = true;
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(600));
            sim.coldstart_report()
        };
        let cold = run(None);
        let warm = run(Some(PersistenceConfig::default()));
        assert!(cold.restarts_tracked > 0 && warm.restarts_tracked > 0);
        // A cold restart re-learns from the next probe rounds; a warm
        // one reinstalls from the state file within its restart tick.
        let warm_mean = warm.mean_ramp_secs().expect("warm restarts recovered");
        match cold.mean_ramp_secs() {
            Some(cold_mean) => assert!(
                warm_mean < cold_mean,
                "warm {warm_mean}s vs cold {cold_mean}s"
            ),
            // Cold restarts may not even reach 90% before the run ends.
            None => assert!(cold.unrecovered > 0),
        }
    }

    #[test]
    fn gossip_spreads_learned_entries_across_the_fleet() {
        let entries = |gossip: Option<GossipConfig>| {
            let mut cfg = tiny_cfg(true, 71);
            cfg.gossip = gossip;
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(400));
            let (_, n) = sim.mean_learned_window().expect("something learned");
            (n, sim.coldstart_report())
        };
        let (plain, _) = entries(None);
        let (gossiped, c) = entries(Some(GossipConfig::default()));
        assert!(c.gossip_rounds > 0 && c.gossip_pairs > 0, "{c:?}");
        assert!(c.entries_shipped > 0, "deltas travelled: {c:?}");
        assert!(c.entries_accepted > 0, "deltas were merged: {c:?}");
        // Each machine only probes its slot-matched target per remote
        // PoP; gossip spreads the other machines' destinations to it.
        assert!(
            gossiped > plain,
            "fleet knows more with gossip: {gossiped} vs {plain}"
        );
    }

    #[test]
    fn gossip_backs_off_crashed_peers() {
        let mut cfg = tiny_cfg(true, 73);
        cfg.faults = crash_plan(0.08);
        cfg.gossip = Some(GossipConfig {
            every: SimDuration::from_secs(15),
            ..GossipConfig::default()
        });
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(600));
        let r = sim.chaos_report();
        assert!(r.faults.crashes > 0, "{r:?}");
        let c = sim.coldstart_report();
        assert!(
            c.gossip_peers_marked_down > 0,
            "draws found down peers: {c:?}"
        );
        assert_eq!(r.invariant_breaches, 0, "merges respect bounds: {r:?}");
    }

    #[test]
    fn persistence_and_gossip_runs_are_deterministic() {
        let run = |seed| {
            let mut cfg = tiny_cfg(true, seed);
            cfg.faults = crash_plan(0.05);
            cfg.persistence = Some(PersistenceConfig::default());
            cfg.gossip = Some(GossipConfig::default());
            cfg.track_ramp = true;
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(400));
            let probes = sim
                .probe_outcomes()
                .iter()
                .map(|p| (p.src_site, p.dst_site, p.size, p.completion.as_nanos()))
                .collect::<Vec<_>>();
            (probes, sim.coldstart_report(), sim.chaos_report())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn zero_rate_crash_plan_with_persistence_is_bit_identical() {
        let run = |faults: FaultPlan, persistence: Option<PersistenceConfig>, track_ramp: bool| {
            let mut cfg = tiny_cfg(true, 67);
            cfg.faults = faults;
            cfg.persistence = persistence;
            cfg.track_ramp = track_ramp;
            let mut sim = CdnSim::new(cfg);
            sim.run_for(SimDuration::from_secs(300));
            sim.probe_outcomes()
                .iter()
                .map(|p| (p.src_site, p.dst_site, p.size, p.completion.as_nanos()))
                .collect::<Vec<_>>()
        };
        let clean = run(FaultPlan::none(), None, false);
        // Snapshots and journals observe the run without perturbing it:
        // no RNG draws, no route writes — so with zero crashes the run
        // is bit-identical to one without the persistence layer at all.
        assert_eq!(
            clean,
            run(crash_plan(0.0), Some(PersistenceConfig::default()), true),
            "zero-rate crash plan with persistence adds nothing"
        );
    }

    #[test]
    fn riptide_probes_eventually_start_with_learned_windows() {
        let mut sim = CdnSim::new(tiny_cfg(true, 31));
        sim.run_for(SimDuration::from_secs(600));
        let boosted = sim
            .probe_outcomes()
            .iter()
            .filter(|p| p.initial_cwnd > 10)
            .count();
        assert!(
            boosted > 0,
            "some later probes open with Riptide-set windows"
        );
    }
}
