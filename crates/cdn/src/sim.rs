//! The deployment harness: a simulated CDN with (optionally) a Riptide
//! agent on every machine, the paper's probe infrastructure, and organic
//! back-office traffic.
//!
//! This is the simulated equivalent of §IV-A: every machine probes every
//! other PoP with 10/50/100 KB objects on a fixed interval, reusing idle
//! connections when available; Riptide agents poll `ss` every `i_u`
//! seconds and steer per-destination routes; and an observer samples live
//! congestion windows once a minute, considering only connections opened
//! after the agent started — exactly the paper's measurement filter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use riptide::prelude::*;
use riptide_linuxnet::route::RouteTable;
use riptide_simnet::prelude::*;

use crate::topology::{RttBucket, Testbed, TestbedConfig};
use crate::workload::{OrganicConfig, ProbeConfig};

/// An [`InitcwndPolicy`] that reads a host's (shared) routing table — the
/// kernel's route lookup at connect time.
#[derive(Debug)]
struct TablePolicy {
    table: Rc<RefCell<RouteTable>>,
}

impl InitcwndPolicy for TablePolicy {
    fn initial_cwnd(&self, _src: HostId, dst_addr: Ipv4Addr) -> Option<u32> {
        self.table.borrow().initcwnd_for(dst_addr)
    }
}

/// Full configuration of one deployment run.
#[derive(Debug, Clone)]
pub struct CdnSimConfig {
    /// The substrate.
    pub testbed: TestbedConfig,
    /// Riptide configuration, or `None` for a control run.
    pub riptide: Option<RiptideConfig>,
    /// Probe harness parameters.
    pub probes: ProbeConfig,
    /// Organic traffic parameters.
    pub organic: OrganicConfig,
    /// How often live congestion windows are sampled (the paper samples
    /// "each minute using the ss tool").
    pub cwnd_sample_interval: SimDuration,
    /// Site indices that send probes (`None` = every site). The paper's
    /// transfer-time analysis uses two sender PoPs.
    pub probe_senders: Option<Vec<usize>>,
}

impl Default for CdnSimConfig {
    fn default() -> Self {
        CdnSimConfig {
            testbed: TestbedConfig::default(),
            riptide: Some(RiptideConfig::deployment()),
            probes: ProbeConfig::default(),
            organic: OrganicConfig::none(),
            cwnd_sample_interval: SimDuration::from_secs(60),
            probe_senders: None,
        }
    }
}

/// One completed probe, annotated with the experiment dimensions the
/// paper's figures group on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// Sending site index.
    pub src_site: usize,
    /// Destination site index.
    pub dst_site: usize,
    /// Probe payload, bytes.
    pub size: u64,
    /// Distance group of the destination relative to the sender.
    pub bucket: RttBucket,
    /// End-to-end completion time.
    pub completion: SimDuration,
    /// Whether a fresh connection (with handshake) carried it.
    pub fresh_connection: bool,
    /// When the probe was requested.
    pub requested_at: SimTime,
    /// Initial congestion window of the carrying connection.
    pub initial_cwnd: u32,
}

/// One live-window sample (a row of the paper's per-minute `ss` sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CwndSample {
    /// Site owning the observed connection.
    pub site: usize,
    /// Destination site of the connection.
    pub dst_site: usize,
    /// The congestion window, in segments.
    pub cwnd: u32,
    /// Sample instant.
    pub at: SimTime,
}

/// A running deployment.
#[derive(Debug)]
pub struct CdnSim {
    tb: Testbed,
    cfg: CdnSimConfig,
    agents: Vec<Option<RiptideAgent>>,
    controllers: Vec<Option<SharedRouteController>>,
    rng: DetRng,
    next_agent_tick: SimTime,
    next_cwnd_sample: SimTime,
    /// Per probing machine: (next fire time, host, site index).
    probe_schedule: Vec<(SimTime, HostId, usize)>,
    /// Per ordered busy pair: (next arrival, src site, dst site).
    organic_schedule: Vec<(SimTime, usize, usize)>,
    probe_tags: HashMap<TransferId, (usize, usize, u64)>,
    probe_outcomes: Vec<ProbeOutcome>,
    cwnd_samples: Vec<CwndSample>,
    organic_completed: u64,
    organic_started: u64,
}

impl CdnSim {
    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics on invalid probe or Riptide configuration.
    pub fn new(cfg: CdnSimConfig) -> Self {
        if let Err(e) = cfg.probes.validate() {
            panic!("invalid probe config: {e}");
        }
        let mut tb = Testbed::build(&cfg.testbed);
        let mut rng = DetRng::from_seed(cfg.testbed.seed ^ 0x5EED_CD11);
        let host_count = tb.world.host_count();

        let mut agents: Vec<Option<RiptideAgent>> = Vec::with_capacity(host_count);
        let mut controllers: Vec<Option<SharedRouteController>> = Vec::with_capacity(host_count);
        for h in 0..host_count {
            match &cfg.riptide {
                Some(rc) => {
                    let table = Rc::new(RefCell::new(RouteTable::new()));
                    tb.world.set_host_policy(
                        HostId::from_index(h as u32),
                        Rc::new(TablePolicy {
                            table: Rc::clone(&table),
                        }),
                    );
                    controllers.push(Some(SharedRouteController::new(table)));
                    agents.push(Some(
                        RiptideAgent::new(rc.clone()).expect("validated riptide config"),
                    ));
                }
                None => {
                    agents.push(None);
                    controllers.push(None);
                }
            }
        }

        // Stagger each machine's probe phase uniformly over one interval.
        let mut probe_schedule = Vec::new();
        let senders: Vec<usize> = cfg
            .probe_senders
            .clone()
            .unwrap_or_else(|| (0..tb.pop_count()).collect());
        for &site in &senders {
            for &host in tb.machines(site) {
                let phase = rng.jitter(cfg.probes.interval);
                probe_schedule.push((SimTime::ZERO + phase, host, site));
            }
        }

        // Organic arrivals per ordered busy pair.
        let mut organic_schedule = Vec::new();
        if cfg.organic.is_enabled() {
            for &i in &cfg.organic.busy_pops {
                for &j in &cfg.organic.busy_pops {
                    if i == j {
                        continue;
                    }
                    let gap = rng
                        .exp_duration(SimDuration::from_secs_f64(1.0 / cfg.organic.flows_per_sec));
                    organic_schedule.push((SimTime::ZERO + gap, i, j));
                }
            }
        }

        let agent_interval = cfg
            .riptide
            .as_ref()
            .map(|r| r.update_interval)
            .unwrap_or(SimDuration::from_secs(1));

        CdnSim {
            tb,
            next_agent_tick: SimTime::ZERO + agent_interval,
            next_cwnd_sample: SimTime::ZERO + cfg.cwnd_sample_interval,
            cfg,
            agents,
            controllers,
            rng,
            probe_schedule,
            organic_schedule,
            probe_tags: HashMap::new(),
            probe_outcomes: Vec::new(),
            cwnd_samples: Vec::new(),
            organic_completed: 0,
            organic_started: 0,
        }
    }

    /// Whether this run has Riptide agents.
    pub fn riptide_enabled(&self) -> bool {
        self.cfg.riptide.is_some()
    }

    /// The underlying testbed (read access for assertions).
    pub fn testbed(&self) -> &Testbed {
        &self.tb
    }

    /// Completed probes so far.
    pub fn probe_outcomes(&self) -> &[ProbeOutcome] {
        &self.probe_outcomes
    }

    /// Live-window samples so far.
    pub fn cwnd_samples(&self) -> &[CwndSample] {
        &self.cwnd_samples
    }

    /// Organic flows completed so far.
    pub fn organic_completed(&self) -> u64 {
        self.organic_completed
    }

    /// Organic flows started so far.
    pub fn organic_started(&self) -> u64 {
        self.organic_started
    }

    /// Mean learned (installed) window across every agent's live table,
    /// with the number of live destination entries — a convergence
    /// snapshot. `None` for control runs or before anything is learned.
    pub fn mean_learned_window(&self) -> Option<(f64, usize)> {
        let mut sum = 0u64;
        let mut n = 0usize;
        for agent in self.agents.iter().flatten() {
            for (_, entry) in agent.table().iter() {
                sum += entry.window as u64;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some((sum as f64 / n as f64, n))
        }
    }

    /// Aggregated agent counters (zeros for control runs).
    pub fn agent_stats_total(&self) -> AgentStats {
        let mut total = AgentStats::default();
        for a in self.agents.iter().flatten() {
            let s = a.stats();
            total.ticks += s.ticks;
            total.observations += s.observations;
            total.route_updates += s.route_updates;
            total.route_expirations += s.route_expirations;
            total.errors += s.errors;
        }
        total
    }

    /// The learned window a host currently has for a destination address
    /// (for tests).
    pub fn learned_window(&self, host: HostId, dst: Ipv4Addr) -> Option<u32> {
        self.agents[host.index()]
            .as_ref()
            .and_then(|a| a.learned_window(dst))
    }

    /// Advances the deployment by `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.tb.world.now() + duration;
        loop {
            let mut next = end;
            if self.riptide_enabled() {
                next = next.min(self.next_agent_tick);
            }
            next = next.min(self.next_cwnd_sample);
            if let Some(&(t, _, _)) = self.probe_schedule.iter().min_by_key(|e| e.0) {
                next = next.min(t);
            }
            if let Some(&(t, _, _)) = self.organic_schedule.iter().min_by_key(|e| e.0) {
                next = next.min(t);
            }
            self.tb.world.run_until(next);
            self.collect_completed();
            if next >= end {
                break;
            }
            let now = next;
            if self.riptide_enabled() && now >= self.next_agent_tick {
                self.tick_agents(now);
                let interval = self
                    .cfg
                    .riptide
                    .as_ref()
                    .expect("riptide enabled")
                    .update_interval;
                self.next_agent_tick = now + interval;
            }
            if now >= self.next_cwnd_sample {
                self.sample_cwnds(now);
                self.next_cwnd_sample = now + self.cfg.cwnd_sample_interval;
            }
            self.fire_due_probes(now);
            self.fire_due_organic(now);
        }
    }

    fn collect_completed(&mut self) {
        for rec in self.tb.world.drain_completed() {
            match self.probe_tags.remove(&rec.transfer) {
                Some((src_site, dst_site, size)) => {
                    self.probe_outcomes.push(ProbeOutcome {
                        src_site,
                        dst_site,
                        size,
                        bucket: self.tb.bucket(src_site, dst_site),
                        completion: rec.completion_time(),
                        fresh_connection: rec.fresh_connection,
                        requested_at: rec.requested_at,
                        initial_cwnd: rec.initial_cwnd,
                    });
                }
                None => self.organic_completed += 1,
            }
        }
    }

    fn tick_agents(&mut self, now: SimTime) {
        for h in 0..self.agents.len() {
            let host = HostId::from_index(h as u32);
            let Some(agent) = self.agents[h].as_mut() else {
                continue;
            };
            let controller = self.controllers[h]
                .as_mut()
                .expect("controller exists when agent does");
            let observations: Vec<CwndObservation> = self
                .tb
                .world
                .host_conn_stats(host)
                .into_iter()
                .filter(|s| s.state == ConnState::Established)
                .map(|s| CwndObservation {
                    dst: s.dst_addr,
                    cwnd: s.cwnd,
                    bytes_acked: s.bytes_acked,
                })
                .collect();
            let mut observer = FnObserver(move || observations.clone());
            agent.tick(now, &mut observer, controller);
        }
    }

    fn sample_cwnds(&mut self, now: SimTime) {
        for h in 0..self.tb.world.host_count() {
            let host = HostId::from_index(h as u32);
            let site = self.tb.world.pop_of(host).index();
            for s in self.tb.world.host_conn_stats(host) {
                // The paper's filter: only connections created after
                // Riptide was started (t = 0 here), in ESTAB state.
                if s.state != ConnState::Established {
                    continue;
                }
                self.cwnd_samples.push(CwndSample {
                    site,
                    dst_site: self.tb.world.pop_of(s.dst).index(),
                    cwnd: s.cwnd,
                    at: now,
                });
            }
        }
    }

    fn fire_due_probes(&mut self, now: SimTime) {
        for idx in 0..self.probe_schedule.len() {
            let (due, host, site) = self.probe_schedule[idx];
            if due > now {
                continue;
            }
            self.probe_one_machine(host, site);
            self.probe_schedule[idx].0 = now + self.cfg.probes.interval;
        }
    }

    fn probe_one_machine(&mut self, host: HostId, site: usize) {
        let machine_slot = self
            .tb
            .machines(site)
            .iter()
            .position(|&h| h == host)
            .expect("host belongs to its site");
        let sizes = self.cfg.probes.sizes.clone();
        for dst_site in 0..self.tb.pop_count() {
            if dst_site == site {
                continue;
            }
            let targets = self.tb.machines(dst_site);
            let target = targets[machine_slot % targets.len()];
            for &size in &sizes {
                // §II-A churn: some idle connections have been closed by
                // application behaviour since the last round.
                if self.rng.chance(self.cfg.probes.churn) {
                    if let Some(cid) = self.tb.world.find_idle_connection(host, target) {
                        self.tb.world.close_connection(cid);
                    }
                }
                let tid = match self.tb.world.find_idle_connection(host, target) {
                    Some(cid) => self.tb.world.start_transfer(cid, size),
                    None => self.tb.world.open_and_transfer(host, target, size).1,
                };
                self.probe_tags.insert(tid, (site, dst_site, size));
            }
        }
    }

    fn fire_due_organic(&mut self, now: SimTime) {
        for idx in 0..self.organic_schedule.len() {
            let (due, src_site, dst_site) = self.organic_schedule[idx];
            if due > now {
                continue;
            }
            let src_hosts = self.tb.machines(src_site);
            let dst_hosts = self.tb.machines(dst_site);
            let src = src_hosts[self.rng.below(src_hosts.len())];
            let dst = dst_hosts[self.rng.below(dst_hosts.len())];
            let bytes = self.cfg.organic.sizes.sample(&mut self.rng);
            match self.tb.world.find_idle_connection(src, dst) {
                Some(cid) => {
                    self.tb.world.start_transfer(cid, bytes);
                }
                None => {
                    self.tb.world.open_and_transfer(src, dst, bytes);
                }
            }
            self.organic_started += 1;
            let rate = self.cfg.organic.rate_at(now.as_secs_f64()).max(1e-6);
            let gap = self
                .rng
                .exp_duration(SimDuration::from_secs_f64(1.0 / rate));
            self.organic_schedule[idx].0 = now + gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(riptide: bool, seed: u64) -> CdnSimConfig {
        CdnSimConfig {
            testbed: TestbedConfig::tiny(3, 2, seed),
            riptide: riptide.then(RiptideConfig::deployment),
            probes: ProbeConfig {
                interval: SimDuration::from_secs(60),
                ..ProbeConfig::default()
            },
            organic: OrganicConfig::none(),
            cwnd_sample_interval: SimDuration::from_secs(30),
            probe_senders: None,
        }
    }

    #[test]
    fn probes_complete_in_both_modes() {
        for riptide in [false, true] {
            let mut sim = CdnSim::new(tiny_cfg(riptide, 11));
            sim.run_for(SimDuration::from_secs(300));
            // 3 sites × 2 machines × 2 destinations × 3 sizes per round,
            // several rounds in 300 s.
            let n = sim.probe_outcomes().len();
            assert!(n >= 3 * 2 * 2 * 3 * 3, "riptide={riptide}: {n} probes");
            assert!(
                sim.probe_outcomes()
                    .iter()
                    .all(|p| p.completion > SimDuration::ZERO && p.src_site != p.dst_site),
                "well-formed outcomes"
            );
        }
    }

    #[test]
    fn agents_learn_windows_for_probed_destinations() {
        let mut sim = CdnSim::new(tiny_cfg(true, 13));
        sim.run_for(SimDuration::from_secs(200));
        let host = sim.testbed().machines(0)[0];
        let dst_host = sim.testbed().machines(1)[0];
        let dst_addr = sim.testbed().world.host_addr(dst_host);
        let learned = sim.learned_window(host, dst_addr);
        assert!(learned.is_some(), "agent learned a window after probing");
        let w = learned.unwrap();
        assert!(
            (10..=100).contains(&w),
            "learned window {w} in [c_min, c_max]"
        );
        let stats = sim.agent_stats_total();
        assert!(stats.ticks > 0 && stats.route_updates > 0);
    }

    #[test]
    fn control_run_has_no_agents() {
        let mut sim = CdnSim::new(tiny_cfg(false, 13));
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(sim.agent_stats_total(), AgentStats::default());
        assert!(!sim.riptide_enabled());
        assert!(!sim.probe_outcomes().is_empty());
    }

    #[test]
    fn cwnd_samples_accumulate() {
        let mut sim = CdnSim::new(tiny_cfg(true, 17));
        sim.run_for(SimDuration::from_secs(200));
        assert!(!sim.cwnd_samples().is_empty());
        assert!(sim.cwnd_samples().iter().all(|s| s.cwnd >= 1));
    }

    #[test]
    fn organic_traffic_flows() {
        let mut cfg = tiny_cfg(true, 19);
        cfg.organic = OrganicConfig::among(vec![0, 1], 0.5);
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(300));
        assert!(
            sim.organic_started() > 30,
            "started {}",
            sim.organic_started()
        );
        assert!(
            sim.organic_completed() > 20,
            "completed {}",
            sim.organic_completed()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut sim = CdnSim::new(tiny_cfg(true, seed));
            sim.run_for(SimDuration::from_secs(180));
            sim.probe_outcomes()
                .iter()
                .map(|p| (p.src_site, p.dst_site, p.size, p.completion.as_nanos()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(23), run(23));
        assert_ne!(run(23), run(24));
    }

    #[test]
    fn probe_senders_can_be_restricted() {
        let mut cfg = tiny_cfg(false, 29);
        cfg.probe_senders = Some(vec![0]);
        let mut sim = CdnSim::new(cfg);
        sim.run_for(SimDuration::from_secs(150));
        assert!(sim.probe_outcomes().iter().all(|p| p.src_site == 0));
    }

    #[test]
    fn riptide_probes_eventually_start_with_learned_windows() {
        let mut sim = CdnSim::new(tiny_cfg(true, 31));
        sim.run_for(SimDuration::from_secs(600));
        let boosted = sim
            .probe_outcomes()
            .iter()
            .filter(|p| p.initial_cwnd > 10)
            .count();
        assert!(
            boosted > 0,
            "some later probes open with Riptide-set windows"
        );
    }
}
