//! The 34-PoP global footprint (Table II) and geography-derived RTTs.
//!
//! The paper's CDN spans 34 PoPs: 10 in Europe, 11 in North America, 1 in
//! South America, 9 in Asia and 3 in Oceania (Table II), with a median
//! inter-PoP RTT above 125 ms (Fig. 5). We reconstruct that footprint
//! from plausible metro locations per continent and synthesize RTTs from
//! great-circle distances: light in fibre travels ≈ 200 000 km/s, real
//! paths detour (stretch factor), and every path carries some fixed
//! equipment latency. The constants are calibrated so the all-pairs RTT
//! CDF matches Fig. 5's shape (median ≈ 125–140 ms, long tail past
//! 300 ms).

use riptide_simnet::time::SimDuration;

/// Continent labels, as in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    /// Europe (10 PoPs).
    Europe,
    /// North America (11 PoPs).
    NorthAmerica,
    /// South America (1 PoP).
    SouthAmerica,
    /// Asia (9 PoPs).
    Asia,
    /// Oceania (3 PoPs).
    Oceania,
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::SouthAmerica => "South America",
            Continent::Asia => "Asia",
            Continent::Oceania => "Oceania",
        };
        f.write_str(s)
    }
}

/// One PoP site: metro name, continent, and coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopSite {
    /// Metro identifier.
    pub name: &'static str,
    /// Continent (Table II grouping).
    pub continent: Continent,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// The 34 PoP sites, matching Table II's per-continent counts.
pub const POP_SITES: [PopSite; 34] = [
    // Europe — 10
    PopSite {
        name: "London",
        continent: Continent::Europe,
        lat: 51.51,
        lon: -0.13,
    },
    PopSite {
        name: "Frankfurt",
        continent: Continent::Europe,
        lat: 50.11,
        lon: 8.68,
    },
    PopSite {
        name: "Paris",
        continent: Continent::Europe,
        lat: 48.86,
        lon: 2.35,
    },
    PopSite {
        name: "Amsterdam",
        continent: Continent::Europe,
        lat: 52.37,
        lon: 4.90,
    },
    PopSite {
        name: "Madrid",
        continent: Continent::Europe,
        lat: 40.42,
        lon: -3.70,
    },
    PopSite {
        name: "Milan",
        continent: Continent::Europe,
        lat: 45.46,
        lon: 9.19,
    },
    PopSite {
        name: "Stockholm",
        continent: Continent::Europe,
        lat: 59.33,
        lon: 18.07,
    },
    PopSite {
        name: "Warsaw",
        continent: Continent::Europe,
        lat: 52.23,
        lon: 21.01,
    },
    PopSite {
        name: "Vienna",
        continent: Continent::Europe,
        lat: 48.21,
        lon: 16.37,
    },
    PopSite {
        name: "Dublin",
        continent: Continent::Europe,
        lat: 53.35,
        lon: -6.26,
    },
    // North America — 11
    PopSite {
        name: "NewYork",
        continent: Continent::NorthAmerica,
        lat: 40.71,
        lon: -74.01,
    },
    PopSite {
        name: "Ashburn",
        continent: Continent::NorthAmerica,
        lat: 39.04,
        lon: -77.49,
    },
    PopSite {
        name: "Atlanta",
        continent: Continent::NorthAmerica,
        lat: 33.75,
        lon: -84.39,
    },
    PopSite {
        name: "Miami",
        continent: Continent::NorthAmerica,
        lat: 25.76,
        lon: -80.19,
    },
    PopSite {
        name: "Chicago",
        continent: Continent::NorthAmerica,
        lat: 41.88,
        lon: -87.63,
    },
    PopSite {
        name: "Dallas",
        continent: Continent::NorthAmerica,
        lat: 32.78,
        lon: -96.80,
    },
    PopSite {
        name: "Denver",
        continent: Continent::NorthAmerica,
        lat: 39.74,
        lon: -104.99,
    },
    PopSite {
        name: "Seattle",
        continent: Continent::NorthAmerica,
        lat: 47.61,
        lon: -122.33,
    },
    PopSite {
        name: "SanJose",
        continent: Continent::NorthAmerica,
        lat: 37.34,
        lon: -121.89,
    },
    PopSite {
        name: "LosAngeles",
        continent: Continent::NorthAmerica,
        lat: 34.05,
        lon: -118.24,
    },
    PopSite {
        name: "Toronto",
        continent: Continent::NorthAmerica,
        lat: 43.65,
        lon: -79.38,
    },
    // South America — 1
    PopSite {
        name: "SaoPaulo",
        continent: Continent::SouthAmerica,
        lat: -23.55,
        lon: -46.63,
    },
    // Asia — 9
    PopSite {
        name: "Tokyo",
        continent: Continent::Asia,
        lat: 35.68,
        lon: 139.69,
    },
    PopSite {
        name: "Osaka",
        continent: Continent::Asia,
        lat: 34.69,
        lon: 135.50,
    },
    PopSite {
        name: "Seoul",
        continent: Continent::Asia,
        lat: 37.57,
        lon: 126.98,
    },
    PopSite {
        name: "HongKong",
        continent: Continent::Asia,
        lat: 22.32,
        lon: 114.17,
    },
    PopSite {
        name: "Taipei",
        continent: Continent::Asia,
        lat: 25.03,
        lon: 121.57,
    },
    PopSite {
        name: "Singapore",
        continent: Continent::Asia,
        lat: 1.35,
        lon: 103.82,
    },
    PopSite {
        name: "KualaLumpur",
        continent: Continent::Asia,
        lat: 3.139,
        lon: 101.69,
    },
    PopSite {
        name: "Mumbai",
        continent: Continent::Asia,
        lat: 19.08,
        lon: 72.88,
    },
    PopSite {
        name: "Delhi",
        continent: Continent::Asia,
        lat: 28.61,
        lon: 77.21,
    },
    // Oceania — 3
    PopSite {
        name: "Sydney",
        continent: Continent::Oceania,
        lat: -33.87,
        lon: 151.21,
    },
    PopSite {
        name: "Melbourne",
        continent: Continent::Oceania,
        lat: -37.81,
        lon: 144.96,
    },
    PopSite {
        name: "Auckland",
        continent: Continent::Oceania,
        lat: -36.85,
        lon: 174.76,
    },
];

/// Speed of light in fibre, km per second.
const FIBRE_KM_PER_S: f64 = 200_000.0;
/// Multiplier for real paths detouring relative to the great circle.
const PATH_STRETCH: f64 = 1.6;
/// Fixed per-path equipment/peering latency added to every RTT.
const BASE_RTT_MS: f64 = 6.0;

/// Great-circle distance between two sites, in kilometres (haversine).
pub fn great_circle_km(a: &PopSite, b: &PopSite) -> f64 {
    const R: f64 = 6371.0;
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * R * h.sqrt().asin()
}

/// The synthesized round-trip time between two sites.
pub fn rtt_between(a: &PopSite, b: &PopSite) -> SimDuration {
    let km = great_circle_km(a, b);
    let rtt_ms = BASE_RTT_MS + 2.0 * km * PATH_STRETCH / FIBRE_KM_PER_S * 1000.0;
    SimDuration::from_secs_f64(rtt_ms / 1000.0)
}

/// Table II: PoP count per continent.
pub fn continent_counts() -> Vec<(Continent, usize)> {
    let mut counts = [
        (Continent::Europe, 0),
        (Continent::NorthAmerica, 0),
        (Continent::SouthAmerica, 0),
        (Continent::Asia, 0),
        (Continent::Oceania, 0),
    ];
    for site in &POP_SITES {
        let slot = counts
            .iter_mut()
            .find(|(c, _)| *c == site.continent)
            .expect("all continents enumerated");
        slot.1 += 1;
    }
    counts.to_vec()
}

/// All ordered-pair RTTs (Fig. 5's population), sorted ascending.
pub fn all_pair_rtts() -> Vec<SimDuration> {
    let mut rtts = Vec::new();
    for (i, a) in POP_SITES.iter().enumerate() {
        for (j, b) in POP_SITES.iter().enumerate() {
            if i < j {
                rtts.push(rtt_between(a, b));
            }
        }
    }
    rtts.sort_unstable();
    rtts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        let counts = continent_counts();
        let get = |c: Continent| counts.iter().find(|(k, _)| *k == c).unwrap().1;
        assert_eq!(get(Continent::Europe), 10);
        assert_eq!(get(Continent::NorthAmerica), 11);
        assert_eq!(get(Continent::SouthAmerica), 1);
        assert_eq!(get(Continent::Asia), 9);
        assert_eq!(get(Continent::Oceania), 3);
        assert_eq!(POP_SITES.len(), 34);
    }

    #[test]
    fn known_distances_are_sane() {
        let london = &POP_SITES[0];
        let ny = &POP_SITES[10];
        let km = great_circle_km(london, ny);
        assert!((5400.0..5800.0).contains(&km), "London–NY {km} km");
        let tokyo = POP_SITES.iter().find(|p| p.name == "Tokyo").unwrap();
        let km = great_circle_km(london, tokyo);
        assert!((9300.0..9900.0).contains(&km), "London–Tokyo {km} km");
    }

    #[test]
    fn rtt_is_symmetric_and_positive() {
        for a in POP_SITES.iter().take(5) {
            for b in POP_SITES.iter().take(5) {
                assert_eq!(rtt_between(a, b), rtt_between(b, a));
                if a.name != b.name {
                    assert!(rtt_between(a, b) > SimDuration::from_millis(5));
                }
            }
        }
    }

    #[test]
    fn fig5_median_rtt_exceeds_125ms() {
        // Fig. 5: "50% of links have an RTT > 125 ms".
        let rtts = all_pair_rtts();
        let median = rtts[rtts.len() / 2];
        assert!(
            median > SimDuration::from_millis(115) && median < SimDuration::from_millis(180),
            "median RTT {median} out of Fig. 5 band"
        );
    }

    #[test]
    fn fig5_tail_reaches_intercontinental_extremes() {
        let rtts = all_pair_rtts();
        let max = *rtts.last().unwrap();
        assert!(
            max > SimDuration::from_millis(250),
            "antipodal pairs exceed 250 ms, got {max}"
        );
        let min = rtts[0];
        assert!(
            min < SimDuration::from_millis(25),
            "nearby metros stay cheap, got {min}"
        );
    }

    #[test]
    fn rtt_buckets_are_all_populated() {
        // Figs. 12–14 group destinations into <50, 51–100, 101–150 and
        // >150 ms buckets relative to a sender; each bucket must be
        // non-empty from both a European and a North American PoP.
        for sender_idx in [0usize, 10] {
            let sender = &POP_SITES[sender_idx];
            let mut buckets = [0usize; 4];
            for (i, other) in POP_SITES.iter().enumerate() {
                if i == sender_idx {
                    continue;
                }
                let ms = rtt_between(sender, other).as_millis_f64();
                let b = if ms <= 50.0 {
                    0
                } else if ms <= 100.0 {
                    1
                } else if ms <= 150.0 {
                    2
                } else {
                    3
                };
                buckets[b] += 1;
            }
            assert!(
                buckets.iter().all(|&n| n > 0),
                "{}: empty RTT bucket in {buckets:?}",
                sender.name
            );
        }
    }
}
