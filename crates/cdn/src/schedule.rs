//! Work-stealing shard scheduler for the experiment engine.
//!
//! [`RunPlan::run_with_threads`](crate::engine::RunPlan::run_with_threads)
//! used to hand workers shards in plan enumeration order through one
//! shared cursor. That is already a
//! greedy list schedule, but plan order is *scenario-major*: the long
//! shards of one arm sit next to each other, so the pool routinely
//! drains to a single worker grinding the last long shard while the
//! rest idle — the classic LPT tail problem.
//!
//! This module replaces the cursor with a two-level scheduler:
//!
//! 1. **LPT seeding** — every shard gets a deterministic cost estimate
//!    ([`estimated_events`], proportional to simulated time × traffic
//!    breadth). Shards are dealt to per-worker deques in descending
//!    cost order ([`lpt_order`]), each to the currently least-loaded
//!    worker, so the longest shards start first and the short ones pad
//!    the tail.
//! 2. **Stealing** — a worker that drains its own deque pops work from
//!    the *back* of another worker's deque (the victim's cheapest
//!    remaining shard), scanning from a seed-derived offset. No worker
//!    idles while any shard is unstarted, whatever the estimate error.
//!
//! ## Why digests cannot drift
//!
//! The scheduler only decides *which worker* runs a shard and *when* —
//! never what the shard computes. Each shard is sealed: its RNG stream
//! is forked from the plan seed at enumeration time, and its result is
//! written into a slot indexed by plan position. Reports merge slots in
//! plan order, so the digest is a pure function of the plan, invariant
//! under thread count, steal order, and the victim-selection seed.
//! `tests/scheduler.rs` property-tests exactly that, and
//! `tests/digest_golden.rs` pins the rendered bytes.

use std::collections::VecDeque;
use std::sync::Mutex;

use riptide_simnet::rng::DetRng;

use crate::engine::{ShardSpec, ShardWork};

/// Deterministic cost estimate for one shard, in arbitrary
/// events-proportional units: simulated seconds × (machines generating
/// organic traffic + probing senders). Only *relative* order matters —
/// LPT uses it to start the slowest shards first.
pub fn estimated_events(spec: &ShardSpec) -> u64 {
    let secs = spec.scale.total().as_secs_f64().round() as u64;
    let machines = (spec.scale.sites * spec.scale.machines_per_pop) as u64;
    let senders = match &spec.work {
        ShardWork::ProbeArm { senders, .. }
        | ShardWork::ChaosArm { senders, .. }
        | ShardWork::GuardrailArm { senders, .. }
        | ShardWork::ScenarioArm { senders, .. }
        | ShardWork::ColdstartArm { senders, .. } => senders.len() as u64,
        ShardWork::CwndDistribution { .. }
        | ShardWork::TrafficProfile
        | ShardWork::Convergence { .. } => 0,
    };
    secs.saturating_mul(machines + senders).max(1)
}

/// Indices of `costs` in LPT order: descending estimated cost, ties
/// broken by ascending index. The tie-break makes the schedule a pure
/// function of the plan — equal-cost shards (the common case inside
/// one experiment arm) always start in enumeration order.
pub fn lpt_order(costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    order
}

/// A shared pool of shard indices, LPT-seeded across per-worker deques
/// with back-of-deque stealing.
pub struct StealPool {
    /// One deque of shard indices per worker. Owners pop the front
    /// (their largest remaining shard), thieves pop the back.
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealPool {
    /// Deals `costs.len()` shards to `workers` deques: LPT order, each
    /// shard to the deque with the smallest estimated load so far
    /// (ties to the lowest worker index). Deterministic for a given
    /// `(costs, workers)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    pub fn new(costs: &[u64], workers: usize) -> StealPool {
        assert!(workers >= 1, "need at least one worker");
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut loads = vec![0u64; workers];
        for i in lpt_order(costs) {
            let lightest = (0..workers)
                .min_by_key(|&w| (loads[w], w))
                .expect("at least one worker");
            loads[lightest] = loads[lightest].saturating_add(costs[i]);
            queues[lightest].push_back(i);
        }
        StealPool {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The deque a worker was seeded with, for tests and introspection.
    pub fn seeded_queue(&self, worker: usize) -> Vec<usize> {
        self.queues[worker]
            .lock()
            .expect("queue lock")
            .iter()
            .copied()
            .collect()
    }

    /// The next shard index for `worker`: its own front if any, else a
    /// steal from the back of another worker's deque. Victims are
    /// scanned starting at an offset drawn from `steal_rng`, so tests
    /// can force adversarial interleavings; every shard index is
    /// returned exactly once across all workers. `None` means the pool
    /// is drained (some shards may still be *running* on other
    /// workers, but none are unstarted).
    pub fn next(&self, worker: usize, steal_rng: &mut DetRng) -> Option<usize> {
        if let Some(i) = self.queues[worker].lock().expect("queue lock").pop_front() {
            return Some(i);
        }
        let n = self.queues.len();
        let start = steal_rng.below(n.max(1));
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == worker {
                continue;
            }
            if let Some(i) = self.queues[victim].lock().expect("queue lock").pop_back() {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_order_is_descending_with_index_tiebreak() {
        assert_eq!(lpt_order(&[5, 9, 9, 1, 9]), vec![1, 2, 4, 0, 3]);
        assert_eq!(lpt_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn lpt_order_is_deterministic_for_equal_costs() {
        // Equal-cost shards — every shard of one probe arm — must
        // schedule in enumeration order, every time.
        let costs = vec![7u64; 16];
        let first = lpt_order(&costs);
        assert_eq!(first, (0..16).collect::<Vec<_>>());
        for _ in 0..10 {
            assert_eq!(lpt_order(&costs), first);
        }
    }

    #[test]
    fn pool_seeds_longest_first_and_balances_load() {
        // Costs 8,7,2,1 on 2 workers: LPT gives w0={8,1}, w1={7,2}.
        let pool = StealPool::new(&[1, 2, 7, 8], 2);
        assert_eq!(pool.seeded_queue(0), vec![3, 0]);
        assert_eq!(pool.seeded_queue(1), vec![2, 1]);
    }

    #[test]
    fn every_index_is_handed_out_exactly_once() {
        let costs: Vec<u64> = (0..23).map(|i| (i * 13 % 7) + 1).collect();
        for workers in [1usize, 2, 3, 8] {
            for seed in [0u64, 1, 99] {
                let pool = StealPool::new(&costs, workers);
                let mut seen = Vec::new();
                let mut rngs: Vec<DetRng> = (0..workers)
                    .map(|w| DetRng::for_stream(seed, w as u64))
                    .collect();
                // Round-robin the workers so steals actually happen.
                loop {
                    let mut progressed = false;
                    for (w, rng) in rngs.iter_mut().enumerate() {
                        if let Some(i) = pool.next(w, rng) {
                            seen.push(i);
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                seen.sort_unstable();
                assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
            }
        }
    }
}
