//! The scenario matrix: named (topology × workload × AQM × CC)
//! combinations that stress the learning policies differently.
//!
//! The §IV evaluation runs one network regime — a clean drop-tail mesh
//! with light Poisson traffic — and on it every reasonable policy looks
//! alike (ROADMAP item 4: the ablation frontier is flat). Each
//! [`ScenarioSpec`] perturbs one axis the paper holds fixed:
//!
//! | Scenario | What changes | Why it separates policies |
//! |---|---|---|
//! | `baseline` | nothing | the control regime; matches `probe_comparison` bit for bit |
//! | `red-drop` | RED queues, drop mode | early random drops inflate `retrans` before queues fill |
//! | `red-ecn` | RED queues, ECN marking + ECN hosts | congestion signalled *without* retransmits — loss-utility's `retrans` input and the wire diverge |
//! | `lossy-edge` | 40 Mbit/s / 2%-loss last mile into every probe destination | random loss punishes aggressive windows; loss-aware policies should win |
//! | `flash-crowd` | diurnal organic load with 8× bursts | bursts of fresh connections arrive exactly when queues are hot |
//! | `paced` | BBR-like paced senders | window observations no longer track queue occupancy the way AIMD's do |
//!
//! [`crate::engine::RunPlan::scenario_matrix`] fans the catalog out
//! across (scenario × policy arm × sender × replicate) with the same
//! seed-pairing discipline as every other plan, and the `scenarios`
//! bench reports per-scenario policy rankings.

use riptide::config::RiptideConfig;
use riptide_simnet::config::CcAlgorithm;
use riptide_simnet::fault::FaultPlan;
use riptide_simnet::link::AqmPolicy;
use riptide_simnet::time::SimDuration;

use crate::experiment::{probe_sender_sites, probe_sim_config, ExperimentScale, StackTweaks};
use crate::sim::CdnSimConfig;
use crate::topology::LastMileProfile;
use crate::workload::FlashCrowd;

/// Workload-shape overrides one scenario applies to the organic layer.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadShape {
    /// Mean organic flow arrivals per second per busy pair.
    pub flows_per_sec: f64,
    /// Diurnal modulation amplitude (see
    /// [`crate::workload::OrganicConfig::diurnal_amplitude`]).
    pub diurnal_amplitude: f64,
    /// Flash-crowd bursts layered on the diurnal curve.
    pub flash_crowds: Vec<FlashCrowd>,
}

impl Default for WorkloadShape {
    /// The probe-experiment default: constant 0.2 flows/s, no bursts.
    fn default() -> Self {
        WorkloadShape {
            flows_per_sec: 0.2,
            diurnal_amplitude: 0.0,
            flash_crowds: Vec::new(),
        }
    }
}

/// One named cell of the scenario matrix: a topology overlay, a
/// workload shape, a queue discipline and a congestion controller.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Short name used in shard labels and bench output.
    pub name: &'static str,
    /// Queue discipline on every inter-PoP path.
    pub aqm: AqmPolicy,
    /// Congestion-control algorithm on every host.
    pub cc: CcAlgorithm,
    /// Whether hosts negotiate ECN (only meaningful with a marking AQM).
    pub ecn: bool,
    /// Inter-PoP queue-depth override in bytes (`None` keeps the
    /// testbed default). The RED scenarios shrink this so the average
    /// queue can actually cross the RED thresholds at probe scale.
    pub queue_bytes: Option<u64>,
    /// Last-mile impairment overlay, if any.
    pub last_mile: Option<LastMileProfile>,
    /// Organic-traffic shape.
    pub workload: WorkloadShape,
    /// Fault overlay ([`FaultPlan::none`] — the catalog default —
    /// leaves the chaos layer off and the run digest-neutral).
    pub faults: FaultPlan,
}

impl ScenarioSpec {
    /// The unmodified probe-experiment regime.
    pub fn baseline() -> Self {
        ScenarioSpec {
            name: "baseline",
            aqm: AqmPolicy::DropTail,
            cc: CcAlgorithm::Cubic,
            ecn: false,
            queue_bytes: None,
            last_mile: None,
            workload: WorkloadShape::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Queue depth the RED scenarios use: shallow enough (48 KiB ≈ 33
    /// segments, RED `min_th` at 12 KiB) that probe bursts and organic
    /// load push the EWMA queue into the marking band. On the default
    /// 384 KiB queues the 96 KiB `min_th` is never reached at probe
    /// scale and RED degenerates to drop-tail.
    const RED_QUEUE_BYTES: u64 = 48 * 1024;

    /// Organic load in the RED scenarios: heavy enough to hold a
    /// standing queue at the bottleneck so RED has something to react
    /// to, light enough that probes still complete.
    const RED_FLOWS_PER_SEC: f64 = 1.0;

    /// RED on every path in classic drop mode: early random drops
    /// inflate `retrans` before the queue is anywhere near full.
    pub fn red_drop() -> Self {
        ScenarioSpec {
            name: "red-drop",
            aqm: AqmPolicy::red_for_queue(Self::RED_QUEUE_BYTES, false),
            queue_bytes: Some(Self::RED_QUEUE_BYTES),
            workload: WorkloadShape {
                flows_per_sec: Self::RED_FLOWS_PER_SEC,
                ..WorkloadShape::default()
            },
            ..ScenarioSpec::baseline()
        }
    }

    /// RED in ECN-marking mode with ECN-capable hosts: congestion is
    /// signalled by marks the sender reacts to without retransmitting,
    /// so a policy reading `retrans` alone goes blind.
    pub fn red_ecn() -> Self {
        ScenarioSpec {
            name: "red-ecn",
            aqm: AqmPolicy::red_for_queue(Self::RED_QUEUE_BYTES, true),
            ecn: true,
            queue_bytes: Some(Self::RED_QUEUE_BYTES),
            workload: WorkloadShape {
                flows_per_sec: Self::RED_FLOWS_PER_SEC,
                ..WorkloadShape::default()
            },
            ..ScenarioSpec::baseline()
        }
    }

    /// A consumer-grade lossy last mile in front of every non-sender
    /// site: 40 Mbit/s, shallow buffers, 2% random loss.
    pub fn lossy_edge(scale: &ExperimentScale) -> Self {
        let senders = probe_sender_sites(scale);
        let edges: Vec<usize> = (0..scale.sites).filter(|i| !senders.contains(i)).collect();
        ScenarioSpec {
            name: "lossy-edge",
            last_mile: Some(LastMileProfile::lossy(edges)),
            ..ScenarioSpec::baseline()
        }
    }

    /// Diurnal organic load with two 8× flash-crowd bursts, placed at
    /// 30% and 65% of the run so at least one lands after warm-up at
    /// every scale.
    pub fn flash_crowd(scale: &ExperimentScale) -> Self {
        let total = scale.total().as_secs_f64();
        let burst = |frac: f64| FlashCrowd {
            start: SimDuration::from_secs_f64(total * frac),
            duration: SimDuration::from_secs_f64((total * 0.1).max(1.0)),
            multiplier: 8.0,
        };
        ScenarioSpec {
            name: "flash-crowd",
            workload: WorkloadShape {
                flows_per_sec: 0.5,
                diurnal_amplitude: 0.5,
                flash_crowds: vec![burst(0.30), burst(0.65)],
            },
            ..ScenarioSpec::baseline()
        }
    }

    /// Every host runs the pacing-based controller instead of CUBIC.
    pub fn paced() -> Self {
        ScenarioSpec {
            name: "paced",
            cc: CcAlgorithm::Paced,
            ..ScenarioSpec::baseline()
        }
    }
}

/// The full catalog, baseline first. Order is part of the scenario
/// matrix's digest contract: scenario indices in
/// [`crate::engine::RunPlan::scenario_matrix`] follow this order.
pub fn scenario_catalog(scale: &ExperimentScale) -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::baseline(),
        ScenarioSpec::red_drop(),
        ScenarioSpec::red_ecn(),
        ScenarioSpec::lossy_edge(scale),
        ScenarioSpec::flash_crowd(scale),
        ScenarioSpec::paced(),
    ]
}

/// The simulation configuration for one scenario arm: the §IV-B2 probe
/// setup with the scenario's topology, workload, AQM and CC overlaid.
/// With [`ScenarioSpec::baseline`] the result is identical to
/// [`probe_sim_config`]'s, so the baseline scenario reproduces the
/// probe-comparison arms bit for bit.
pub fn scenario_sim_config(
    scale: &ExperimentScale,
    riptide: Option<RiptideConfig>,
    senders: Vec<usize>,
    spec: &ScenarioSpec,
) -> CdnSimConfig {
    let mut cfg = probe_sim_config(scale, riptide, StackTweaks::default(), senders);
    cfg.testbed.aqm = spec.aqm;
    cfg.testbed.tcp.cc = spec.cc;
    cfg.testbed.tcp.ecn = spec.ecn;
    if let Some(q) = spec.queue_bytes {
        cfg.testbed.queue_bytes = q;
    }
    cfg.testbed.last_mile = spec.last_mile.clone();
    cfg.organic.flows_per_sec = spec.workload.flows_per_sec;
    cfg.organic.diurnal_amplitude = spec.workload.diurnal_amplitude;
    cfg.organic.flash_crowds = spec.workload.flash_crowds.clone();
    cfg.faults = spec.faults.clone();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_baseline_first() {
        let scale = ExperimentScale::test();
        let catalog = scenario_catalog(&scale);
        assert_eq!(catalog[0].name, "baseline");
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "duplicate scenario names");
    }

    #[test]
    fn baseline_matches_probe_sim_config() {
        let scale = ExperimentScale::test();
        let senders = probe_sender_sites(&scale);
        let base = probe_sim_config(&scale, None, StackTweaks::default(), senders.clone());
        let scen = scenario_sim_config(&scale, None, senders, &ScenarioSpec::baseline());
        assert_eq!(scen.testbed.aqm, base.testbed.aqm);
        assert_eq!(scen.testbed.tcp, base.testbed.tcp);
        assert_eq!(scen.testbed.last_mile, base.testbed.last_mile);
        assert_eq!(scen.organic, base.organic);
    }

    #[test]
    fn red_scenarios_use_marking_only_with_ecn_hosts() {
        let drop = ScenarioSpec::red_drop();
        let mark = ScenarioSpec::red_ecn();
        assert!(!drop.ecn);
        assert!(mark.ecn);
        match (drop.aqm, mark.aqm) {
            (AqmPolicy::Red { ecn: d, .. }, AqmPolicy::Red { ecn: m, .. }) => {
                assert!(!d && m, "drop mode must not mark; ecn mode must");
            }
            other => panic!("both RED scenarios must use RED, got {other:?}"),
        }
    }

    #[test]
    fn lossy_edge_degrades_only_non_sender_sites() {
        let scale = ExperimentScale::test();
        let spec = ScenarioSpec::lossy_edge(&scale);
        let lm = spec.last_mile.expect("lossy-edge sets a last mile");
        let senders = probe_sender_sites(&scale);
        for s in &senders {
            assert!(!lm.sites.contains(s), "sender {s} must stay clean");
        }
        assert_eq!(lm.sites.len(), scale.sites - senders.len());
        assert!(lm.loss > 0.0 && lm.rate_bps < TestbedDefaultRate::BPS);
    }

    /// Local alias so the assertion reads against the documented default.
    struct TestbedDefaultRate;
    impl TestbedDefaultRate {
        const BPS: u64 = 500_000_000;
    }

    #[test]
    fn flash_crowd_bursts_land_after_warmup() {
        for scale in [ExperimentScale::test(), ExperimentScale::quick()] {
            let spec = ScenarioSpec::flash_crowd(&scale);
            let crowds = &spec.workload.flash_crowds;
            assert_eq!(crowds.len(), 2);
            for c in crowds {
                c.validate().unwrap();
            }
            let after_warmup = crowds
                .iter()
                .filter(|c| c.start.as_secs_f64() >= scale.warmup.as_secs_f64())
                .count();
            assert!(after_warmup >= 1, "no burst in the measured window");
        }
    }

    #[test]
    fn scenario_overlays_reach_the_sim_config() {
        let scale = ExperimentScale::test();
        let senders = probe_sender_sites(&scale);
        let cfg = scenario_sim_config(&scale, None, senders, &ScenarioSpec::red_ecn());
        assert!(matches!(cfg.testbed.aqm, AqmPolicy::Red { ecn: true, .. }));
        assert!(cfg.testbed.tcp.ecn);
        let cfg = scenario_sim_config(
            &scale,
            None,
            probe_sender_sites(&scale),
            &ScenarioSpec::paced(),
        );
        assert_eq!(cfg.testbed.tcp.cc, CcAlgorithm::Paced);
        let cfg = scenario_sim_config(
            &scale,
            None,
            probe_sender_sites(&scale),
            &ScenarioSpec::flash_crowd(&scale),
        );
        assert_eq!(cfg.organic.flash_crowds.len(), 2);
        assert_eq!(cfg.organic.diurnal_amplitude, 0.5);
    }
}
