//! Building a simulated World shaped like the paper's CDN.

use riptide_simnet::prelude::*;

use crate::geo::{rtt_between, PopSite, POP_SITES};

/// Which Fig. 12–14 distance group a destination falls into, relative to
/// a sending PoP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RttBucket {
    /// `< 50 ms` — "close destinations".
    Close,
    /// `51–100 ms` — "medium destinations".
    Medium,
    /// `101–150 ms` — "far destinations".
    Far,
    /// `> 150 ms` — "very far destinations".
    VeryFar,
}

impl RttBucket {
    /// Classifies a round-trip time.
    pub fn of(rtt: SimDuration) -> RttBucket {
        let ms = rtt.as_millis_f64();
        if ms <= 50.0 {
            RttBucket::Close
        } else if ms <= 100.0 {
            RttBucket::Medium
        } else if ms <= 150.0 {
            RttBucket::Far
        } else {
            RttBucket::VeryFar
        }
    }

    /// All buckets, nearest first.
    pub const ALL: [RttBucket; 4] = [
        RttBucket::Close,
        RttBucket::Medium,
        RttBucket::Far,
        RttBucket::VeryFar,
    ];
}

impl std::fmt::Display for RttBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RttBucket::Close => "<50ms",
            RttBucket::Medium => "51-100ms",
            RttBucket::Far => "101-150ms",
            RttBucket::VeryFar => ">150ms",
        };
        f.write_str(s)
    }
}

/// Parameters of the simulated CDN substrate.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// PoP sites to instantiate (defaults to all 34 of Table II; tests
    /// use subsets).
    pub sites: Vec<PopSite>,
    /// Machines per PoP.
    pub machines_per_pop: usize,
    /// TCP stack configuration shared by all hosts. The default disables
    /// `slow_start_after_idle`, matching the paper's premise that reused
    /// connections keep their learned window (§I: reuse "could avoid
    /// this overhead"); Riptide's value is then concentrated on *fresh*
    /// connections, which reproduces Fig. 15's flat lower percentiles.
    /// Flip it on for the ssai ablation.
    pub tcp: TcpConfig,
    /// Inter-PoP path serialization rate.
    pub rate_bps: u64,
    /// Inter-PoP path queue capacity.
    pub queue_bytes: u64,
    /// Random per-packet loss on every inter-PoP path.
    pub loss: f64,
    /// Per-packet jitter bound.
    pub jitter: SimDuration,
    /// Queue discipline on every inter-PoP path (drop-tail by default;
    /// scenarios switch it to RED, optionally in ECN-marking mode).
    pub aqm: AqmPolicy,
    /// Last-mile impairment overlay: when set, paths *into* the listed
    /// sites are degraded to the profile's rate/loss/queue — the "lossy
    /// last mile" the initial-window studies warn about. `None` leaves
    /// the clean inter-PoP mesh untouched.
    pub last_mile: Option<LastMileProfile>,
    /// Master RNG seed.
    pub seed: u64,
}

/// A degraded access-network profile applied to paths toward edge sites.
#[derive(Debug, Clone, PartialEq)]
pub struct LastMileProfile {
    /// Site indices whose *inbound* paths are degraded.
    pub sites: Vec<usize>,
    /// Serialization rate of the degraded leg.
    pub rate_bps: u64,
    /// Queue capacity of the degraded leg (shallow buffers).
    pub queue_bytes: u64,
    /// Random loss on the degraded leg.
    pub loss: f64,
    /// Extra jitter on the degraded leg.
    pub jitter: SimDuration,
}

impl LastMileProfile {
    /// A consumer-grade lossy profile for the given sites: 40 Mbit/s,
    /// 48 KiB of buffer, 2% random loss, 3 ms of jitter — the regime
    /// where an aggressive initial window genuinely hurts.
    pub fn lossy(sites: Vec<usize>) -> Self {
        LastMileProfile {
            sites,
            rate_bps: 40_000_000,
            queue_bytes: 48 * 1024,
            loss: 0.02,
            jitter: SimDuration::from_millis(3),
        }
    }
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            sites: POP_SITES.to_vec(),
            machines_per_pop: 3,
            tcp: TcpConfig {
                slow_start_after_idle: false,
                initial_rwnd: 1000,
                ..TcpConfig::default()
            },
            rate_bps: 500_000_000, // 500 Mbit/s per inter-PoP path
            queue_bytes: 384 * 1024,
            loss: 0.0003,
            jitter: SimDuration::from_micros(200),
            aqm: AqmPolicy::DropTail,
            last_mile: None,
            seed: 1,
        }
    }
}

impl TestbedConfig {
    /// A small topology for unit tests: the first `n` sites, `machines`
    /// hosts each.
    pub fn tiny(n: usize, machines: usize, seed: u64) -> Self {
        TestbedConfig {
            sites: POP_SITES[..n].to_vec(),
            machines_per_pop: machines,
            seed,
            ..TestbedConfig::default()
        }
    }
}

/// A built testbed: the world plus the site/PoP correspondence.
#[derive(Debug)]
pub struct Testbed {
    /// The simulation world.
    pub world: World,
    /// PoP ids, index-aligned with `sites`.
    pub pops: Vec<PopId>,
    /// The instantiated sites.
    pub sites: Vec<PopSite>,
}

impl Testbed {
    /// Builds the world: one PoP per site, `machines_per_pop` hosts each,
    /// and a full mesh of symmetric paths whose one-way delay is half the
    /// geo-derived RTT.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no sites, no machines,
    /// invalid TCP config).
    pub fn build(config: &TestbedConfig) -> Testbed {
        assert!(!config.sites.is_empty(), "need at least one site");
        assert!(
            config.machines_per_pop > 0,
            "need at least one machine per PoP"
        );
        let mut world = World::new(config.tcp.clone(), config.seed);
        let mut pops = Vec::with_capacity(config.sites.len());
        for _ in &config.sites {
            let pop = world.add_pop();
            for _ in 0..config.machines_per_pop {
                world.add_host(pop);
            }
            pops.push(pop);
        }
        for (i, a) in config.sites.iter().enumerate() {
            for (j, b) in config.sites.iter().enumerate() {
                if i == j {
                    continue;
                }
                let rtt = rtt_between(a, b);
                let degraded = config.last_mile.as_ref().filter(|lm| lm.sites.contains(&j));
                let path = match degraded {
                    // The inbound leg to an edge site takes the last-mile
                    // impairments on top of the geo delay.
                    Some(lm) => PathConfig {
                        delay: rtt / 2,
                        jitter: lm.jitter,
                        loss: lm.loss,
                        rate_bps: lm.rate_bps,
                        queue_bytes: lm.queue_bytes,
                        aqm: config.aqm,
                    },
                    None => PathConfig {
                        delay: rtt / 2,
                        jitter: config.jitter,
                        loss: config.loss,
                        rate_bps: config.rate_bps,
                        queue_bytes: config.queue_bytes,
                        aqm: config.aqm,
                    },
                };
                world.set_path(pops[i], pops[j], path);
            }
        }
        Testbed {
            world,
            pops,
            sites: config.sites.clone(),
        }
    }

    /// Number of PoPs.
    pub fn pop_count(&self) -> usize {
        self.pops.len()
    }

    /// The geo RTT between two PoPs (by site index).
    pub fn rtt(&self, a: usize, b: usize) -> SimDuration {
        rtt_between(&self.sites[a], &self.sites[b])
    }

    /// The Fig. 12–14 bucket of destination `b` as seen from sender `a`.
    pub fn bucket(&self, a: usize, b: usize) -> RttBucket {
        RttBucket::of(self.rtt(a, b))
    }

    /// The site index named `name`, if present.
    pub fn site_index(&self, name: &str) -> Option<usize> {
        self.sites.iter().position(|s| s.name == name)
    }

    /// The machines of site `i`.
    pub fn machines(&self, i: usize) -> &[HostId] {
        self.world.hosts_in_pop(self.pops[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_axis() {
        assert_eq!(
            RttBucket::of(SimDuration::from_millis(10)),
            RttBucket::Close
        );
        assert_eq!(
            RttBucket::of(SimDuration::from_millis(50)),
            RttBucket::Close
        );
        assert_eq!(
            RttBucket::of(SimDuration::from_millis(51)),
            RttBucket::Medium
        );
        assert_eq!(
            RttBucket::of(SimDuration::from_millis(100)),
            RttBucket::Medium
        );
        assert_eq!(RttBucket::of(SimDuration::from_millis(101)), RttBucket::Far);
        assert_eq!(RttBucket::of(SimDuration::from_millis(150)), RttBucket::Far);
        assert_eq!(
            RttBucket::of(SimDuration::from_millis(151)),
            RttBucket::VeryFar
        );
    }

    #[test]
    fn tiny_testbed_builds_and_moves_data() {
        let cfg = TestbedConfig::tiny(3, 2, 9);
        let mut tb = Testbed::build(&cfg);
        assert_eq!(tb.pop_count(), 3);
        assert_eq!(tb.machines(0).len(), 2);
        let src = tb.machines(0)[0];
        let dst = tb.machines(1)[0];
        tb.world.open_and_transfer(src, dst, 50_000);
        tb.world.run_until(SimTime::from_secs(10));
        assert_eq!(tb.world.drain_completed().len(), 1);
    }

    #[test]
    fn full_testbed_has_34_pops_and_full_mesh() {
        let cfg = TestbedConfig::default();
        let tb = Testbed::build(&cfg);
        assert_eq!(tb.pop_count(), 34);
        assert_eq!(tb.world.host_count(), 34 * 3);
        // Every ordered pair has a path.
        for i in 0..tb.pop_count() {
            for j in 0..tb.pop_count() {
                if i != j {
                    assert!(
                        tb.world.path_config(tb.pops[i], tb.pops[j]).is_some(),
                        "missing path {i}->{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn path_delay_matches_geo_rtt() {
        let cfg = TestbedConfig::tiny(4, 1, 5);
        let tb = Testbed::build(&cfg);
        let rtt = tb.rtt(0, 3);
        let path = tb.world.path_config(tb.pops[0], tb.pops[3]).unwrap();
        assert_eq!(path.delay, rtt / 2);
    }

    #[test]
    fn site_index_finds_named_pops() {
        let tb = Testbed::build(&TestbedConfig::default());
        assert_eq!(tb.site_index("London"), Some(0));
        assert!(tb.site_index("NewYork").is_some());
        assert_eq!(tb.site_index("Atlantis"), None);
    }

    #[test]
    fn default_tcp_is_cdn_tuned() {
        let cfg = TestbedConfig::default();
        assert!(
            !cfg.tcp.slow_start_after_idle,
            "CDN practice: reuse keeps the window"
        );
        assert_eq!(cfg.tcp.initial_cwnd, 10);
        cfg.tcp.validate().unwrap();
    }
}
