//! Experiment runners: one function per figure of the paper's evaluation
//! (§IV). The `riptide-bench` binaries are thin printers over these.

use std::collections::BTreeMap;

use riptide::config::RiptideConfig;
use riptide_simnet::fault::FaultPlan;
use riptide_simnet::time::{SimDuration, SimTime};

use crate::gossip::GossipConfig;
use crate::sim::{CdnSim, CdnSimConfig, PersistenceConfig, ProbeOutcome};
use crate::stats::{average_gains, percentile_gains, Cdf, PercentileGain};
use crate::topology::{RttBucket, TestbedConfig};
use crate::workload::{OrganicConfig, ProbeConfig};

/// How big an experiment run is. The paper's windows (12 h for Fig. 10,
/// 20 h for Figs. 12–16, hourly probes) regenerate with
/// [`ExperimentScale::paper`]; the default [`ExperimentScale::quick`]
/// keeps the same structure at a fraction of the wall-clock cost, and
/// [`ExperimentScale::test`] is for unit tests.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Number of PoP sites instantiated (prefix of the 34-site list).
    pub sites: usize,
    /// Machines per PoP.
    pub machines_per_pop: usize,
    /// Measurement window (after warm-up).
    pub duration: SimDuration,
    /// Warm-up discarded from all outputs, giving agents time to learn.
    pub warmup: SimDuration,
    /// Probe interval.
    pub probe_interval: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Paper-scale: all 34 PoPs, 3 machines each, hourly probes, 12 h
    /// window after 2 h warm-up. Expect minutes of wall-clock per run.
    pub fn paper() -> Self {
        ExperimentScale {
            sites: 34,
            machines_per_pop: 3,
            duration: SimDuration::from_secs(12 * 3600),
            warmup: SimDuration::from_secs(2 * 3600),
            probe_interval: SimDuration::from_secs(3600),
            seed: 2016,
        }
    }

    /// Scaled-down default: all 34 PoPs, 2 machines, 5-minute probes,
    /// 2 h window after 20 min warm-up.
    pub fn quick() -> Self {
        ExperimentScale {
            sites: 34,
            machines_per_pop: 2,
            duration: SimDuration::from_secs(2 * 3600),
            warmup: SimDuration::from_secs(20 * 60),
            probe_interval: SimDuration::from_secs(300),
            seed: 2016,
        }
    }

    /// Unit-test scale: a handful of PoPs and minutes of simulated time.
    pub fn test() -> Self {
        ExperimentScale {
            sites: 5,
            machines_per_pop: 1,
            duration: SimDuration::from_secs(900),
            warmup: SimDuration::from_secs(120),
            probe_interval: SimDuration::from_secs(60),
            seed: 8,
        }
    }

    fn testbed(&self) -> TestbedConfig {
        TestbedConfig::tiny(self.sites, self.machines_per_pop, self.seed)
    }

    fn probes(&self) -> ProbeConfig {
        ProbeConfig {
            interval: self.probe_interval,
            ..ProbeConfig::default()
        }
    }

    /// Total simulated time of one run.
    pub fn total(&self) -> SimDuration {
        self.warmup + self.duration
    }
}

/// A subset of sites that carries organic traffic in mixed-traffic runs:
/// a busy core of transatlantic metros (indices into the 34-site list).
pub fn default_busy_sites(scale: &ExperimentScale) -> Vec<usize> {
    [0usize, 1, 10, 11, 14]
        .into_iter()
        .filter(|&i| i < scale.sites)
        .collect()
}

/// The simulation configuration behind [`cwnd_distribution`] — exposed
/// so the parallel engine can run the same experiment shard by shard.
pub fn cwnd_sim_config(scale: &ExperimentScale, c_max: Option<u32>) -> CdnSimConfig {
    let riptide = c_max.map(|m| {
        RiptideConfig::builder()
            .cwnd_max(m)
            .build()
            .expect("valid sweep config")
    });
    CdnSimConfig {
        testbed: scale.testbed(),
        riptide,
        probes: scale.probes(),
        organic: OrganicConfig::among(default_busy_sites(scale), 0.2),
        cwnd_sample_interval: SimDuration::from_secs(60),
        probe_senders: None,
        faults: FaultPlan::none(),
        reconcile_every: None,
        telemetry: false,
        persistence: None,
        gossip: None,
        track_ramp: false,
    }
}

/// Runs one deployment and returns the live-cwnd samples collected after
/// warm-up — one curve of Fig. 10 (`c_max = Some(...)`) or its control
/// (`None`).
pub fn cwnd_distribution(scale: &ExperimentScale, c_max: Option<u32>) -> Cdf {
    let mut sim = CdnSim::new(cwnd_sim_config(scale, c_max));
    sim.run_for(scale.total());
    let cutoff = SimTime::ZERO + scale.warmup;
    Cdf::new(
        sim.cwnd_samples()
            .iter()
            .filter(|s| s.at >= cutoff)
            .map(|s| s.cwnd as f64),
    )
}

/// The `(probe_only, busy)` site pair compared by Fig. 11.
///
/// # Panics
///
/// Panics if the scale has no busy site or no probe-only site.
pub fn traffic_profile_sites(scale: &ExperimentScale) -> (usize, usize) {
    let busy = default_busy_sites(scale);
    assert!(!busy.is_empty(), "need at least one busy site");
    let probe_only_site = (0..scale.sites)
        .rev()
        .find(|i| !busy.contains(i))
        .expect("a probe-only site exists");
    (probe_only_site, busy[0])
}

/// The simulation configuration behind [`traffic_profile`].
pub fn traffic_sim_config(scale: &ExperimentScale) -> CdnSimConfig {
    CdnSimConfig {
        testbed: scale.testbed(),
        riptide: Some(RiptideConfig::deployment()),
        probes: scale.probes(),
        organic: OrganicConfig::among(default_busy_sites(scale), 0.5),
        cwnd_sample_interval: SimDuration::from_secs(60),
        probe_senders: None,
        faults: FaultPlan::none(),
        reconcile_every: None,
        telemetry: false,
        persistence: None,
        gossip: None,
        track_ramp: false,
    }
}

/// Fig. 11: live-cwnd distributions at a probe-only PoP vs one of the
/// busiest PoPs, both running Riptide at the deployment `c_max` of 100.
pub fn traffic_profile(scale: &ExperimentScale) -> (Cdf, Cdf) {
    let (probe_only_site, busy_site) = traffic_profile_sites(scale);
    let mut sim = CdnSim::new(traffic_sim_config(scale));
    sim.run_for(scale.total());
    let cutoff = SimTime::ZERO + scale.warmup;
    let at_site = |site: usize| {
        Cdf::new(
            sim.cwnd_samples()
                .iter()
                .filter(|s| s.at >= cutoff && s.site == site)
                .map(|s| s.cwnd as f64),
        )
    };
    (at_site(probe_only_site), at_site(busy_site))
}

/// The two probe-sender sites of §IV-B2: one European, one North
/// American (indices into the site list, clamped to the scale).
pub fn probe_sender_sites(scale: &ExperimentScale) -> Vec<usize> {
    let mut senders = vec![0];
    if scale.sites > 10 {
        senders.push(10); // NewYork in the full list
    } else if scale.sites > 1 {
        senders.push(scale.sites - 1);
    }
    senders
}

/// TCP-stack deviations from the testbed default, for ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackTweaks {
    /// Enable `tcp_slow_start_after_idle` (testbed default: off).
    pub slow_start_after_idle: bool,
    /// Enable delayed acknowledgements (testbed default: off, matching
    /// the paper's §II-B model assumptions).
    pub delayed_ack: bool,
    /// Disable the `tcp_metrics` ssthresh cache (testbed default: on).
    pub no_metrics_cache: bool,
    /// Enable SACK (RFC 2018 blocks + RFC 6675-lite recovery; testbed
    /// default: off, matching the NewReno baseline in DESIGN.md).
    pub sack: bool,
    /// Override the receivers' initial advertised window (testbed
    /// default: 1000 segments). §III-C requires `initrwnd >= c_max` or
    /// the first burst of a Riptide-boosted connection stalls on flow
    /// control; setting this to 10 reproduces that failure mode.
    pub initial_rwnd: Option<u32>,
}

/// Runs the §IV-B2 probe experiment once (control or Riptide) and
/// returns the after-warm-up probe outcomes from the sender sites.
pub fn probe_experiment(scale: &ExperimentScale, riptide: bool) -> Vec<ProbeOutcome> {
    probe_experiment_with(
        scale,
        riptide.then(RiptideConfig::deployment),
        StackTweaks::default(),
    )
}

/// [`probe_experiment`] with an explicit Riptide configuration and
/// stack tweaks — the hook the ablation harness uses to vary §III-B
/// strategies and stack behaviour.
pub fn probe_experiment_with(
    scale: &ExperimentScale,
    riptide: Option<RiptideConfig>,
    tweaks: StackTweaks,
) -> Vec<ProbeOutcome> {
    let cfg = probe_sim_config(scale, riptide, tweaks, probe_sender_sites(scale));
    let mut sim = CdnSim::new(cfg);
    sim.run_for(scale.total());
    let cutoff = SimTime::ZERO + scale.warmup;
    sim.probe_outcomes()
        .iter()
        .filter(|p| p.requested_at >= cutoff)
        .copied()
        .collect()
}

/// The simulation configuration behind [`probe_experiment_with`], with
/// an explicit sender-site list — the parallel engine shards the probe
/// experiments one sender per shard through this hook.
pub fn probe_sim_config(
    scale: &ExperimentScale,
    riptide: Option<RiptideConfig>,
    tweaks: StackTweaks,
    senders: Vec<usize>,
) -> CdnSimConfig {
    let mut testbed = scale.testbed();
    testbed.tcp.slow_start_after_idle = tweaks.slow_start_after_idle;
    testbed.tcp.delayed_ack = tweaks.delayed_ack;
    testbed.tcp.metrics_cache = !tweaks.no_metrics_cache;
    testbed.tcp.sack = tweaks.sack;
    if let Some(rwnd) = tweaks.initial_rwnd {
        testbed.tcp.initial_rwnd = rwnd;
    }
    CdnSimConfig {
        testbed,
        riptide,
        probes: scale.probes(),
        organic: OrganicConfig::among(default_busy_sites(scale), 0.2),
        cwnd_sample_interval: SimDuration::from_secs(300),
        probe_senders: Some(senders),
        faults: FaultPlan::none(),
        reconcile_every: None,
        telemetry: false,
        persistence: None,
        gossip: None,
        track_ramp: false,
    }
}

/// The simulation configuration behind the `chaos` experiment: the §IV-B2
/// probe setup with every fault category firing at `fault_rate`
/// ([`FaultPlan::uniform`]). A rate of `0.0` disables the fault layer and
/// the run is bit-identical to [`probe_sim_config`]'s.
pub fn chaos_sim_config(
    scale: &ExperimentScale,
    riptide: Option<RiptideConfig>,
    senders: Vec<usize>,
    fault_rate: f64,
) -> CdnSimConfig {
    let mut cfg = probe_sim_config(scale, riptide, StackTweaks::default(), senders);
    cfg.faults = FaultPlan::uniform(fault_rate);
    cfg
}

/// The simulation configuration behind the `guardrail` experiment: the
/// §IV-B2 probe setup under [`FaultPlan::guardrail`] — route churn plus
/// loss episodes targeted at freshly jump-started paths — with a
/// reconciler audit every five minutes. A rate of `0.0` disables the
/// fault layer and the audit schedule is invisible on a converged table,
/// so the run is bit-identical to [`probe_sim_config`]'s.
pub fn guardrail_sim_config(
    scale: &ExperimentScale,
    riptide: Option<RiptideConfig>,
    senders: Vec<usize>,
    fault_rate: f64,
) -> CdnSimConfig {
    let mut cfg = probe_sim_config(scale, riptide, StackTweaks::default(), senders);
    cfg.faults = FaultPlan::guardrail(fault_rate);
    if fault_rate > 0.0 {
        cfg.reconcile_every = Some(SimDuration::from_secs(300));
    }
    cfg
}

/// Which durability features a cold-start arm enables. The three modes
/// isolate the contribution of each recovery layer: relearn from
/// scratch, restore the local snapshot+journal, or additionally pull
/// missing entries from peers over gossip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdstartMode {
    /// No persistence: a restarted agent relearns its whole table from
    /// live traffic.
    Cold,
    /// Snapshot + journal restore on restart ([`PersistenceConfig`]).
    Snapshot,
    /// Snapshot + journal restore plus gossip anti-entropy fleet sync
    /// ([`GossipConfig`]).
    SnapshotGossip,
}

impl ColdstartMode {
    /// Short arm name used in shard labels and bench output.
    pub fn label(self) -> &'static str {
        match self {
            ColdstartMode::Cold => "cold",
            ColdstartMode::Snapshot => "snapshot",
            ColdstartMode::SnapshotGossip => "snapshot+gossip",
        }
    }
}

/// The simulation configuration behind the `coldstart` experiment: the
/// §IV-B2 probe setup under machine-crash faults (connections reset, so
/// a restarted agent really is cold) with ramp tracking on, and the
/// arm's durability mode. A crash rate of `0.0` leaves the fault layer
/// off and the run is bit-identical to [`probe_sim_config`]'s when the
/// mode is [`ColdstartMode::Cold`].
pub fn coldstart_sim_config(
    scale: &ExperimentScale,
    riptide: Option<RiptideConfig>,
    senders: Vec<usize>,
    crash_rate: f64,
    mode: ColdstartMode,
) -> CdnSimConfig {
    let mut cfg = probe_sim_config(scale, riptide, StackTweaks::default(), senders);
    cfg.faults = FaultPlan {
        crash: crash_rate,
        restart_after: SimDuration::from_secs(10),
        crash_resets_connections: true,
        ..FaultPlan::none()
    };
    cfg.track_ramp = true;
    if matches!(
        mode,
        ColdstartMode::Snapshot | ColdstartMode::SnapshotGossip
    ) {
        cfg.persistence = Some(PersistenceConfig::default());
    }
    if mode == ColdstartMode::SnapshotGossip {
        cfg.gossip = Some(GossipConfig::default());
    }
    cfg
}

/// The guarded arm's Riptide configuration: deployment defaults plus the
/// loss-aware circuit breaker at its default thresholds.
pub fn guarded_riptide_config() -> RiptideConfig {
    RiptideConfig::builder()
        .guard(riptide::guard::GuardConfig::default())
        .build()
        .expect("deployment defaults with a default guard are valid")
}

/// Both arms of the probe experiment, same seed — the paired comparison
/// behind Figs. 12–16 and §IV-D.
#[derive(Debug, Clone)]
pub struct ProbeComparison {
    /// Outcomes with Riptide disabled.
    pub control: Vec<ProbeOutcome>,
    /// Outcomes with Riptide enabled.
    pub riptide: Vec<ProbeOutcome>,
}

/// Runs control and Riptide arms with identical topology and seeds.
pub fn probe_comparison(scale: &ExperimentScale) -> ProbeComparison {
    ProbeComparison {
        control: probe_experiment(scale, false),
        riptide: probe_experiment(scale, true),
    }
}

/// Figs. 12–14: completion-time CDFs (milliseconds) for probes of `size`
/// from `sender`, grouped by destination RTT bucket.
pub fn completion_by_bucket(
    outcomes: &[ProbeOutcome],
    sender: usize,
    size: u64,
) -> BTreeMap<RttBucket, Cdf> {
    let mut groups: BTreeMap<RttBucket, Vec<f64>> = BTreeMap::new();
    for p in outcomes {
        if p.src_site == sender && p.size == size {
            groups
                .entry(p.bucket)
                .or_default()
                .push(p.completion.as_millis_f64());
        }
    }
    groups.into_iter().map(|(b, v)| (b, Cdf::new(v))).collect()
}

/// Figs. 15/16: per-percentile gain for probes of `size` from `sender`,
/// computed per destination and averaged across destinations, in the
/// paper's 5% steps.
pub fn gain_by_percentile(cmp: &ProbeComparison, sender: usize, size: u64) -> Vec<PercentileGain> {
    let per_dest = per_destination_cdfs(cmp, sender, size);
    let tables: Vec<Vec<PercentileGain>> = per_dest
        .values()
        .map(|(ctl, rip)| percentile_gains(ctl, rip, 5))
        .collect();
    assert!(
        !tables.is_empty(),
        "no destination had probes of size {size}"
    );
    average_gains(&tables)
}

/// §IV-D: per-destination change in the best-case (min) and worst-case
/// (max) completion for `size` probes from `sender`. Positive fractions
/// mean Riptide was faster.
pub fn edge_cases(cmp: &ProbeComparison, sender: usize, size: u64) -> Vec<EdgeCaseRow> {
    per_destination_cdfs(cmp, sender, size)
        .into_iter()
        .map(|(dst, (ctl, rip))| EdgeCaseRow {
            dst_site: dst,
            min_change: (ctl.min() - rip.min()) / ctl.min(),
            max_change: (ctl.max() - rip.max()) / ctl.max(),
        })
        .collect()
}

/// One §IV-D row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCaseRow {
    /// Destination site.
    pub dst_site: usize,
    /// Fractional change of the minimum completion (positive = faster).
    pub min_change: f64,
    /// Fractional change of the maximum completion.
    pub max_change: f64,
}

/// Pairs control/riptide CDFs per destination, keeping destinations with
/// samples in both arms.
fn per_destination_cdfs(
    cmp: &ProbeComparison,
    sender: usize,
    size: u64,
) -> BTreeMap<usize, (Cdf, Cdf)> {
    let collect = |outcomes: &[ProbeOutcome]| {
        let mut m: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for p in outcomes {
            if p.src_site == sender && p.size == size {
                m.entry(p.dst_site)
                    .or_default()
                    .push(p.completion.as_millis_f64());
            }
        }
        m
    };
    let ctl = collect(&cmp.control);
    let mut rip = collect(&cmp.riptide);
    ctl.into_iter()
        .filter_map(|(dst, c)| {
            let r = rip.remove(&dst)?;
            Some((dst, (Cdf::new(c), Cdf::new(r))))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwnd_distribution_shifts_with_riptide() {
        let scale = ExperimentScale::test();
        let control = cwnd_distribution(&scale, None);
        let riptide = cwnd_distribution(&scale, Some(100));
        assert!(!control.is_empty() && !riptide.is_empty());
        assert!(
            riptide.median() > control.median(),
            "riptide median {} should exceed control {}",
            riptide.median(),
            control.median()
        );
    }

    #[test]
    fn cmax_clamps_learned_windows() {
        let scale = ExperimentScale::test();
        let low = cwnd_distribution(&scale, Some(50));
        // Initial windows are clamped at 50, but live windows may grow
        // past it during transfers; the bulk should sit at or below the
        // natural growth ceiling of the probe workload.
        assert!(low.quantile(0.5) <= 120.0, "median {}", low.quantile(0.5));
    }

    #[test]
    fn probe_comparison_improves_large_probes() {
        let scale = ExperimentScale::test();
        let cmp = probe_comparison(&scale);
        assert!(!cmp.control.is_empty() && !cmp.riptide.is_empty());
        let sender = probe_sender_sites(&scale)[0];
        let ctl: Vec<f64> = cmp
            .control
            .iter()
            .filter(|p| p.src_site == sender && p.size == 100_000)
            .map(|p| p.completion.as_millis_f64())
            .collect();
        let rip: Vec<f64> = cmp
            .riptide
            .iter()
            .filter(|p| p.src_site == sender && p.size == 100_000)
            .map(|p| p.completion.as_millis_f64())
            .collect();
        let ctl = Cdf::new(ctl);
        let rip = Cdf::new(rip);
        assert!(
            rip.median() < ctl.median(),
            "100KB probes faster with riptide: {} vs {}",
            rip.median(),
            ctl.median()
        );
    }

    #[test]
    fn small_probes_unchanged() {
        // Fig. 12: 10 KB fits in the default window; Riptide is a no-op.
        let scale = ExperimentScale::test();
        let cmp = probe_comparison(&scale);
        let sender = probe_sender_sites(&scale)[0];
        let med = |v: &[ProbeOutcome]| {
            Cdf::new(
                v.iter()
                    .filter(|p| p.src_site == sender && p.size == 10_000)
                    .map(|p| p.completion.as_millis_f64()),
            )
            .median()
        };
        let c = med(&cmp.control);
        let r = med(&cmp.riptide);
        let rel = (c - r).abs() / c;
        assert!(rel < 0.25, "10KB medians should be close: {c} vs {r}");
    }

    #[test]
    fn bucket_grouping_covers_senders_destinations() {
        let scale = ExperimentScale::test();
        let outcomes = probe_experiment(&scale, false);
        let sender = probe_sender_sites(&scale)[0];
        let groups = completion_by_bucket(&outcomes, sender, 50_000);
        assert!(!groups.is_empty());
        let total: usize = groups.values().map(Cdf::len).sum();
        let expected = outcomes
            .iter()
            .filter(|p| p.src_site == sender && p.size == 50_000)
            .count();
        assert_eq!(total, expected, "every probe lands in exactly one bucket");
    }

    #[test]
    fn gain_table_has_19_rows() {
        let scale = ExperimentScale::test();
        let cmp = probe_comparison(&scale);
        let sender = probe_sender_sites(&scale)[0];
        let gains = gain_by_percentile(&cmp, sender, 100_000);
        assert_eq!(gains.len(), 19);
        assert_eq!(gains[0].percentile, 5);
        // Somewhere in the upper percentiles Riptide should win.
        let best = gains.iter().map(|g| g.gain).fold(f64::MIN, f64::max);
        assert!(best > 0.0, "no percentile improved: {gains:?}");
    }

    #[test]
    fn edge_cases_produce_one_row_per_destination() {
        let scale = ExperimentScale::test();
        let cmp = probe_comparison(&scale);
        let sender = probe_sender_sites(&scale)[0];
        let rows = edge_cases(&cmp, sender, 100_000);
        assert_eq!(rows.len(), scale.sites - 1);
        for r in rows {
            assert!(r.min_change.is_finite() && r.max_change.is_finite());
        }
    }
}
