//! IPv4 prefixes (`addr/len`) with containment and parsing.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An error produced when parsing a prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError {
    message: String,
}

impl ParsePrefixError {
    fn new(message: impl Into<String>) -> Self {
        ParsePrefixError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.message)
    }
}

impl std::error::Error for ParsePrefixError {}

/// An IPv4 prefix: a network address and a mask length.
///
/// Host bits below the mask are always stored zeroed, so two prefixes
/// covering the same network compare equal regardless of how they were
/// written.
///
/// # Examples
///
/// ```
/// use riptide_linuxnet::prefix::Ipv4Prefix;
/// use std::net::Ipv4Addr;
///
/// let p: Ipv4Prefix = "10.0.1.0/24".parse()?;
/// assert!(p.contains(Ipv4Addr::new(10, 0, 1, 77)));
/// assert!(!p.contains(Ipv4Addr::new(10, 0, 2, 1)));
/// // A bare address parses as a /32 host route, as `ip route` accepts.
/// let host: Ipv4Prefix = "10.0.0.127".parse()?;
/// assert_eq!(host.len(), 32);
/// # Ok::<(), riptide_linuxnet::prefix::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, zeroing any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let bits = u32::from(addr) & Self::mask(len);
        Ipv4Prefix { bits, len }
    }

    /// A /32 host prefix.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix::new(addr, 32)
    }

    /// The default route `0.0.0.0/0`.
    pub fn default_route() -> Self {
        Ipv4Prefix::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The mask length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == self.bits
    }

    /// Whether `other` is fully covered by this prefix.
    ///
    /// # Examples
    ///
    /// ```
    /// use riptide_linuxnet::prefix::Ipv4Prefix;
    ///
    /// let slab: Ipv4Prefix = "10.0.1.0/24".parse()?;
    /// let host: Ipv4Prefix = "10.0.1.9".parse()?;
    /// assert!(slab.covers(&host));
    /// assert!(slab.covers(&slab));
    /// assert!(!host.covers(&slab));
    /// # Ok::<(), riptide_linuxnet::prefix::ParsePrefixError>(())
    /// ```
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.bits & Self::mask(self.len)) == self.bits
    }

    /// The raw network bits, most-significant-bit first. This is the
    /// lookup seam the compressed trie ([`crate::lpm::LpmTrie`]) walks.
    pub(crate) fn raw_bits(&self) -> u32 {
        self.bits
    }

    /// The prefix obtained by truncating `addr` to `len` bits.
    pub fn of_addr(addr: Ipv4Addr, len: u8) -> Self {
        Ipv4Prefix::new(addr, len)
    }

    /// The covering prefix of length `len` — this prefix widened to a
    /// shorter mask. The aggregation pass uses it to find the `/24`
    /// a learned `/32` would coalesce into.
    ///
    /// # Panics
    ///
    /// Panics if `len` is longer than this prefix's mask (a longer mask
    /// cannot cover a shorter one).
    ///
    /// # Examples
    ///
    /// ```
    /// use riptide_linuxnet::prefix::Ipv4Prefix;
    ///
    /// let host: Ipv4Prefix = "10.0.1.77".parse()?;
    /// let slab = host.covering(24);
    /// assert_eq!(slab.to_string(), "10.0.1.0/24");
    /// assert!(slab.covers(&host));
    /// # Ok::<(), riptide_linuxnet::prefix::ParsePrefixError>(())
    /// ```
    pub fn covering(&self, len: u8) -> Ipv4Prefix {
        assert!(
            len <= self.len,
            "covering length {len} is longer than /{}",
            self.len
        );
        Ipv4Prefix::new(self.network(), len)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 32 {
            write!(f, "{}", self.network())
        } else {
            write!(f, "{}/{}", self.network(), self.len)
        }
    }
}

impl FromStr for Ipv4Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let addr: Ipv4Addr = s
                    .parse()
                    .map_err(|e| ParsePrefixError::new(format!("bad address {s:?}: {e}")))?;
                Ok(Ipv4Prefix::host(addr))
            }
            Some((a, l)) => {
                let addr: Ipv4Addr = a
                    .parse()
                    .map_err(|e| ParsePrefixError::new(format!("bad address {a:?}: {e}")))?;
                let len: u8 = l
                    .parse()
                    .map_err(|e| ParsePrefixError::new(format!("bad length {l:?}: {e}")))?;
                if len > 32 {
                    return Err(ParsePrefixError::new(format!("length {len} > 32")));
                }
                Ok(Ipv4Prefix::new(addr, len))
            }
        }
    }
}

impl From<Ipv4Addr> for Ipv4Prefix {
    fn from(addr: Ipv4Addr) -> Self {
        Ipv4Prefix::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_bits_are_normalized() {
        let a = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 1, 200), 24);
        let b = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 1, 0), 24);
        assert_eq!(a, b);
        assert_eq!(a.network(), Ipv4Addr::new(10, 0, 1, 0));
    }

    #[test]
    fn contains_respects_mask() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16);
        assert!(p.contains(Ipv4Addr::new(192, 168, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 169, 0, 0)));
        assert!(Ipv4Prefix::default_route().contains(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn host_prefix_contains_only_itself() {
        let p = Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 127));
        assert!(p.contains(Ipv4Addr::new(10, 0, 0, 127)));
        assert!(!p.contains(Ipv4Addr::new(10, 0, 0, 126)));
    }

    #[test]
    fn covers_is_reflexive_and_hierarchical() {
        let wide = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        let narrow = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert!(wide.covers(&wide));
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["10.0.0.0/24", "0.0.0.0/0", "10.0.0.127", "192.168.1.0/30"] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/24".parse::<Ipv4Prefix>().is_err());
        assert!("hello".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn covering_truncates_to_shorter_mask() {
        let host = Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, 200));
        assert_eq!(host.covering(24).to_string(), "10.0.1.0/24");
        assert_eq!(host.covering(32), host);
        assert_eq!(host.covering(0), Ipv4Prefix::default_route());
    }

    #[test]
    #[should_panic(expected = "longer than")]
    fn covering_rejects_longer_mask() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 1, 0), 24);
        let _ = p.covering(32);
    }

    #[test]
    #[should_panic(expected = "> 32")]
    fn new_rejects_long_mask() {
        let _ = Ipv4Prefix::new(Ipv4Addr::UNSPECIFIED, 33);
    }
}
