//! An `ss -i`-shaped socket-statistics view.
//!
//! Riptide's only *input* is the output of the `ss` utility: one row per
//! TCP socket with the extended-info line carrying `cwnd`, `rtt` and
//! `bytes_acked`. This module provides that table as a data structure
//! ([`SockTable`]) plus a text renderer and parser matching the utility's
//! format closely enough that the agent can be driven from either a live
//! table or captured text — the same dual a real deployment has (library
//! vs. shelling out).

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// TCP socket state (only the states `ss -t` shows for data sockets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SockState {
    /// Established and usable.
    #[default]
    Established,
    /// Handshake in progress.
    SynSent,
    /// Half-closed.
    CloseWait,
}

impl fmt::Display for SockState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SockState::Established => "ESTAB",
            SockState::SynSent => "SYN-SENT",
            SockState::CloseWait => "CLOSE-WAIT",
        };
        f.write_str(s)
    }
}

impl FromStr for SockState {
    type Err = ParseSsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ESTAB" => Ok(SockState::Established),
            "SYN-SENT" => Ok(SockState::SynSent),
            "CLOSE-WAIT" => Ok(SockState::CloseWait),
            other => Err(ParseSsError::new(format!("unknown socket state {other:?}"))),
        }
    }
}

/// One socket row: the fields of `ss -i` output that Riptide consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SockEntry {
    /// Local address.
    pub src: Ipv4Addr,
    /// Peer address — the key Riptide groups on.
    pub dst: Ipv4Addr,
    /// Socket state.
    pub state: SockState,
    /// Congestion-control algorithm name (`cubic`, `reno`, …).
    pub cc: String,
    /// Current congestion window, in segments.
    pub cwnd: u32,
    /// Slow-start threshold, in segments, if set.
    pub ssthresh: Option<u32>,
    /// Smoothed RTT in milliseconds, if measured.
    pub rtt_ms: Option<f64>,
    /// Bytes acknowledged over the socket's lifetime.
    pub bytes_acked: u64,
    /// Cumulative retransmitted segments over the socket's lifetime —
    /// the figure after the slash in `ss`'s `retrans:cur/total`. The
    /// loss signal the guard layer consumes.
    pub retrans: u64,
    /// Segments currently considered lost (`lost:`), per RFC 6582
    /// accounting.
    pub lost: u64,
}

/// Error from parsing rendered `ss` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSsError {
    message: String,
}

impl ParseSsError {
    fn new(message: impl Into<String>) -> Self {
        ParseSsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ss output: {}", self.message)
    }
}

impl std::error::Error for ParseSsError {}

/// A snapshot of all sockets on a host, in `ss` row order.
///
/// # Examples
///
/// ```
/// use riptide_linuxnet::ss::{SockEntry, SockState, SockTable};
/// use std::net::Ipv4Addr;
///
/// let mut table = SockTable::new();
/// table.push(SockEntry {
///     src: Ipv4Addr::new(10, 0, 0, 1),
///     dst: Ipv4Addr::new(10, 0, 1, 1),
///     state: SockState::Established,
///     cc: "cubic".into(),
///     cwnd: 80,
///     ssthresh: None,
///     rtt_ms: Some(120.0),
///     bytes_acked: 1_000_000,
///     retrans: 3,
///     lost: 0,
/// });
/// let text = table.render();
/// let parsed = SockTable::parse(&text)?;
/// assert_eq!(parsed, table);
/// # Ok::<(), riptide_linuxnet::ss::ParseSsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SockTable {
    entries: Vec<SockEntry>,
}

impl SockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SockTable::default()
    }

    /// Appends a socket row.
    pub fn push(&mut self, entry: SockEntry) {
        self.entries.push(entry);
    }

    /// All rows, in order.
    pub fn entries(&self) -> &[SockEntry] {
        &self.entries
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rows in `Established` state — the ones whose windows mean anything.
    pub fn established(&self) -> impl Iterator<Item = &SockEntry> {
        self.entries
            .iter()
            .filter(|e| e.state == SockState::Established)
    }

    /// Renders in an `ss -i`-like two-lines-per-socket format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("{} {} {}\n", e.state, e.src, e.dst));
            out.push_str(&format!("\t {} cwnd:{}", e.cc, e.cwnd));
            if let Some(ss) = e.ssthresh {
                out.push_str(&format!(" ssthresh:{ss}"));
            }
            if let Some(rtt) = e.rtt_ms {
                out.push_str(&format!(" rtt:{rtt:.3}"));
            }
            out.push_str(&format!(" bytes_acked:{}", e.bytes_acked));
            // `ss` prints retrans as current/lifetime; we render the
            // lifetime total and omit both counters when clean, matching
            // the utility's own field elision.
            if e.retrans > 0 {
                out.push_str(&format!(" retrans:0/{}", e.retrans));
            }
            if e.lost > 0 {
                out.push_str(&format!(" lost:{}", e.lost));
            }
            out.push('\n');
        }
        out
    }

    /// Parses text produced by [`SockTable::render`] (tolerant of extra
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSsError`] on malformed rows, unknown states, or an
    /// info line without its preceding socket line.
    pub fn parse(text: &str) -> Result<Self, ParseSsError> {
        let mut table = SockTable::new();
        let mut pending: Option<(SockState, Ipv4Addr, Ipv4Addr)> = None;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if !line.starts_with(['\t', ' ']) {
                if pending.is_some() {
                    return Err(ParseSsError::new("socket line without info line"));
                }
                pending = Some(parse_socket_line(line)?);
            } else {
                let head = pending
                    .take()
                    .ok_or_else(|| ParseSsError::new("info line without socket line"))?;
                table.push(parse_info_line(head, line)?);
            }
        }
        if pending.is_some() {
            return Err(ParseSsError::new("trailing socket line without info line"));
        }
        Ok(table)
    }

    /// Parses like [`SockTable::parse`] but salvages every complete,
    /// well-formed row instead of failing on the first defect — the
    /// behaviour a production poller needs when `ss` output arrives
    /// truncated (a timeout mid-write) or interleaved with garbage.
    ///
    /// Returns the salvaged table together with one error per defect, in
    /// input order. `parse_lossy(t).1.is_empty()` exactly when
    /// `parse(t)` succeeds.
    pub fn parse_lossy(text: &str) -> (Self, Vec<ParseSsError>) {
        let mut table = SockTable::new();
        let mut errors = Vec::new();
        let mut pending: Option<(SockState, Ipv4Addr, Ipv4Addr)> = None;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if !line.starts_with(['\t', ' ']) {
                if pending.take().is_some() {
                    errors.push(ParseSsError::new("socket line without info line"));
                }
                match parse_socket_line(line) {
                    Ok(head) => pending = Some(head),
                    Err(e) => errors.push(e),
                }
            } else {
                match pending.take() {
                    None => errors.push(ParseSsError::new("info line without socket line")),
                    Some(head) => match parse_info_line(head, line) {
                        Ok(entry) => table.push(entry),
                        Err(e) => errors.push(e),
                    },
                }
            }
        }
        if pending.is_some() {
            errors.push(ParseSsError::new("trailing socket line without info line"));
        }
        (table, errors)
    }
}

fn parse_socket_line(line: &str) -> Result<(SockState, Ipv4Addr, Ipv4Addr), ParseSsError> {
    let mut parts = line.split_whitespace();
    let state: SockState = parts
        .next()
        .ok_or_else(|| ParseSsError::new("empty socket line"))?
        .parse()?;
    let src = parse_addr(parts.next())?;
    let dst = parse_addr(parts.next())?;
    Ok((state, src, dst))
}

fn parse_info_line(
    (state, src, dst): (SockState, Ipv4Addr, Ipv4Addr),
    line: &str,
) -> Result<SockEntry, ParseSsError> {
    let mut cc = String::new();
    let mut cwnd = None;
    let mut ssthresh = None;
    let mut rtt_ms = None;
    let mut bytes_acked = 0;
    let mut retrans = 0;
    let mut lost = 0;
    for tok in line.split_whitespace() {
        match tok.split_once(':') {
            // The first bare token is the congestion-control name; later
            // bare tokens (`send 4.1Mbps`, `app_limited`…) are noise.
            None => {
                if cc.is_empty() {
                    cc = tok.to_string();
                }
            }
            Some(("cwnd", v)) => cwnd = Some(parse_num(v)?),
            Some(("ssthresh", v)) => ssthresh = Some(parse_num(v)?),
            Some(("rtt", v)) => {
                // Real `ss` prints `rtt:srtt/rttvar`; the smoothed RTT is
                // before the slash.
                let srtt = v.split_once('/').map_or(v, |(s, _)| s);
                rtt_ms = Some(
                    srtt.parse::<f64>()
                        .map_err(|e| ParseSsError::new(format!("bad rtt {v:?}: {e}")))?,
                )
            }
            Some(("bytes_acked", v)) => {
                bytes_acked = v
                    .parse::<u64>()
                    .map_err(|e| ParseSsError::new(format!("bad bytes_acked {v:?}: {e}")))?
            }
            Some(("retrans", v)) => {
                // `retrans:cur/total` — the lifetime total is after the
                // slash; a bare number (older ss) is taken as the total.
                let total = v.split_once('/').map_or(v, |(_, t)| t);
                retrans = total
                    .parse::<u64>()
                    .map_err(|e| ParseSsError::new(format!("bad retrans {v:?}: {e}")))?
            }
            Some(("lost", v)) => {
                lost = v
                    .parse::<u64>()
                    .map_err(|e| ParseSsError::new(format!("bad lost {v:?}: {e}")))?
            }
            Some(_) => {} // unknown key: ignore, like real parsers must
        }
    }
    Ok(SockEntry {
        src,
        dst,
        state,
        cc,
        cwnd: cwnd.ok_or_else(|| ParseSsError::new("info line missing cwnd"))?,
        ssthresh,
        rtt_ms,
        bytes_acked,
        retrans,
        lost,
    })
}

impl FromIterator<SockEntry> for SockTable {
    fn from_iter<I: IntoIterator<Item = SockEntry>>(iter: I) -> Self {
        SockTable {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<SockEntry> for SockTable {
    fn extend<I: IntoIterator<Item = SockEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

fn parse_addr(tok: Option<&str>) -> Result<Ipv4Addr, ParseSsError> {
    let tok = tok.ok_or_else(|| ParseSsError::new("socket line missing address"))?;
    tok.parse()
        .map_err(|e| ParseSsError::new(format!("bad address {tok:?}: {e}")))
}

fn parse_num(v: &str) -> Result<u32, ParseSsError> {
    v.parse()
        .map_err(|e| ParseSsError::new(format!("bad number {v:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dst: [u8; 4], cwnd: u32) -> SockEntry {
        SockEntry {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::from(dst),
            state: SockState::Established,
            cc: "cubic".into(),
            cwnd,
            ssthresh: Some(64),
            rtt_ms: Some(118.25),
            bytes_acked: 42_000,
            retrans: 0,
            lost: 0,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let table: SockTable = vec![entry([10, 0, 1, 1], 80), entry([10, 0, 2, 1], 12)]
            .into_iter()
            .collect();
        let text = table.render();
        assert_eq!(SockTable::parse(&text).unwrap(), table);
    }

    #[test]
    fn render_shape_is_ss_like() {
        let table: SockTable = vec![entry([10, 0, 1, 1], 80)].into_iter().collect();
        let text = table.render();
        assert!(text.starts_with("ESTAB 10.0.0.1 10.0.1.1\n"));
        assert!(text.contains("cubic cwnd:80 ssthresh:64 rtt:118.250 bytes_acked:42000"));
    }

    #[test]
    fn optional_fields_can_be_absent() {
        let mut e = entry([10, 0, 1, 1], 80);
        e.ssthresh = None;
        e.rtt_ms = None;
        let table: SockTable = vec![e].into_iter().collect();
        let parsed = SockTable::parse(&table.render()).unwrap();
        assert_eq!(parsed.entries()[0].ssthresh, None);
        assert_eq!(parsed.entries()[0].rtt_ms, None);
    }

    #[test]
    fn established_filter() {
        let mut syn = entry([10, 0, 3, 1], 10);
        syn.state = SockState::SynSent;
        let table: SockTable = vec![entry([10, 0, 1, 1], 80), syn].into_iter().collect();
        assert_eq!(table.established().count(), 1);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn parse_rejects_orphan_info_line() {
        assert!(SockTable::parse("\t cubic cwnd:10 bytes_acked:0\n").is_err());
    }

    #[test]
    fn parse_rejects_missing_cwnd() {
        let text = "ESTAB 10.0.0.1 10.0.1.1\n\t cubic bytes_acked:0\n";
        assert!(SockTable::parse(text).is_err());
    }

    #[test]
    fn parse_rejects_unknown_state() {
        let text = "WAT 10.0.0.1 10.0.1.1\n\t cubic cwnd:10 bytes_acked:0\n";
        assert!(SockTable::parse(text).is_err());
    }

    #[test]
    fn parse_ignores_unknown_keys() {
        let text = "ESTAB 10.0.0.1 10.0.1.1\n\t cubic wscale:7,7 cwnd:33 mss:1448 bytes_acked:5\n";
        let t = SockTable::parse(text).unwrap();
        assert_eq!(t.entries()[0].cwnd, 33);
        assert_eq!(t.entries()[0].bytes_acked, 5);
    }

    #[test]
    fn parse_lossy_salvages_rows_before_a_truncation() {
        // Two complete rows, then output cut off mid-socket (the info
        // line never arrived) — the shape of a timed-out `ss` write.
        let table: SockTable = vec![entry([10, 0, 1, 1], 80), entry([10, 0, 2, 1], 12)]
            .into_iter()
            .collect();
        let mut text = table.render();
        text.push_str("ESTAB 10.0.0.1 10.0.3.1\n");
        assert!(SockTable::parse(&text).is_err(), "strict parse refuses");
        let (salvaged, errors) = SockTable::parse_lossy(&text);
        assert_eq!(salvaged, table);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].to_string().contains("trailing socket line"));
    }

    #[test]
    fn parse_lossy_skips_garbage_rows_and_keeps_the_rest() {
        let text = "ESTAB 10.0.0.1 10.0.1.1\n\
                    \t cubic cwnd:40 bytes_acked:9\n\
                    WAT 10.0.0.1 10.0.2.1\n\
                    \t cubic cwnd:not_a_number bytes_acked:0\n\
                    ESTAB 10.0.0.1 10.0.3.1\n\
                    \t reno cwnd:22 bytes_acked:7\n";
        let (salvaged, errors) = SockTable::parse_lossy(text);
        assert_eq!(salvaged.len(), 2);
        assert_eq!(salvaged.entries()[0].cwnd, 40);
        assert_eq!(salvaged.entries()[1].cwnd, 22);
        // The bad state line AND its orphaned info line each count.
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn parse_lossy_agrees_with_strict_parse_on_clean_input() {
        let table: SockTable = vec![entry([10, 0, 1, 1], 80)].into_iter().collect();
        let text = table.render();
        let (salvaged, errors) = SockTable::parse_lossy(&text);
        assert!(errors.is_empty());
        assert_eq!(salvaged, SockTable::parse(&text).unwrap());
    }

    #[test]
    fn parse_empty_is_empty() {
        assert!(SockTable::parse("").unwrap().is_empty());
        assert!(SockTable::parse("\n\n").unwrap().is_empty());
    }

    #[test]
    fn retrans_and_lost_round_trip() {
        let mut e = entry([10, 0, 1, 1], 80);
        e.retrans = 17;
        e.lost = 3;
        let table: SockTable = vec![e, entry([10, 0, 2, 1], 12)].into_iter().collect();
        let text = table.render();
        assert!(text.contains("retrans:0/17 lost:3"));
        assert_eq!(SockTable::parse(&text).unwrap(), table);
        // Clean sockets omit both counters, like the real utility.
        let second_row = text.lines().nth(3).unwrap();
        assert!(!second_row.contains("retrans"));
        assert!(!second_row.contains("lost"));
    }

    // A fixture captured from real `ss -ti` output (iproute2 5.15, loss
    // on the path): the parser must pull the lifetime retrans total out
    // of the `cur/total` pair while skipping every field we don't model.
    const REAL_SS_TI: &str = "\
ESTAB 10.128.0.4 10.132.0.9
\t cubic wscale:7,7 rto:304 rtt:103.741/1.557 ato:40 mss:1408 pmtu:1500 rcvmss:536 advmss:1448 cwnd:38 ssthresh:29 bytes_sent:6561280 bytes_retrans:191488 bytes_acked:6369793 segs_out:4663 segs_in:2333 data_segs_out:4661 send 4.1Mbps lastsnd:44 lastrcv:103404 pacing_rate 4.9Mbps delivery_rate 3.3Mbps delivered:4526 busy:102120ms unacked:136 retrans:1/136 lost:9 sacked:84 reordering:27 rcv_space:14480 rcv_ssthresh:64088 notsent:1253376 minrtt:98.124
ESTAB 10.128.0.4 10.132.0.10
\t cubic wscale:7,7 rto:204 rtt:2.184/0.253 ato:40 mss:1448 cwnd:10 bytes_sent:1872 bytes_acked:1873 segs_out:14 segs_in:11 send 53Mbps delivery_rate 41.5Mbps delivered:14 app_limited busy:28ms rcv_space:14480 minrtt:1.918
";

    #[test]
    fn parses_real_ss_ti_capture() {
        let table = SockTable::parse(REAL_SS_TI).unwrap();
        assert_eq!(table.len(), 2);
        let lossy = &table.entries()[0];
        assert_eq!(lossy.cc, "cubic");
        assert_eq!(lossy.cwnd, 38);
        assert_eq!(lossy.ssthresh, Some(29));
        assert_eq!(lossy.rtt_ms, Some(103.741), "srtt, not rttvar");
        assert_eq!(lossy.retrans, 136, "lifetime total, not the in-flight 1");
        assert_eq!(lossy.lost, 9);
        assert_eq!(lossy.bytes_acked, 6_369_793);
        let clean = &table.entries()[1];
        assert_eq!(clean.cwnd, 10);
        assert_eq!((clean.retrans, clean.lost), (0, 0));
    }
}
