//! # riptide-linuxnet
//!
//! A faithful, in-process model of the three Linux networking control-plane
//! surfaces the Riptide paper (ICDCS 2016) builds on:
//!
//! * [`route::RouteTable`] — an IPv4 routing table with longest-prefix-match
//!   lookup and per-route `initcwnd` / `initrwnd` attributes. In Linux this
//!   is the *only* sanctioned way to set an initial congestion window
//!   (§III-C of the paper); Riptide installs one route per learned
//!   destination.
//! * [`ss::SockTable`] — the `ss -i` socket-statistics view (peer address,
//!   `cwnd`, `rtt`, `bytes_acked`) that is Riptide's sole input, including
//!   a renderer/parser for the utility's text format.
//! * [`ip_cmd::IpRouteCmd`] — the `ip route add/replace/del` command syntax
//!   of the paper's Fig. 8, so control actions round-trip through the same
//!   text a shell deployment would execute.
//! * [`exec::CommandRunner`] — the subprocess seam itself (run argv, get
//!   stdout, or one of the three real-world failures: spawn error,
//!   non-zero exit, timeout), with a deterministic scripted test double.
//!
//! ## Module map (↔ paper sections)
//!
//! | Module | Role | Paper anchor |
//! |---|---|---|
//! | [`route`] | LPM table, `initcwnd`/`initrwnd` route attributes | §III-C "the route table is the knob" |
//! | [`lpm`] | compressed stride-4 multibit trie backing the LPM table | §III-B at internet scale |
//! | [`ss`] | `ss -i` render/parse, incl. lossy salvage of truncated output | §III poll loop input |
//! | [`ip_cmd`] | `ip route …` grammar | Fig. 8 |
//! | [`prefix`] | IPv4 prefixes (host and `/24` granularity) | §III-B granularity |
//! | [`exec`] | subprocess runner + failure taxonomy | §IV-D failure handling |
//!
//! The crate is dependency-free and usable on its own; the reproduction
//! wires it to simulated hosts, but the same types could front the real
//! utilities via `std::process::Command`.
//!
//! ## Example: what Riptide does, in three lines
//!
//! ```
//! use riptide_linuxnet::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! let mut table = RouteTable::new();
//! // Fig. 8 of the paper, verbatim:
//! let cmd: IpRouteCmd =
//!     "ip route add 10.0.0.127 dev eth0 proto static initcwnd 80 via 10.0.0.1".parse()?;
//! cmd.apply(&mut table)?;
//! assert_eq!(table.initcwnd_for(Ipv4Addr::new(10, 0, 0, 127)), Some(80));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod ip_cmd;
pub mod lpm;
pub mod prefix;
pub mod route;
pub mod ss;

/// The types most users need, importable in one line.
pub mod prelude {
    pub use crate::exec::{CommandRunner, ExecError, ScriptedRunner};
    pub use crate::ip_cmd::{IpRouteAction, IpRouteCmd};
    pub use crate::lpm::LpmTrie;
    pub use crate::prefix::Ipv4Prefix;
    pub use crate::route::{Route, RouteAttrs, RouteError, RouteProto, RouteTable};
    pub use crate::ss::{SockEntry, SockState, SockTable};
}
