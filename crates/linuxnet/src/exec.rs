//! The subprocess seam: how `ss -i` and `ip route` actually get run.
//!
//! The agent's two I/O surfaces are command-line utilities, and in
//! production they fail in exactly three ways — they never start, they
//! exit non-zero, or they hang past a deadline. [`CommandRunner`]
//! abstracts "run argv, get stdout" behind those three failure modes so
//! the rest of the stack (retry loops, degraded mode, fault injection)
//! can be tested without spawning processes; [`ScriptedRunner`] is the
//! deterministic test double that plays back a scripted sequence of
//! outcomes while recording every invocation.

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// A failed command execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The command did not finish within its deadline.
    Timeout {
        /// The deadline that was exceeded.
        limit: Duration,
    },
    /// The command could not be started at all (missing binary,
    /// fork failure).
    Spawn {
        /// The OS-level reason.
        message: String,
    },
    /// The command ran and exited non-zero.
    Failed {
        /// The exit code.
        code: i32,
        /// Captured standard error.
        stderr: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Timeout { limit } => {
                write!(f, "command timed out after {:.3}s", limit.as_secs_f64())
            }
            ExecError::Spawn { message } => write!(f, "command failed to start: {message}"),
            ExecError::Failed { code, stderr } => {
                write!(f, "command exited {code}: {}", stderr.trim_end())
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Runs a command line and returns its standard output.
///
/// Implementations: a real `std::process::Command` wrapper on a live
/// host, or [`ScriptedRunner`] in tests and simulations.
pub trait CommandRunner {
    /// Executes `argv` (program followed by arguments).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the process cannot start, exits
    /// non-zero, or exceeds the runner's deadline.
    fn run(&mut self, argv: &[&str]) -> Result<String, ExecError>;
}

impl<R: CommandRunner + ?Sized> CommandRunner for &mut R {
    fn run(&mut self, argv: &[&str]) -> Result<String, ExecError> {
        (**self).run(argv)
    }
}

/// A deterministic [`CommandRunner`] that replays a scripted sequence of
/// outcomes and records every invocation — the harness for exercising
/// every retry/timeout path without a real shell.
#[derive(Debug, Clone, Default)]
pub struct ScriptedRunner {
    script: VecDeque<Result<String, ExecError>>,
    calls: Vec<Vec<String>>,
}

impl ScriptedRunner {
    /// An empty script (every call fails with an "exhausted" spawn
    /// error).
    pub fn new() -> Self {
        ScriptedRunner::default()
    }

    /// Appends a successful outcome producing `stdout`.
    pub fn push_ok(&mut self, stdout: impl Into<String>) -> &mut Self {
        self.script.push_back(Ok(stdout.into()));
        self
    }

    /// Appends a failure outcome.
    pub fn push_err(&mut self, err: ExecError) -> &mut Self {
        self.script.push_back(Err(err));
        self
    }

    /// Every invocation so far, oldest first.
    pub fn calls(&self) -> &[Vec<String>] {
        &self.calls
    }

    /// Outcomes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl CommandRunner for ScriptedRunner {
    fn run(&mut self, argv: &[&str]) -> Result<String, ExecError> {
        self.calls
            .push(argv.iter().map(|s| s.to_string()).collect());
        self.script.pop_front().unwrap_or_else(|| {
            Err(ExecError::Spawn {
                message: "scripted runner exhausted".to_string(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_runner_replays_in_order_and_records_calls() {
        let mut r = ScriptedRunner::new();
        r.push_ok("ESTAB ...")
            .push_err(ExecError::Timeout {
                limit: Duration::from_millis(200),
            })
            .push_err(ExecError::Failed {
                code: 2,
                stderr: "RTNETLINK answers: Invalid argument\n".into(),
            });
        assert_eq!(r.run(&["ss", "-i"]).unwrap(), "ESTAB ...");
        assert!(matches!(
            r.run(&["ss", "-i"]),
            Err(ExecError::Timeout { .. })
        ));
        let failed = r.run(&["ip", "route", "replace"]).unwrap_err();
        assert_eq!(
            failed.to_string(),
            "command exited 2: RTNETLINK answers: Invalid argument"
        );
        assert_eq!(r.calls().len(), 3);
        assert_eq!(r.calls()[0], vec!["ss", "-i"]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn exhausted_script_fails_to_spawn() {
        let mut r = ScriptedRunner::new();
        assert!(matches!(r.run(&["ss"]), Err(ExecError::Spawn { .. })));
    }

    #[test]
    fn errors_render_for_operators() {
        let t = ExecError::Timeout {
            limit: Duration::from_millis(250),
        };
        assert_eq!(t.to_string(), "command timed out after 0.250s");
        let s = ExecError::Spawn {
            message: "No such file or directory".into(),
        };
        assert!(s.to_string().contains("failed to start"));
    }
}
