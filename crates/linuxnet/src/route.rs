//! A Linux-style IPv4 routing table with longest-prefix-match lookup and
//! per-route TCP attributes (`initcwnd`, `initrwnd`).
//!
//! This is the kernel structure Riptide manipulates: since Linux refuses a
//! per-socket initial-congestion-window API (§III-C), the only sanctioned
//! control point is a route attribute, and Riptide therefore installs one
//! route per destination it has learned about. The table implements the
//! semantics of `ip route add/replace/del` plus longest-prefix-match
//! lookup, backed by the compressed multibit trie in [`crate::lpm`] so it
//! stays fast at a million learned prefixes.

use std::fmt;
use std::net::Ipv4Addr;

use crate::lpm::LpmTrie;
use crate::prefix::Ipv4Prefix;

/// Route origin, mirroring `ip route`'s `proto` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouteProto {
    /// Installed by an administrator or tool (`proto static`) — what
    /// Riptide uses.
    #[default]
    Static,
    /// Installed by the kernel (`proto kernel`), e.g. connected subnets.
    Kernel,
    /// Installed at boot (`proto boot`).
    Boot,
}

impl fmt::Display for RouteProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteProto::Static => "static",
            RouteProto::Kernel => "kernel",
            RouteProto::Boot => "boot",
        };
        f.write_str(s)
    }
}

/// Attributes carried by a route.
///
/// Only the attributes the paper's tool touches are modelled; `initcwnd`
/// is the one Riptide exists to set, and §III-C requires `initrwnd` be
/// raised alongside it on receivers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteAttrs {
    /// Next hop (`via`).
    pub via: Option<Ipv4Addr>,
    /// Output device (`dev`).
    pub dev: Option<String>,
    /// Route origin (`proto`).
    pub proto: RouteProto,
    /// Initial congestion window for new connections over this route, in
    /// segments.
    pub initcwnd: Option<u32>,
    /// Initial receive window advertised for connections over this route,
    /// in segments.
    pub initrwnd: Option<u32>,
}

impl RouteAttrs {
    /// Attributes for a Riptide-style static route with the given
    /// initcwnd.
    pub fn initcwnd(window: u32) -> Self {
        RouteAttrs {
            initcwnd: Some(window),
            ..RouteAttrs::default()
        }
    }
}

/// One routing-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Attributes.
    pub attrs: RouteAttrs,
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix)?;
        if let Some(dev) = &self.attrs.dev {
            write!(f, " dev {dev}")?;
        }
        write!(f, " proto {}", self.attrs.proto)?;
        if let Some(w) = self.attrs.initcwnd {
            write!(f, " initcwnd {w}")?;
        }
        if let Some(w) = self.attrs.initrwnd {
            write!(f, " initrwnd {w}")?;
        }
        if let Some(via) = self.attrs.via {
            write!(f, " via {via}")?;
        }
        Ok(())
    }
}

/// An error produced when parsing a route line from `ip route show`
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouteError {
    message: String,
}

impl ParseRouteError {
    fn new(message: impl Into<String>) -> Self {
        ParseRouteError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid route line: {}", self.message)
    }
}

impl std::error::Error for ParseRouteError {}

impl std::str::FromStr for Route {
    type Err = ParseRouteError;

    /// Parses one `ip route show` line, e.g.
    /// `10.0.0.127 dev eth0 proto static initcwnd 80 via 10.0.0.1`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut toks = s.split_whitespace();
        let prefix_tok = toks
            .next()
            .ok_or_else(|| ParseRouteError::new("empty line"))?;
        let prefix: crate::prefix::Ipv4Prefix = prefix_tok
            .parse()
            .map_err(|e| ParseRouteError::new(format!("{e}")))?;
        let mut attrs = RouteAttrs::default();
        while let Some(key) = toks.next() {
            let mut value = |k: &str| {
                toks.next()
                    .ok_or_else(|| ParseRouteError::new(format!("{k} needs a value")))
            };
            match key {
                "dev" => attrs.dev = Some(value("dev")?.to_string()),
                "via" => {
                    let v = value("via")?;
                    attrs.via = Some(
                        v.parse()
                            .map_err(|e| ParseRouteError::new(format!("bad via {v:?}: {e}")))?,
                    );
                }
                "proto" => {
                    attrs.proto = match value("proto")? {
                        "static" => RouteProto::Static,
                        "kernel" => RouteProto::Kernel,
                        "boot" => RouteProto::Boot,
                        other => {
                            return Err(ParseRouteError::new(format!("unknown proto {other:?}")))
                        }
                    };
                }
                "initcwnd" => {
                    let v = value("initcwnd")?;
                    attrs.initcwnd =
                        Some(v.parse().map_err(|e| {
                            ParseRouteError::new(format!("bad initcwnd {v:?}: {e}"))
                        })?);
                }
                "initrwnd" => {
                    let v = value("initrwnd")?;
                    attrs.initrwnd =
                        Some(v.parse().map_err(|e| {
                            ParseRouteError::new(format!("bad initrwnd {v:?}: {e}"))
                        })?);
                }
                other => return Err(ParseRouteError::new(format!("unknown attribute {other:?}"))),
            }
        }
        Ok(Route { prefix, attrs })
    }
}

/// Errors from route-table mutations, matching the errno surface of the
/// real `ip` tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// `ip route add` on an existing prefix (`EEXIST: File exists`).
    AlreadyExists(Ipv4Prefix),
    /// `ip route del` on a missing prefix (`ESRCH: No such process`).
    NotFound(Ipv4Prefix),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::AlreadyExists(p) => write!(f, "route to {p} already exists"),
            RouteError::NotFound(p) => write!(f, "no route to {p}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// An IPv4 routing table with longest-prefix-match lookup.
///
/// # Examples
///
/// ```
/// use riptide_linuxnet::route::{RouteAttrs, RouteTable};
/// use riptide_linuxnet::prefix::Ipv4Prefix;
/// use std::net::Ipv4Addr;
///
/// let mut table = RouteTable::new();
/// table.add(Ipv4Prefix::default_route(), RouteAttrs::default())?;
/// table.add("10.0.1.0/24".parse()?, RouteAttrs::initcwnd(80))?;
///
/// // LPM: the /24 wins over the default route.
/// let route = table.lookup(Ipv4Addr::new(10, 0, 1, 9)).unwrap();
/// assert_eq!(route.attrs.initcwnd, Some(80));
/// assert_eq!(table.initcwnd_for(Ipv4Addr::new(10, 9, 9, 9)), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// Prefix → index into `routes`. The trie answers containment and
    /// LPM; the `routes` vec owns the entries and preserves insertion
    /// order for [`RouteTable::iter`].
    trie: LpmTrie<u32>,
    routes: Vec<Option<Route>>,
    len: usize,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no routes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resident bytes of the lookup structure (not the routes
    /// themselves) — the number the `megacdn` bench budgets against.
    pub fn lpm_mem_bytes(&self) -> usize {
        self.trie.mem_bytes()
    }

    fn next_index(&self) -> u32 {
        u32::try_from(self.routes.len()).expect("route arena exceeds u32 indices")
    }

    /// Installs a new route (`ip route add`).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::AlreadyExists`] if a route to exactly this
    /// prefix is present, as the real tool does.
    pub fn add(&mut self, prefix: Ipv4Prefix, attrs: RouteAttrs) -> Result<(), RouteError> {
        if self.trie.get(&prefix).is_some() {
            return Err(RouteError::AlreadyExists(prefix));
        }
        let idx = self.next_index();
        self.routes.push(Some(Route { prefix, attrs }));
        self.trie.insert(prefix, idx);
        self.len += 1;
        Ok(())
    }

    /// Installs or overwrites a route (`ip route replace`). Returns the
    /// previous route if one existed.
    pub fn replace(&mut self, prefix: Ipv4Prefix, attrs: RouteAttrs) -> Option<Route> {
        let idx = self.next_index();
        self.routes.push(Some(Route { prefix, attrs }));
        match self.trie.insert(prefix, idx) {
            Some(old_idx) => self.routes[old_idx as usize].take(),
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// Removes the route to exactly `prefix` (`ip route del`).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::NotFound`] if no such route exists.
    pub fn del(&mut self, prefix: Ipv4Prefix) -> Result<Route, RouteError> {
        match self.trie.remove(&prefix) {
            Some(idx) => {
                self.len -= 1;
                Ok(self.routes[idx as usize]
                    .take()
                    .expect("route slot populated"))
            }
            None => Err(RouteError::NotFound(prefix)),
        }
    }

    /// Returns the route to exactly `prefix`, if installed.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&Route> {
        let idx = *self.trie.get(&prefix)?;
        self.routes[idx as usize].as_ref()
    }

    /// Longest-prefix-match lookup: the most specific route covering
    /// `addr`.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&Route> {
        let (_, &idx) = self.trie.lookup(addr)?;
        self.routes[idx as usize].as_ref()
    }

    /// The effective initial congestion window for new connections to
    /// `addr`: the `initcwnd` attribute of its longest-prefix-match route,
    /// if any. This is the exact question the kernel asks at connect time.
    pub fn initcwnd_for(&self, addr: Ipv4Addr) -> Option<u32> {
        self.lookup(addr).and_then(|r| r.attrs.initcwnd)
    }

    /// Iterates installed routes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter().filter_map(|r| r.as_ref())
    }

    /// Removes every route of the given protocol, returning them —
    /// `ip route flush proto <p>`. The operational tool for a restarting
    /// agent to clear whatever its dead predecessor installed.
    pub fn flush_proto(&mut self, proto: RouteProto) -> Vec<Route> {
        let prefixes: Vec<Ipv4Prefix> = self
            .iter()
            .filter(|r| r.attrs.proto == proto)
            .map(|r| r.prefix)
            .collect();
        prefixes
            .into_iter()
            .map(|p| self.del(p).expect("route listed a moment ago"))
            .collect()
    }

    /// Renders the table in `ip route show` style, one route per line,
    /// in insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.iter() {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses `ip route show`-style text into a table — how a real agent
    /// would ingest the current kernel state at startup before
    /// recovering stale routes.
    ///
    /// # Errors
    ///
    /// Returns the first line's parse failure, or an
    /// [`RouteError::AlreadyExists`]-derived parse error on duplicate
    /// prefixes.
    pub fn parse(text: &str) -> Result<Self, ParseRouteError> {
        let mut table = RouteTable::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let route: Route = line.parse()?;
            table
                .add(route.prefix, route.attrs)
                .map_err(|e| ParseRouteError::new(e.to_string()))?;
        }
        Ok(table)
    }

    /// Parses `ip route show`-style text, salvaging every line that
    /// parses instead of failing on the first defect — the ingestion
    /// mode the reconciler's audit loop needs, since a real kernel dump
    /// contains routes (and attributes) installed by other tools that
    /// this model does not cover. Returns one error per skipped line, in
    /// input order; `parse_lossy(t).1.is_empty()` exactly when
    /// [`RouteTable::parse`] succeeds.
    pub fn parse_lossy(text: &str) -> (Self, Vec<ParseRouteError>) {
        let mut table = RouteTable::new();
        let mut errors = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match line.parse::<Route>() {
                Ok(route) => {
                    if let Err(e) = table.add(route.prefix, route.attrs) {
                        errors.push(ParseRouteError::new(e.to_string()));
                    }
                }
                Err(e) => errors.push(e),
            }
        }
        (table, errors)
    }

    /// Dumps the kernel's current route state by running
    /// `ip route show` through a [`CommandRunner`] and parsing the
    /// output lossily — the live seam the reconciler audits through on a
    /// real host. Unparseable lines are returned alongside the table so
    /// the caller can count (but never touch) foreign state.
    ///
    /// # Errors
    ///
    /// Returns the [`ExecError`] when the command itself fails; parse
    /// defects are not errors at this level.
    ///
    /// [`CommandRunner`]: crate::exec::CommandRunner
    /// [`ExecError`]: crate::exec::ExecError
    pub fn dump_via(
        runner: &mut impl crate::exec::CommandRunner,
    ) -> Result<(Self, Vec<ParseRouteError>), crate::exec::ExecError> {
        let stdout = runner.run(&["ip", "route", "show"])?;
        Ok(RouteTable::parse_lossy(&stdout))
    }
}

impl<'a> IntoIterator for &'a RouteTable {
    type Item = &'a Route;
    type IntoIter = Box<dyn Iterator<Item = &'a Route> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn add_get_del_round_trip() {
        let mut t = RouteTable::new();
        t.add(p("10.0.0.127"), RouteAttrs::initcwnd(80)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.127")).unwrap().attrs.initcwnd, Some(80));
        let removed = t.del(p("10.0.0.127")).unwrap();
        assert_eq!(removed.attrs.initcwnd, Some(80));
        assert!(t.is_empty());
    }

    #[test]
    fn add_duplicate_fails_like_ip() {
        let mut t = RouteTable::new();
        t.add(p("10.0.0.0/24"), RouteAttrs::default()).unwrap();
        let err = t.add(p("10.0.0.99/24"), RouteAttrs::default()).unwrap_err();
        assert_eq!(err, RouteError::AlreadyExists(p("10.0.0.0/24")));
    }

    #[test]
    fn del_missing_fails_like_ip() {
        let mut t = RouteTable::new();
        assert_eq!(
            t.del(p("10.0.0.0/24")).unwrap_err(),
            RouteError::NotFound(p("10.0.0.0/24"))
        );
    }

    #[test]
    fn replace_overwrites_and_reports_old() {
        let mut t = RouteTable::new();
        assert!(t.replace(p("10.0.0.1"), RouteAttrs::initcwnd(50)).is_none());
        let old = t.replace(p("10.0.0.1"), RouteAttrs::initcwnd(90)).unwrap();
        assert_eq!(old.attrs.initcwnd, Some(50));
        assert_eq!(t.len(), 1);
        assert_eq!(t.initcwnd_for(ip("10.0.0.1")), Some(90));
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = RouteTable::new();
        t.add(Ipv4Prefix::default_route(), RouteAttrs::initcwnd(10))
            .unwrap();
        t.add(p("10.0.0.0/8"), RouteAttrs::initcwnd(20)).unwrap();
        t.add(p("10.1.0.0/16"), RouteAttrs::initcwnd(40)).unwrap();
        t.add(p("10.1.2.0/24"), RouteAttrs::initcwnd(80)).unwrap();
        t.add(p("10.1.2.3"), RouteAttrs::initcwnd(160)).unwrap();

        assert_eq!(t.initcwnd_for(ip("10.1.2.3")), Some(160));
        assert_eq!(t.initcwnd_for(ip("10.1.2.4")), Some(80));
        assert_eq!(t.initcwnd_for(ip("10.1.3.1")), Some(40));
        assert_eq!(t.initcwnd_for(ip("10.2.0.1")), Some(20));
        assert_eq!(t.initcwnd_for(ip("11.0.0.1")), Some(10));
    }

    #[test]
    fn lookup_without_default_route_can_miss() {
        let mut t = RouteTable::new();
        t.add(p("10.0.0.0/24"), RouteAttrs::initcwnd(44)).unwrap();
        assert!(t.lookup(ip("192.168.0.1")).is_none());
        assert_eq!(t.initcwnd_for(ip("192.168.0.1")), None);
    }

    #[test]
    fn route_without_initcwnd_yields_none() {
        let mut t = RouteTable::new();
        t.add(p("10.0.0.0/24"), RouteAttrs::default()).unwrap();
        assert!(t.lookup(ip("10.0.0.5")).is_some());
        assert_eq!(t.initcwnd_for(ip("10.0.0.5")), None);
    }

    #[test]
    fn deleting_specific_falls_back_to_covering() {
        let mut t = RouteTable::new();
        t.add(p("10.0.0.0/16"), RouteAttrs::initcwnd(30)).unwrap();
        t.add(p("10.0.1.0/24"), RouteAttrs::initcwnd(99)).unwrap();
        assert_eq!(t.initcwnd_for(ip("10.0.1.1")), Some(99));
        t.del(p("10.0.1.0/24")).unwrap();
        assert_eq!(t.initcwnd_for(ip("10.0.1.1")), Some(30));
    }

    #[test]
    fn iter_yields_live_routes_only() {
        let mut t = RouteTable::new();
        t.add(p("10.0.0.1"), RouteAttrs::initcwnd(1)).unwrap();
        t.add(p("10.0.0.2"), RouteAttrs::initcwnd(2)).unwrap();
        t.del(p("10.0.0.1")).unwrap();
        let prefixes: Vec<String> = t.iter().map(|r| r.prefix.to_string()).collect();
        assert_eq!(prefixes, vec!["10.0.0.2"]);
    }

    #[test]
    fn display_matches_ip_route_style() {
        let r = Route {
            prefix: p("10.0.0.127"),
            attrs: RouteAttrs {
                via: Some(ip("10.0.0.1")),
                dev: Some("eth0".into()),
                proto: RouteProto::Static,
                initcwnd: Some(80),
                initrwnd: None,
            },
        };
        assert_eq!(
            r.to_string(),
            "10.0.0.127 dev eth0 proto static initcwnd 80 via 10.0.0.1"
        );
    }

    #[test]
    fn flush_proto_clears_only_that_protocol() {
        let mut t = RouteTable::new();
        t.add(p("10.0.0.0/24"), RouteAttrs::default()).unwrap(); // static
        t.add(
            p("10.0.1.0/24"),
            RouteAttrs {
                proto: RouteProto::Kernel,
                ..RouteAttrs::default()
            },
        )
        .unwrap();
        t.add(p("10.0.2.1"), RouteAttrs::initcwnd(80)).unwrap(); // static
        let flushed = t.flush_proto(RouteProto::Static);
        assert_eq!(flushed.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(t.get(p("10.0.1.0/24")).is_some(), "kernel route survives");
    }

    #[test]
    fn render_is_ip_route_show_shaped() {
        let mut t = RouteTable::new();
        t.add(p("10.0.2.1"), RouteAttrs::initcwnd(80)).unwrap();
        assert_eq!(t.render(), "10.0.2.1 proto static initcwnd 80\n");
    }

    #[test]
    fn render_parse_round_trip() {
        let mut t = RouteTable::new();
        t.add(
            p("10.0.0.127"),
            RouteAttrs {
                via: Some(ip("10.0.0.1")),
                dev: Some("eth0".into()),
                proto: RouteProto::Static,
                initcwnd: Some(80),
                initrwnd: Some(200),
            },
        )
        .unwrap();
        t.add(
            p("10.9.0.0/16"),
            RouteAttrs {
                proto: RouteProto::Kernel,
                ..RouteAttrs::default()
            },
        )
        .unwrap();
        let parsed = RouteTable::parse(&t.render()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.initcwnd_for(ip("10.0.0.127")), Some(80));
        assert_eq!(
            parsed.get(p("10.0.0.127")).unwrap().attrs,
            t.get(p("10.0.0.127")).unwrap().attrs
        );
        assert_eq!(parsed.render(), t.render());
    }

    #[test]
    fn parse_rejects_garbage_lines() {
        assert!(RouteTable::parse("10.0.0.1 proto warp\n").is_err());
        assert!(RouteTable::parse("notanip proto static\n").is_err());
        assert!(RouteTable::parse("10.0.0.1 initcwnd\n").is_err());
        // Duplicate prefixes in show output would be a kernel bug; we
        // reject them.
        let dup = "10.0.0.1 proto static\n10.0.0.1 proto static\n";
        assert!(RouteTable::parse(dup).is_err());
        // Blank lines are tolerated.
        assert_eq!(RouteTable::parse("\n\n").unwrap().len(), 0);
    }

    #[test]
    fn parse_lossy_salvages_known_routes_among_foreign_lines() {
        // A realistic kernel dump: connected subnets, a dhcp default
        // route with attributes we don't model, and two Riptide routes.
        let dump = "default via 10.0.0.1 dev eth0 proto dhcp metric 100\n\
                    10.0.0.0/24 dev eth0 proto kernel\n\
                    10.0.1.7 proto static initcwnd 80\n\
                    10.0.1.8 proto static initcwnd 44\n";
        let (table, errors) = RouteTable::parse_lossy(dump);
        assert_eq!(errors.len(), 1, "only the dhcp line is unparseable");
        assert_eq!(table.len(), 3);
        assert_eq!(table.initcwnd_for(ip("10.0.1.7")), Some(80));
        assert!(table.get(p("10.0.0.0/24")).is_some(), "kernel route kept");
    }

    #[test]
    fn parse_lossy_agrees_with_strict_parse_on_clean_input() {
        let mut t = RouteTable::new();
        t.add(p("10.0.2.1"), RouteAttrs::initcwnd(80)).unwrap();
        let (lossy, errors) = RouteTable::parse_lossy(&t.render());
        assert!(errors.is_empty());
        assert_eq!(lossy.render(), t.render());
    }

    #[test]
    fn dump_via_runs_ip_route_show() {
        use crate::exec::ScriptedRunner;
        let mut runner = ScriptedRunner::new();
        runner.push_ok("10.0.1.7 proto static initcwnd 80\n");
        let (table, errors) = RouteTable::dump_via(&mut runner).unwrap();
        assert!(errors.is_empty());
        assert_eq!(table.len(), 1);
        assert_eq!(runner.calls()[0], vec!["ip", "route", "show"]);
        // An exhausted script means the command failed to spawn: the
        // exec error itself surfaces.
        assert!(RouteTable::dump_via(&mut runner).is_err());
    }

    #[test]
    fn many_routes_scale() {
        let mut t = RouteTable::new();
        for i in 0..1000u32 {
            let addr = Ipv4Addr::from(0x0a00_0000 + i);
            t.add(Ipv4Prefix::host(addr), RouteAttrs::initcwnd(i % 200 + 1))
                .unwrap();
        }
        assert_eq!(t.len(), 1000);
        for i in (0..1000u32).step_by(97) {
            let addr = Ipv4Addr::from(0x0a00_0000 + i);
            assert_eq!(t.initcwnd_for(addr), Some(i % 200 + 1));
        }
    }
}
