//! A compressed multibit trie for longest-prefix-match at internet
//! scale.
//!
//! The binary trie that originally backed [`RouteTable`] walks one
//! address bit per node — fine at 34 PoPs, painful at a million learned
//! prefixes (32 pointer hops and 32 potential cache misses per lookup).
//! [`LpmTrie`] is the poptrie-style replacement: a **stride-4 multibit
//! trie with stride-aligned path compression**.
//!
//! * **Stride 4**: every node fans out over the next 4 address bits
//!   (16 children), so a full-depth /32 walk is at most 8 nodes.
//! * **Internal prefix slots**: prefixes whose length ends *within* a
//!   node (0–4 bits past the node's depth) are stored in a 31-slot
//!   array inside the node (`1 + 2 + 4 + 8 + 16` slots for relative
//!   lengths 0..=4), so sibling /32s pack 16-to-a-node instead of one
//!   leaf each.
//! * **Path compression**: a node may skip a run of address bits shared
//!   by everything beneath it (`skip_len`, always a multiple of the
//!   stride so splits happen on stride boundaries). A lone /32 under an
//!   otherwise-empty /8 costs 3 nodes, not 8.
//! * **Arena storage**: nodes live in a `Vec` addressed by `u32`
//!   indices with a free list, which keeps the structure compact,
//!   cache-friendly, and accountable — [`LpmTrie::mem_bytes`] is the
//!   peak-table-bytes number the `megacdn` bench records.
//!
//! The trie is generic over its value type: [`RouteTable`] stores route
//! indices, the mega-CDN bench stores learned windows directly.
//!
//! [`RouteTable`]: crate::route::RouteTable
//!
//! # Examples
//!
//! ```
//! use riptide_linuxnet::lpm::LpmTrie;
//! use riptide_linuxnet::prefix::Ipv4Prefix;
//! use std::net::Ipv4Addr;
//!
//! let mut trie: LpmTrie<u32> = LpmTrie::new();
//! trie.insert(Ipv4Prefix::default_route(), 10);
//! trie.insert("10.0.1.0/24".parse()?, 40);
//! trie.insert("10.0.1.7".parse()?, 80);
//!
//! // Longest prefix wins: /32 over /24 over /0.
//! let (prefix, window) = trie.lookup(Ipv4Addr::new(10, 0, 1, 7)).unwrap();
//! assert_eq!((prefix.len(), *window), (32, 80));
//! let (prefix, window) = trie.lookup(Ipv4Addr::new(10, 0, 1, 9)).unwrap();
//! assert_eq!((prefix.len(), *window), (24, 40));
//! assert_eq!(trie.lookup(Ipv4Addr::new(192, 0, 2, 1)).map(|(_, w)| *w), Some(10));
//!
//! assert_eq!(trie.remove(&"10.0.1.7".parse()?), Some(80));
//! assert_eq!(trie.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::net::Ipv4Addr;

use crate::prefix::Ipv4Prefix;

/// Address bits consumed per trie level.
const STRIDE: u8 = 4;
/// Children per node: `2^STRIDE`.
const FANOUT: usize = 1 << STRIDE;
/// Internal prefix slots per node: one per (relative length, value)
/// pair for relative lengths `0..=STRIDE`, i.e. `2^(STRIDE+1) - 1`.
const INTERNAL_SLOTS: usize = (1 << (STRIDE + 1)) - 1;
/// Sentinel child index meaning "no child".
const NO_CHILD: u32 = u32::MAX;

/// The bits of `bits` at absolute positions `[pos, pos + len)`,
/// most-significant-bit first, returned right-aligned.
#[inline]
fn bits_at(bits: u32, pos: u8, len: u8) -> u32 {
    debug_assert!(pos + len <= 32);
    if len == 0 {
        0
    } else {
        ((u64::from(bits) >> (32 - pos - len)) & ((1u64 << len) - 1)) as u32
    }
}

/// The internal-array slot for a prefix ending `rel` bits into a node
/// with value `value` on those bits: levels pack as `1 + 2 + 4 + …`.
#[inline]
fn slot_index(rel: u8, value: u32) -> usize {
    debug_assert!(rel <= STRIDE && u64::from(value) < (1u64 << rel));
    ((1usize << rel) - 1) + value as usize
}

/// One arena node. `skip_len` bits (a multiple of [`STRIDE`]) shared by
/// everything below are compressed into `skip_bits`; prefixes ending
/// 0..=[`STRIDE`] bits past the skip live in `internal`; longer ones
/// descend through `children` on the next [`STRIDE`] bits.
#[derive(Debug, Clone)]
struct Node<T> {
    skip_len: u8,
    skip_bits: u32,
    internal: [Option<T>; INTERNAL_SLOTS],
    children: [u32; FANOUT],
}

impl<T> Node<T> {
    fn empty() -> Self {
        Node {
            skip_len: 0,
            skip_bits: 0,
            internal: std::array::from_fn(|_| None),
            children: [NO_CHILD; FANOUT],
        }
    }

    fn is_unused(&self) -> bool {
        self.internal.iter().all(Option::is_none) && self.children.iter().all(|&c| c == NO_CHILD)
    }
}

/// A compressed stride-4 multibit trie mapping IPv4 prefixes to values,
/// with longest-prefix-match lookup. See the [module docs](self) for
/// the layout.
#[derive(Debug, Clone)]
pub struct LpmTrie<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for LpmTrie<T> {
    fn default() -> Self {
        LpmTrie::new()
    }
}

impl<T> LpmTrie<T> {
    /// Creates an empty trie (one root node, no prefixes).
    pub fn new() -> Self {
        LpmTrie {
            nodes: vec![Node::empty()],
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live arena nodes (allocated minus freed) — the structure the
    /// memory budget in DESIGN.md is worked from.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Resident bytes of the trie structure itself (arena + free list;
    /// heap owned by the values is not visible from here).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.capacity() * std::mem::size_of::<Node<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    fn alloc(&mut self, node: Node<T>) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                let idx = u32::try_from(self.nodes.len()).expect("trie arena exceeds u32 indices");
                assert_ne!(idx, NO_CHILD, "trie arena exhausted");
                self.nodes.push(node);
                idx
            }
        }
    }

    /// A maximally compressed leaf holding `prefix`'s tail from
    /// absolute bit `depth` on: the skip absorbs all but the last
    /// 1..=[`STRIDE`] bits, which index an internal slot.
    fn make_leaf(&mut self, bits: u32, depth: u8, plen: u8, value: T) -> u32 {
        let rem = plen - depth;
        debug_assert!(rem >= 1);
        let skip_len = (rem - 1) & !(STRIDE - 1);
        let rel = rem - skip_len;
        let mut node = Node::empty();
        node.skip_len = skip_len;
        node.skip_bits = bits_at(bits, depth, skip_len);
        node.internal[slot_index(rel, bits_at(bits, depth + skip_len, rel))] = Some(value);
        self.alloc(node)
    }

    /// Inserts `prefix → value`, returning the previous value if the
    /// prefix was already present (`ip route replace` semantics).
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let bits = prefix.raw_bits();
        let plen = prefix.len();
        let mut idx = 0u32;
        let mut depth = 0u8;
        loop {
            let (skip_len, skip_bits) = {
                let n = &self.nodes[idx as usize];
                (n.skip_len, n.skip_bits)
            };
            let rem = plen - depth;
            // Leading bits on which the prefix tail and the skip agree.
            let m = rem.min(skip_len);
            let ours = bits_at(bits, depth, m);
            let theirs = if m == 0 {
                0
            } else {
                skip_bits >> (skip_len - m)
            };
            let diff = ours ^ theirs;
            let common = if diff == 0 {
                m
            } else {
                diff.leading_zeros() as u8 - (32 - m)
            };

            if common == skip_len {
                // The whole skip matched (so rem >= skip_len): the
                // prefix ends in this node or descends through a child.
                let below = depth + skip_len;
                let rem = rem - skip_len;
                if rem <= STRIDE {
                    let slot = slot_index(rem, bits_at(bits, below, rem));
                    let old = self.nodes[idx as usize].internal[slot].replace(value);
                    if old.is_none() {
                        self.len += 1;
                    }
                    return old;
                }
                let branch = bits_at(bits, below, STRIDE) as usize;
                let child = self.nodes[idx as usize].children[branch];
                if child != NO_CHILD {
                    idx = child;
                    depth = below + STRIDE;
                    continue;
                }
                let leaf = self.make_leaf(bits, below + STRIDE, plen, value);
                self.nodes[idx as usize].children[branch] = leaf;
                self.len += 1;
                return None;
            }

            // Divergence (or prefix end) inside the skip: split it at
            // the last stride boundary the prefix still agrees on. The
            // node keeps the head of the skip; its old contents move to
            // a freshly allocated tail child.
            let head_len = common & !(STRIDE - 1);
            let tail_skip = skip_len - head_len - STRIDE;
            let tail_branch = bits_at(skip_bits << (32 - skip_len), head_len, STRIDE) as usize;
            let tail = {
                let node = &mut self.nodes[idx as usize];
                let tail = Node {
                    skip_len: tail_skip,
                    skip_bits: if tail_skip == 0 {
                        0
                    } else {
                        skip_bits & ((1u32 << tail_skip) - 1)
                    },
                    internal: std::mem::replace(&mut node.internal, std::array::from_fn(|_| None)),
                    children: std::mem::replace(&mut node.children, [NO_CHILD; FANOUT]),
                };
                node.skip_len = head_len;
                node.skip_bits = if head_len == 0 {
                    0
                } else {
                    skip_bits >> (skip_len - head_len)
                };
                tail
            };
            let tail_idx = self.alloc(tail);
            self.nodes[idx as usize].children[tail_branch] = tail_idx;

            let below = depth + head_len;
            let rem = plen - below;
            if rem <= STRIDE {
                let slot = slot_index(rem, bits_at(bits, below, rem));
                self.nodes[idx as usize].internal[slot] = Some(value);
            } else {
                // The prefix's next stride must differ from the tail's
                // (otherwise `common` would have reached it).
                let branch = bits_at(bits, below, STRIDE) as usize;
                debug_assert_ne!(branch, tail_branch);
                let leaf = self.make_leaf(bits, below + STRIDE, plen, value);
                self.nodes[idx as usize].children[branch] = leaf;
            }
            self.len += 1;
            return None;
        }
    }

    /// Walks to the node and internal slot where `prefix` would live.
    fn locate(
        &self,
        prefix: &Ipv4Prefix,
        path: Option<&mut Vec<(u32, usize)>>,
    ) -> Option<(u32, usize)> {
        let bits = prefix.raw_bits();
        let plen = prefix.len();
        let mut path = path;
        let mut idx = 0u32;
        let mut depth = 0u8;
        loop {
            let node = &self.nodes[idx as usize];
            let rem = plen - depth;
            if rem < node.skip_len || bits_at(bits, depth, node.skip_len) != node.skip_bits {
                return None;
            }
            let below = depth + node.skip_len;
            let rem = rem - node.skip_len;
            if rem <= STRIDE {
                return Some((idx, slot_index(rem, bits_at(bits, below, rem))));
            }
            let branch = bits_at(bits, below, STRIDE) as usize;
            let child = node.children[branch];
            if child == NO_CHILD {
                return None;
            }
            if let Some(p) = path.as_deref_mut() {
                p.push((idx, branch));
            }
            idx = child;
            depth = below + STRIDE;
        }
    }

    /// The value stored for exactly `prefix`, if any.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&T> {
        let (idx, slot) = self.locate(prefix, None)?;
        self.nodes[idx as usize].internal[slot].as_ref()
    }

    /// Removes the value stored for exactly `prefix`, returning it.
    /// Nodes emptied by the removal are unlinked and recycled; removal
    /// does not re-merge skips, so a remove-heavy trie may be less
    /// compressed than one built fresh (lookups stay correct either
    /// way).
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<T> {
        let mut path = Vec::new();
        let (idx, slot) = self.locate(prefix, Some(&mut path))?;
        let old = self.nodes[idx as usize].internal[slot].take();
        if old.is_some() {
            self.len -= 1;
            let mut child = idx;
            while let Some((parent, branch)) = path.pop() {
                if !self.nodes[child as usize].is_unused() {
                    break;
                }
                self.nodes[parent as usize].children[branch] = NO_CHILD;
                self.nodes[child as usize] = Node::empty();
                self.free.push(child);
                child = parent;
            }
        }
        old
    }

    /// Longest-prefix-match: the most specific stored prefix covering
    /// `addr`, with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &T)> {
        let bits = u32::from(addr);
        let mut best: Option<(u8, u32, usize)> = None;
        let mut idx = 0u32;
        let mut depth = 0u8;
        loop {
            let node = &self.nodes[idx as usize];
            if 32 - depth < node.skip_len || bits_at(bits, depth, node.skip_len) != node.skip_bits {
                break;
            }
            let below = depth + node.skip_len;
            let max_rel = STRIDE.min(32 - below);
            for rel in 0..=max_rel {
                let slot = slot_index(rel, bits_at(bits, below, rel));
                if node.internal[slot].is_some() {
                    best = Some((below + rel, idx, slot));
                }
            }
            if below >= 32 {
                break;
            }
            let child = node.children[bits_at(bits, below, STRIDE) as usize];
            if child == NO_CHILD {
                break;
            }
            idx = child;
            depth = below + STRIDE;
        }
        best.map(|(plen, idx, slot)| {
            let value = self.nodes[idx as usize].internal[slot]
                .as_ref()
                .expect("best slot recorded as occupied");
            (Ipv4Prefix::new(addr, plen), value)
        })
    }

    /// Visits every stored `(prefix, value)` pair. The order is
    /// deterministic (a fixed depth-first walk) but otherwise
    /// unspecified.
    pub fn for_each<F: FnMut(Ipv4Prefix, &T)>(&self, mut f: F) {
        self.visit(0, 0, 0, &mut f);
    }

    fn visit<F: FnMut(Ipv4Prefix, &T)>(&self, idx: u32, depth: u8, acc: u32, f: &mut F) {
        let node = &self.nodes[idx as usize];
        let acc = if node.skip_len == 0 {
            acc
        } else {
            acc | (node.skip_bits << (32 - depth - node.skip_len))
        };
        let below = depth + node.skip_len;
        for rel in 0..=STRIDE.min(32 - below) {
            for value in 0..(1u32 << rel) {
                if let Some(v) = &node.internal[slot_index(rel, value)] {
                    let bits = if rel == 0 {
                        acc
                    } else {
                        acc | (value << (32 - below - rel))
                    };
                    f(Ipv4Prefix::new(Ipv4Addr::from(bits), below + rel), v);
                }
            }
        }
        if below < 32 {
            for (branch, &child) in node.children.iter().enumerate() {
                if child != NO_CHILD {
                    let bits = acc | ((branch as u32) << (32 - below - STRIDE));
                    self.visit(child, below + STRIDE, bits, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn lookup_len(t: &LpmTrie<u32>, addr: &str) -> Option<(u8, u32)> {
        t.lookup(ip(addr)).map(|(pfx, v)| (pfx.len(), *v))
    }

    #[test]
    fn empty_trie_misses() {
        let t: LpmTrie<u32> = LpmTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("10.0.0.1")), None);
        assert_eq!(t.node_count(), 1, "just the root");
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = LpmTrie::new();
        t.insert(Ipv4Prefix::default_route(), 7u32);
        assert_eq!(lookup_len(&t, "0.0.0.0"), Some((0, 7)));
        assert_eq!(lookup_len(&t, "255.255.255.255"), Some((0, 7)));
        assert_eq!(t.get(&Ipv4Prefix::default_route()), Some(&7));
        assert_eq!(t.node_count(), 1, "stored in the root's slot 0");
    }

    #[test]
    fn longest_prefix_wins_across_all_lengths() {
        let mut t = LpmTrie::new();
        t.insert(p("0.0.0.0/0"), 0u32);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        t.insert(p("10.1.2.3"), 32);
        assert_eq!(lookup_len(&t, "10.1.2.3"), Some((32, 32)));
        assert_eq!(lookup_len(&t, "10.1.2.4"), Some((24, 24)));
        assert_eq!(lookup_len(&t, "10.1.3.1"), Some((16, 16)));
        assert_eq!(lookup_len(&t, "10.2.0.1"), Some((8, 8)));
        assert_eq!(lookup_len(&t, "11.0.0.1"), Some((0, 0)));
    }

    #[test]
    fn odd_lengths_are_exact() {
        // Lengths that do not land on stride boundaries exercise the
        // internal slot arithmetic.
        let mut t = LpmTrie::new();
        for (s, v) in [
            ("128.0.0.0/1", 1u32),
            ("192.0.0.0/3", 3),
            ("192.0.2.4/30", 30),
            ("10.0.0.0/9", 9),
            ("10.128.0.0/10", 10),
        ] {
            t.insert(p(s), v);
        }
        assert_eq!(lookup_len(&t, "192.0.2.6"), Some((30, 30)));
        assert_eq!(lookup_len(&t, "192.0.3.1"), Some((3, 3)));
        assert_eq!(lookup_len(&t, "10.1.0.1"), Some((9, 9)));
        assert_eq!(lookup_len(&t, "10.129.0.1"), Some((10, 10)));
        assert_eq!(lookup_len(&t, "160.0.0.1"), Some((1, 1)));
        assert_eq!(t.get(&p("10.0.0.0/9")), Some(&9));
        assert_eq!(t.get(&p("10.0.0.0/10")), None, "exact length only");
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = LpmTrie::new();
        assert_eq!(t.insert(p("10.0.0.1"), 50u32), None);
        assert_eq!(t.insert(p("10.0.0.1"), 90), Some(50));
        assert_eq!(t.len(), 1);
        assert_eq!(lookup_len(&t, "10.0.0.1"), Some((32, 90)));
    }

    #[test]
    fn remove_restores_covering_prefix() {
        let mut t = LpmTrie::new();
        t.insert(p("10.0.0.0/16"), 30u32);
        t.insert(p("10.0.1.0/24"), 99);
        assert_eq!(lookup_len(&t, "10.0.1.1"), Some((24, 99)));
        assert_eq!(t.remove(&p("10.0.1.0/24")), Some(99));
        assert_eq!(lookup_len(&t, "10.0.1.1"), Some((16, 30)));
        assert_eq!(t.remove(&p("10.0.1.0/24")), None, "already gone");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn removal_recycles_nodes() {
        let mut t = LpmTrie::new();
        let used_empty = t.node_count();
        for i in 0..64u32 {
            t.insert(p(&format!("10.{i}.0.1")), i);
        }
        let used_full = t.node_count();
        assert!(used_full > used_empty);
        for i in 0..64u32 {
            assert_eq!(t.remove(&p(&format!("10.{i}.0.1"))), Some(i));
        }
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1, "everything but the root recycled");
        // Reinserting reuses freed arena slots instead of growing.
        let bytes_before = t.mem_bytes();
        for i in 0..64u32 {
            t.insert(p(&format!("10.{i}.0.1")), i);
        }
        assert_eq!(t.mem_bytes(), bytes_before, "free list reused");
    }

    #[test]
    fn path_compression_keeps_sparse_tries_small() {
        let mut t = LpmTrie::new();
        t.insert(p("10.1.2.3"), 1u32);
        // A /32 under an empty trie: root + one branch + one compressed
        // leaf that skips the middle 24 bits.
        assert_eq!(t.node_count(), 2);
        // A second host in the same /28 shares the leaf's slot array.
        t.insert(p("10.1.2.5"), 2);
        assert_eq!(t.node_count(), 2);
        // A divergent host splits the skip once.
        t.insert(p("10.9.9.9"), 3);
        assert!(t.node_count() <= 4);
        assert_eq!(lookup_len(&t, "10.1.2.3"), Some((32, 1)));
        assert_eq!(lookup_len(&t, "10.1.2.5"), Some((32, 2)));
        assert_eq!(lookup_len(&t, "10.9.9.9"), Some((32, 3)));
    }

    #[test]
    fn dense_slash24_packs_sixteen_hosts_per_node() {
        let mut t = LpmTrie::new();
        for h in 0..=255u32 {
            t.insert(p(&format!("10.0.0.{h}")), h);
        }
        assert_eq!(t.len(), 256);
        // 16 depth-28 nodes of 16 internal /32s each, plus the shared
        // spine above them.
        assert!(t.node_count() <= 20, "got {}", t.node_count());
        for h in (0..=255u32).step_by(17) {
            assert_eq!(lookup_len(&t, &format!("10.0.0.{h}")), Some((32, h)));
        }
    }

    #[test]
    fn for_each_visits_every_prefix_once() {
        let mut t = LpmTrie::new();
        let want = [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.1.2.3",
            "192.0.2.4/30",
        ];
        for (i, s) in want.iter().enumerate() {
            t.insert(p(s), i as u32);
        }
        let mut seen = Vec::new();
        t.for_each(|pfx, &v| seen.push((pfx, v)));
        seen.sort();
        let mut expect: Vec<(Ipv4Prefix, u32)> = want
            .iter()
            .enumerate()
            .map(|(i, s)| (p(s), i as u32))
            .collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn mem_accounting_is_monotone_in_nodes() {
        let mut t = LpmTrie::new();
        let empty = t.mem_bytes();
        for i in 0..1024u32 {
            t.insert(Ipv4Prefix::host(Ipv4Addr::from(0x0a00_0000 + i * 257)), i);
        }
        assert!(t.mem_bytes() > empty);
        assert!(t.node_count() > 1);
    }
}
