//! The `ip route` command surface Riptide drives.
//!
//! §III-C: per-route initial congestion windows "may be set on a per-route
//! basis … intended to be done through the `ip` command-line utility". The
//! paper's Fig. 8 shows the exact invocation:
//!
//! ```text
//! ip route add 10.0.0.127 dev eth0 proto static initcwnd 80 via 10.0.0.1
//! ```
//!
//! [`IpRouteCmd`] models that command: it parses from and formats to the
//! utility's syntax and applies against a [`RouteTable`], so the agent's
//! control actions round-trip through the same text a shell deployment
//! would execute.

use std::fmt;
use std::str::FromStr;

use crate::prefix::Ipv4Prefix;
use crate::route::{Route, RouteAttrs, RouteError, RouteProto, RouteTable};

/// The verb of an `ip route` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpRouteAction {
    /// `ip route add` — fails if the route exists.
    Add,
    /// `ip route replace` — add-or-overwrite.
    Replace,
    /// `ip route del` — fails if the route is missing.
    Del,
}

impl fmt::Display for IpRouteAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpRouteAction::Add => "add",
            IpRouteAction::Replace => "replace",
            IpRouteAction::Del => "del",
        };
        f.write_str(s)
    }
}

/// A parsed `ip route` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpRouteCmd {
    /// The verb.
    pub action: IpRouteAction,
    /// Destination prefix (a bare address means a /32 host route).
    pub prefix: Ipv4Prefix,
    /// Attributes following the prefix.
    pub attrs: RouteAttrs,
}

impl IpRouteCmd {
    /// The Riptide command: install-or-update a static route carrying an
    /// initial congestion window (uses `replace` so repeated updates
    /// succeed).
    pub fn set_initcwnd(prefix: Ipv4Prefix, window: u32) -> Self {
        IpRouteCmd {
            action: IpRouteAction::Replace,
            prefix,
            attrs: RouteAttrs {
                proto: RouteProto::Static,
                initcwnd: Some(window),
                ..RouteAttrs::default()
            },
        }
    }

    /// The expiry command: remove the route, restoring the kernel default
    /// initial window.
    pub fn del(prefix: Ipv4Prefix) -> Self {
        IpRouteCmd {
            action: IpRouteAction::Del,
            prefix,
            attrs: RouteAttrs::default(),
        }
    }

    /// Applies the command to a routing table, returning the displaced
    /// route (for `replace`/`del`), as the kernel would.
    ///
    /// # Errors
    ///
    /// Propagates [`RouteError`] exactly as the `ip` tool surfaces
    /// `EEXIST`/`ESRCH`.
    pub fn apply(&self, table: &mut RouteTable) -> Result<Option<Route>, RouteError> {
        match self.action {
            IpRouteAction::Add => {
                table.add(self.prefix, self.attrs.clone())?;
                Ok(None)
            }
            IpRouteAction::Replace => Ok(table.replace(self.prefix, self.attrs.clone())),
            IpRouteAction::Del => table.del(self.prefix).map(Some),
        }
    }
}

impl fmt::Display for IpRouteCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ip route {} {}", self.action, self.prefix)?;
        if let Some(dev) = &self.attrs.dev {
            write!(f, " dev {dev}")?;
        }
        if self.action != IpRouteAction::Del {
            write!(f, " proto {}", self.attrs.proto)?;
        }
        if let Some(w) = self.attrs.initcwnd {
            write!(f, " initcwnd {w}")?;
        }
        if let Some(w) = self.attrs.initrwnd {
            write!(f, " initrwnd {w}")?;
        }
        if let Some(via) = self.attrs.via {
            write!(f, " via {via}")?;
        }
        Ok(())
    }
}

/// Error from parsing an `ip route` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpCmdError {
    message: String,
}

impl ParseIpCmdError {
    fn new(message: impl Into<String>) -> Self {
        ParseIpCmdError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseIpCmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ip route command: {}", self.message)
    }
}

impl std::error::Error for ParseIpCmdError {}

impl FromStr for IpRouteCmd {
    type Err = ParseIpCmdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut toks = s.split_whitespace().peekable();
        if toks.next() != Some("ip") || toks.next() != Some("route") {
            return Err(ParseIpCmdError::new("must start with `ip route`"));
        }
        let action = match toks.next() {
            Some("add") => IpRouteAction::Add,
            Some("replace") => IpRouteAction::Replace,
            Some("del") | Some("delete") => IpRouteAction::Del,
            other => return Err(ParseIpCmdError::new(format!("unknown action {other:?}"))),
        };
        let prefix_tok = toks
            .next()
            .ok_or_else(|| ParseIpCmdError::new("missing destination"))?;
        let prefix: Ipv4Prefix = prefix_tok
            .parse()
            .map_err(|e| ParseIpCmdError::new(format!("{e}")))?;
        let mut attrs = RouteAttrs::default();
        while let Some(key) = toks.next() {
            let mut value = |k: &str| {
                toks.next()
                    .ok_or_else(|| ParseIpCmdError::new(format!("{k} needs a value")))
            };
            match key {
                "dev" => attrs.dev = Some(value("dev")?.to_string()),
                "via" => {
                    let v = value("via")?;
                    attrs.via = Some(
                        v.parse()
                            .map_err(|e| ParseIpCmdError::new(format!("bad via {v:?}: {e}")))?,
                    );
                }
                "proto" => {
                    attrs.proto = match value("proto")? {
                        "static" => RouteProto::Static,
                        "kernel" => RouteProto::Kernel,
                        "boot" => RouteProto::Boot,
                        other => {
                            return Err(ParseIpCmdError::new(format!("unknown proto {other:?}")))
                        }
                    };
                }
                "initcwnd" => {
                    let v = value("initcwnd")?;
                    attrs.initcwnd =
                        Some(v.parse().map_err(|e| {
                            ParseIpCmdError::new(format!("bad initcwnd {v:?}: {e}"))
                        })?);
                }
                "initrwnd" => {
                    let v = value("initrwnd")?;
                    attrs.initrwnd =
                        Some(v.parse().map_err(|e| {
                            ParseIpCmdError::new(format!("bad initrwnd {v:?}: {e}"))
                        })?);
                }
                other => return Err(ParseIpCmdError::new(format!("unknown attribute {other:?}"))),
            }
        }
        Ok(IpRouteCmd {
            action,
            prefix,
            attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// The exact command the paper prints in Fig. 8.
    const FIG8: &str = "ip route add 10.0.0.127 dev eth0 proto static initcwnd 80 via 10.0.0.1";

    #[test]
    fn parses_the_papers_fig8_command() {
        let cmd: IpRouteCmd = FIG8.parse().unwrap();
        assert_eq!(cmd.action, IpRouteAction::Add);
        assert_eq!(cmd.prefix, Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 127)));
        assert_eq!(cmd.attrs.dev.as_deref(), Some("eth0"));
        assert_eq!(cmd.attrs.proto, RouteProto::Static);
        assert_eq!(cmd.attrs.initcwnd, Some(80));
        assert_eq!(cmd.attrs.via, Some(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn format_parse_round_trip() {
        let cmd: IpRouteCmd = FIG8.parse().unwrap();
        let reparsed: IpRouteCmd = cmd.to_string().parse().unwrap();
        assert_eq!(cmd, reparsed);
    }

    #[test]
    fn apply_fig8_installs_initcwnd() {
        let cmd: IpRouteCmd = FIG8.parse().unwrap();
        let mut table = RouteTable::new();
        cmd.apply(&mut table).unwrap();
        assert_eq!(
            table.initcwnd_for(Ipv4Addr::new(10, 0, 0, 127)),
            Some(80),
            "new connections to the destination start at the learned window"
        );
    }

    #[test]
    fn set_and_del_round_trip_through_table() {
        let prefix: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
        let mut table = RouteTable::new();
        IpRouteCmd::set_initcwnd(prefix, 100)
            .apply(&mut table)
            .unwrap();
        assert_eq!(table.initcwnd_for(Ipv4Addr::new(10, 0, 1, 7)), Some(100));
        // Update in place (replace semantics).
        IpRouteCmd::set_initcwnd(prefix, 60)
            .apply(&mut table)
            .unwrap();
        assert_eq!(table.initcwnd_for(Ipv4Addr::new(10, 0, 1, 7)), Some(60));
        // TTL expiry removes the route, restoring the kernel default.
        IpRouteCmd::del(prefix).apply(&mut table).unwrap();
        assert_eq!(table.initcwnd_for(Ipv4Addr::new(10, 0, 1, 7)), None);
    }

    #[test]
    fn add_twice_surfaces_eexist() {
        let cmd: IpRouteCmd = FIG8.parse().unwrap();
        let mut table = RouteTable::new();
        cmd.apply(&mut table).unwrap();
        assert!(matches!(
            cmd.apply(&mut table),
            Err(RouteError::AlreadyExists(_))
        ));
    }

    #[test]
    fn del_missing_surfaces_esrch() {
        let mut table = RouteTable::new();
        let cmd = IpRouteCmd::del("10.9.9.9".parse().unwrap());
        assert!(matches!(
            cmd.apply(&mut table),
            Err(RouteError::NotFound(_))
        ));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "route add 10.0.0.1",
            "ip route frobnicate 10.0.0.1",
            "ip route add",
            "ip route add 10.0.0.1 initcwnd",
            "ip route add 10.0.0.1 initcwnd many",
            "ip route add 10.0.0.1 wormhole on",
            "ip route add 999.0.0.1",
        ] {
            assert!(bad.parse::<IpRouteCmd>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn delete_alias_accepted() {
        let cmd: IpRouteCmd = "ip route delete 10.0.0.1".parse().unwrap();
        assert_eq!(cmd.action, IpRouteAction::Del);
    }

    #[test]
    fn prefix_routes_parse() {
        let cmd: IpRouteCmd = "ip route replace 10.0.4.0/24 proto static initcwnd 90"
            .parse()
            .unwrap();
        assert_eq!(cmd.prefix.len(), 24);
        assert_eq!(cmd.attrs.initcwnd, Some(90));
    }
}
