//! End-to-end tests of the `riptided` binary: feed it `ss`-format
//! snapshots, check the `ip route` commands it prints.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output};

fn write_snapshot(name: &str, contents: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("riptided-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp snapshot");
    f.write_all(contents.as_bytes()).expect("write snapshot");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_riptided"))
        .args(args)
        .output()
        .expect("binary runs")
}

const SNAPSHOT_A: &str = "\
ESTAB 10.0.0.1 10.0.9.1
\t cubic cwnd:60 ssthresh:50 rtt:120.000 bytes_acked:1000000
ESTAB 10.0.0.1 10.0.9.1
\t cubic cwnd:100 rtt:118.000 bytes_acked:2000000
SYN-SENT 10.0.0.1 10.0.8.1
\t cubic cwnd:10 bytes_acked:0
";

#[test]
fn single_snapshot_prints_the_learned_route() {
    let snap = write_snapshot("single", SNAPSHOT_A);
    let out = run(&["--no-history", snap.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.trim(),
        "ip route replace 10.0.9.1 proto static initcwnd 80",
        "average of 60 and 100; SYN-SENT socket ignored"
    );
    std::fs::remove_file(snap).ok();
}

#[test]
fn ttl_expiry_emits_route_del() {
    let snap = write_snapshot("expiry-a", SNAPSHOT_A);
    let empty = write_snapshot("expiry-b", "");
    // Interval 60s, ttl 60s: the second (empty) poll happens at t=120,
    // 60s after the entry's refresh — past the TTL.
    let out = run(&[
        "--no-history",
        "--interval",
        "60",
        "--ttl",
        "60",
        snap.to_str().unwrap(),
        empty.to_str().unwrap(),
        empty.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines[0],
        "ip route replace 10.0.9.1 proto static initcwnd 80"
    );
    assert!(
        lines.contains(&"ip route del 10.0.9.1"),
        "expiry withdraws the route: {stdout}"
    );
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(empty).ok();
}

#[test]
fn cmax_clamps_output() {
    let snap = write_snapshot("clamp", SNAPSHOT_A);
    let out = run(&["--no-history", "--cmax", "50", snap.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("initcwnd 50"), "clamped: {stdout}");
    std::fs::remove_file(snap).ok();
}

#[test]
fn prefix_granularity_installs_prefix_routes() {
    let snap = write_snapshot("prefix", SNAPSHOT_A);
    let out = run(&[
        "--no-history",
        "--granularity",
        "/24",
        snap.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("ip route replace 10.0.9.0/24"),
        "PoP-wide route: {stdout}"
    );
    std::fs::remove_file(snap).ok();
}

#[test]
fn max_combine_is_selectable() {
    let snap = write_snapshot("max", SNAPSHOT_A);
    let out = run(&["--no-history", "--combine", "max", snap.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("initcwnd 100"), "max of 60/100: {stdout}");
    std::fs::remove_file(snap).ok();
}

#[test]
fn malformed_snapshot_fails_cleanly() {
    let snap = write_snapshot("bad", "WAT 10.0.0.1\n");
    let out = run(&[snap.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("riptided:"), "diagnostic printed: {stderr}");
    std::fs::remove_file(snap).ok();
}

#[test]
fn no_snapshots_is_a_usage_error() {
    let out = run(&["--cmax", "50"]);
    assert!(!out.status.success());
}

#[test]
fn unknown_flag_is_rejected() {
    let out = run(&["--frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn ewma_across_snapshots() {
    // Two polls with different windows: with alpha 0.5 the second
    // install is the midpoint.
    let a = write_snapshot(
        "ewma-a",
        "ESTAB 10.0.0.1 10.0.9.1\n\t cubic cwnd:40 bytes_acked:1\n",
    );
    let b = write_snapshot(
        "ewma-b",
        "ESTAB 10.0.0.1 10.0.9.1\n\t cubic cwnd:80 bytes_acked:1\n",
    );
    let out = run(&["--alpha", "0.5", a.to_str().unwrap(), b.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines[0],
        "ip route replace 10.0.9.1 proto static initcwnd 40"
    );
    assert_eq!(
        lines[1],
        "ip route replace 10.0.9.1 proto static initcwnd 60"
    );
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn policy_flag_selects_the_estimator() {
    // Same two polls as the EWMA test (windows 40 then 80), but under
    // the conservative p25 percentile the ring's lower sample keeps
    // winning: the learned window stays 40, so install-on-change emits
    // a single route — distinct from EWMA's 40 → 60 pair above.
    let a = write_snapshot(
        "policy-a",
        "ESTAB 10.0.0.1 10.0.9.1\n\t cubic cwnd:40 bytes_acked:1\n",
    );
    let b = write_snapshot(
        "policy-b",
        "ESTAB 10.0.0.1 10.0.9.1\n\t cubic cwnd:80 bytes_acked:1\n",
    );
    let out = run(&["--policy", "p25", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.trim(),
        "ip route replace 10.0.9.1 proto static initcwnd 40"
    );
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn bad_policy_spec_is_rejected() {
    let snap = write_snapshot("policy-bad", SNAPSHOT_A);
    let out = run(&["--policy", "vibes", snap.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad --policy"),
        "stderr names the flag"
    );
    std::fs::remove_file(snap).ok();
}

#[test]
fn metrics_flag_prints_prometheus_counters() {
    let snap = write_snapshot("metrics", SNAPSHOT_A);
    let out = run(&["--no-history", "--metrics", snap.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("riptide_ticks_total 1"), "{stderr}");
    assert!(stderr.contains("riptide_route_updates_total 1"), "{stderr}");
    std::fs::remove_file(snap).ok();
}

#[test]
fn config_file_drives_the_agent() {
    let conf = write_snapshot("conf", "history = none\ncmax = 70\ngranularity = /24\n");
    let snap = write_snapshot("conf-snap", SNAPSHOT_A);
    let out = run(&["--config", conf.to_str().unwrap(), snap.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.trim(),
        "ip route replace 10.0.9.0/24 proto static initcwnd 70",
        "prefix granularity and cmax=70 from the file"
    );
    std::fs::remove_file(conf).ok();
    std::fs::remove_file(snap).ok();
}

#[test]
fn config_file_aggregate_key_folds_siblings() {
    let conf = write_snapshot("conf-agg", "history = none\naggregate = on\n");
    let snap = write_snapshot(
        "conf-agg-snap",
        "\
ESTAB 10.0.0.1 10.0.9.1
\t cubic cwnd:80 bytes_acked:1000000
ESTAB 10.0.0.1 10.0.9.2
\t cubic cwnd:81 bytes_acked:1000000
ESTAB 10.0.0.1 10.0.9.3
\t cubic cwnd:82 bytes_acked:1000000
",
    );
    let out = run(&["--config", conf.to_str().unwrap(), snap.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout
            .lines()
            .any(|l| l == "ip route replace 10.0.9.0/24 proto static initcwnd 80"),
        "agreeing siblings fold into the covering /24 at the member minimum: {stdout}"
    );
    assert!(
        stdout.lines().any(|l| l == "ip route del 10.0.9.1"),
        "member routes are withdrawn once covered: {stdout}"
    );
    std::fs::remove_file(conf).ok();
    std::fs::remove_file(snap).ok();
}

#[test]
fn flags_override_config_file() {
    let conf = write_snapshot("conf2", "history = none\ncmax = 70\n");
    let snap = write_snapshot("conf2-snap", SNAPSHOT_A);
    let out = run(&[
        "--config",
        conf.to_str().unwrap(),
        "--cmax",
        "50",
        snap.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("initcwnd 50"), "flag wins: {stdout}");
    std::fs::remove_file(conf).ok();
    std::fs::remove_file(snap).ok();
}

#[test]
fn bad_config_file_fails_with_line_number() {
    let conf = write_snapshot("badconf", "alpha = 0.5\nwormhole = on\n");
    let out = run(&["--config", conf.to_str().unwrap(), "whatever.ss"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2"), "{stderr}");
    std::fs::remove_file(conf).ok();
}

#[cfg(unix)]
#[test]
fn sigterm_in_follow_mode_withdraws_every_route() {
    use std::io::{BufRead, BufReader, Read};

    let snap = write_snapshot("follow", SNAPSHOT_A);
    let mut child = Command::new(env!("CARGO_BIN_EXE_riptided"))
        .args(["--no-history", "--follow", snap.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");

    // Wait for the first install so the shutdown sweep has a route to
    // withdraw, then deliver SIGTERM.
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("first command printed");
    assert_eq!(
        first.trim(),
        "ip route replace 10.0.9.1 proto static initcwnd 80"
    );
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(killed.success());

    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("daemon closes stdout");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "graceful exit, not a signal death");
    assert!(
        rest.lines().any(|l| l == "ip route del 10.0.9.1"),
        "shutdown withdraws the installed route: {rest:?}"
    );
    std::fs::remove_file(snap).ok();
}

#[test]
fn metrics_file_is_written_after_each_poll() {
    let snap = write_snapshot("mf", SNAPSHOT_A);
    let mut mf = std::env::temp_dir();
    mf.push(format!("riptided-test-{}-metrics.prom", std::process::id()));
    let out = run(&[
        "--no-history",
        "--metrics-file",
        mf.to_str().unwrap(),
        snap.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&mf).expect("metrics file written");
    assert!(text.contains("riptide_ticks_total 1"), "{text}");
    assert!(text.contains("riptide_installed_routes 1"), "{text}");
    assert!(
        text.contains("# TYPE riptide_installed_window histogram"),
        "{text}"
    );
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(mf).ok();
}

#[cfg(unix)]
#[test]
fn follow_mode_shutdown_flushes_metrics_and_journal() {
    use std::io::{BufRead, BufReader, Read};

    let snap = write_snapshot("mf-follow", SNAPSHOT_A);
    let mut mf = std::env::temp_dir();
    mf.push(format!(
        "riptided-test-{}-follow-metrics.prom",
        std::process::id()
    ));
    let mut child = Command::new(env!("CARGO_BIN_EXE_riptided"))
        .args([
            "--no-history",
            "--follow",
            "--metrics-file",
            mf.to_str().unwrap(),
            snap.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");

    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("first command printed");
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(killed.success());

    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("stdout closes");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr closes");
    let status = child.wait().expect("daemon exits");
    assert!(status.success());

    // The final metrics flush runs after the withdrawal sweep, so the
    // file on disk accounts for the shutdown itself.
    let text = std::fs::read_to_string(&mf).expect("final metrics snapshot flushed");
    assert!(
        text.contains("riptide_shutdown_withdrawals_total 1"),
        "{text}"
    );
    assert!(text.contains("riptide_installed_routes 0"), "{text}");
    // And the decision journal is dumped to stderr, install first.
    assert!(stderr.contains("install w=80"), "{stderr}");
    assert!(stderr.contains("cause=shutdown"), "{stderr}");
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(mf).ok();
}

#[cfg(unix)]
#[test]
fn metrics_file_is_replaced_atomically() {
    use std::os::unix::fs::MetadataExt;

    // A scraper polling the exposition file must never observe a
    // truncated write. The daemon therefore writes a sibling temp file
    // and renames it over the target, which swaps the inode — an
    // in-place rewrite (the old bug) would keep it.
    let snap = write_snapshot("mf-atomic", SNAPSHOT_A);
    let mut mf = std::env::temp_dir();
    mf.push(format!(
        "riptided-test-{}-atomic-metrics.prom",
        std::process::id()
    ));
    std::fs::write(&mf, "# stale exposition from a previous run\n").unwrap();
    let before = std::fs::metadata(&mf).unwrap().ino();

    let out = run(&[
        "--no-history",
        "--metrics-file",
        mf.to_str().unwrap(),
        snap.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let after = std::fs::metadata(&mf).unwrap().ino();
    assert_ne!(before, after, "flush must rename a fresh file into place");
    let text = std::fs::read_to_string(&mf).unwrap();
    assert!(text.contains("riptide_ticks_total 1"), "{text}");
    assert!(!text.contains("stale exposition"), "fully replaced: {text}");
    // No temp residue next to the target.
    let dir = mf.parent().unwrap();
    let leftovers: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("atomic-metrics.prom.") && n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files cleaned up: {leftovers:?}");
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(mf).ok();
}

#[test]
fn state_file_round_trips_across_runs() {
    let snap = write_snapshot("sf-a", SNAPSHOT_A);
    let empty = write_snapshot("sf-empty", "");
    let mut sf = std::env::temp_dir();
    sf.push(format!("riptided-test-{}-state.bin", std::process::id()));
    std::fs::remove_file(&sf).ok();

    // Run 1 learns 10.0.9.1 and journals the install into the state file.
    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        snap.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(sf.exists(), "state file written");

    // Run 2 restores the learned route before its first poll: the
    // jump-start window is live again without relearning.
    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        empty.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.lines().next(),
        Some("ip route replace 10.0.9.1 proto static initcwnd 80"),
        "restore reinstalls the learned window before any poll: {stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("restored 1 route(s)"), "{stderr}");
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(empty).ok();
    std::fs::remove_file(sf).ok();
}

#[test]
fn torn_state_journal_truncates_cleanly_and_corrupt_snapshot_starts_empty() {
    let a = write_snapshot("sf-torn-a", SNAPSHOT_A);
    let b = write_snapshot(
        "sf-torn-b",
        "\
ESTAB 10.0.0.1 10.0.9.1
\t cubic cwnd:60 bytes_acked:1000000
ESTAB 10.0.0.1 10.0.9.1
\t cubic cwnd:100 bytes_acked:2000000
ESTAB 10.0.0.1 10.0.7.1
\t cubic cwnd:50 bytes_acked:1000000
",
    );
    let empty = write_snapshot("sf-torn-empty", "");
    let mut sf = std::env::temp_dir();
    sf.push(format!(
        "riptided-test-{}-torn-state.bin",
        std::process::id()
    ));
    std::fs::remove_file(&sf).ok();

    // Two polls journal two installs (10.0.9.1, then 10.0.7.1).
    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // A kill -9 mid-append: the last journal record loses its tail.
    let bytes = std::fs::read(&sf).unwrap();
    std::fs::write(&sf, &bytes[..bytes.len() - 5]).unwrap();
    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        empty.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "torn tail must not crash the daemon: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("torn journal tail"), "{stderr}");
    assert!(
        stderr.contains("restored 1 route(s)"),
        "the record before the tear survives: {stderr}"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("ip route replace 10.0.9.1"),
        "surviving route restored: {stdout}"
    );
    assert!(
        !stdout.contains("10.0.7.1"),
        "the torn record must not resurrect: {stdout}"
    );

    // A corrupt snapshot block: the daemon warns and starts empty.
    std::fs::write(&sf, b"RPTSgarbage that is not a valid snapshot").unwrap();
    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        empty.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "corrupt snapshot must not crash");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("# state: ignoring"), "{stderr}");
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
    std::fs::remove_file(empty).ok();
    std::fs::remove_file(sf).ok();
}

#[cfg(unix)]
#[test]
fn state_file_snapshot_is_replaced_atomically() {
    use std::os::unix::fs::MetadataExt;

    // Snapshot rewrites must never leave a reader (or a crash) with a
    // half-written state file: like the metrics exposition, the daemon
    // writes a pid-suffixed sibling and renames it over the target,
    // swapping the inode.
    let snap = write_snapshot("sf-atomic", SNAPSHOT_A);
    let mut sf = std::env::temp_dir();
    sf.push(format!(
        "riptided-test-{}-atomic-state.bin",
        std::process::id()
    ));
    std::fs::write(&sf, b"not a state file at all").unwrap();
    let before = std::fs::metadata(&sf).unwrap().ino();

    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        snap.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let after = std::fs::metadata(&sf).unwrap().ino();
    assert_ne!(before, after, "rewrite must rename a fresh file into place");
    // The rewritten file is a valid snapshot (next run restores it).
    let empty = write_snapshot("sf-atomic-empty", "");
    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        empty.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("restored 1 route(s)"), "{stderr}");
    // No temp residue next to the target.
    let dir = sf.parent().unwrap();
    let leftovers: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("atomic-state.bin.") && n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files cleaned up: {leftovers:?}");
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(empty).ok();
    std::fs::remove_file(sf).ok();
}

#[cfg(unix)]
#[test]
fn sigterm_writes_a_final_state_snapshot_before_withdrawing() {
    use std::io::{BufRead, BufReader, Read};

    let snap = write_snapshot("sf-term", SNAPSHOT_A);
    let mut sf = std::env::temp_dir();
    sf.push(format!(
        "riptided-test-{}-term-state.bin",
        std::process::id()
    ));
    std::fs::remove_file(&sf).ok();
    let mut child = Command::new(env!("CARGO_BIN_EXE_riptided"))
        .args([
            "--no-history",
            "--follow",
            "--state-file",
            sf.to_str().unwrap(),
            snap.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");

    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("first command printed");
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("stdout closes");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr closes");
    assert!(child.wait().expect("daemon exits").success());
    assert!(stderr.contains("final snapshot written"), "{stderr}");

    // The persisted table survives the withdrawal sweep: a second run
    // restores the route SIGTERM withdrew.
    assert!(
        rest.lines().any(|l| l == "ip route del 10.0.9.1"),
        "shutdown still withdraws: {rest:?}"
    );
    let empty = write_snapshot("sf-term-empty", "");
    let out = run(&[
        "--no-history",
        "--state-file",
        sf.to_str().unwrap(),
        empty.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("ip route replace 10.0.9.1 proto static initcwnd 80"),
        "warm restart reinstalls what the stopped daemon knew: {stdout}"
    );
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(empty).ok();
    std::fs::remove_file(sf).ok();
}

#[test]
fn trend_flag_damps_collapses() {
    let a = write_snapshot(
        "trend-a",
        "ESTAB 10.0.0.1 10.0.9.1\n\t cubic cwnd:100 bytes_acked:1\n",
    );
    let b = write_snapshot(
        "trend-b",
        "ESTAB 10.0.0.1 10.0.9.1\n\t cubic cwnd:20 bytes_acked:1\n",
    );
    // Without trend, alpha 0.7 keeps the window high after a collapse.
    let out = run(&["--alpha", "0.7", a.to_str().unwrap(), b.to_str().unwrap()]);
    let plain = String::from_utf8(out.stdout).unwrap();
    let plain_last: u32 = plain
        .lines()
        .last()
        .and_then(|l| l.split_whitespace().last())
        .and_then(|w| w.parse().ok())
        .expect("window printed");
    // With trend damping the collapse is taken seriously.
    let out = run(&[
        "--alpha",
        "0.7",
        "--trend",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    let damped = String::from_utf8(out.stdout).unwrap();
    let damped_last: u32 = damped
        .lines()
        .last()
        .and_then(|l| l.split_whitespace().last())
        .and_then(|w| w.parse().ok())
        .expect("window printed");
    assert!(
        damped_last < plain_last,
        "trend damping installs a lower window: {damped_last} vs {plain_last}"
    );
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}
