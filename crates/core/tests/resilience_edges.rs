//! Edge cases of the resilient I/O layer that the unit tests inside
//! `resilience.rs` do not pin down: the cycle budget cutting a retry
//! schedule short, the final allowed attempt deciding the outcome, and
//! an agent leaving and re-entering degraded mode across cycles.

use std::net::Ipv4Addr;

use riptide::prelude::*;
use riptide_linuxnet::route::RouteTable;
use riptide_simnet::time::{SimDuration, SimTime};

fn obs(dst: [u8; 4], cwnd: u32) -> CwndObservation {
    CwndObservation {
        dst: Ipv4Addr::from(dst),
        cwnd,
        bytes_acked: 1_000_000,
        retrans: 0,
        ecn_marks: 0,
    }
}

// ---------------------------------------------------------------------
// Budget exhausted mid-retry
// ---------------------------------------------------------------------

#[test]
fn budget_cuts_the_retry_schedule_short() {
    // agent_default allows 4 attempts (delays 50/100/200 ms), but each
    // timed-out poll costs 200 ms against a 500 ms budget: attempt 1
    // (spent 200 ms, +50 ms delay = 250) and attempt 2 (spent 450 ms)
    // fit; the 100 ms delay before attempt 3 would push past the budget,
    // so the call gives up after exactly two attempts.
    let policy = BackoffPolicy::agent_default();
    let outcome = retry_with_backoff(
        &policy,
        Some(SimDuration::from_millis(500)),
        |_e: &ObserveError| SimDuration::from_millis(200),
        |_attempt| -> Result<(), ObserveError> { Err(ObserveError::Timeout) },
    );
    assert!(outcome.result.is_err());
    assert_eq!(outcome.attempts, 2, "budget must stop the third attempt");
    // 200 (attempt 1) + 50 (backoff) + 200 (attempt 2); the never-taken
    // delay before attempt 3 is not charged.
    assert_eq!(outcome.spent, SimDuration::from_millis(450));

    // The same schedule through the observer wrapper: one logical call,
    // one retry, two timeouts, one give-up.
    let mut observer = ResilientObserver::new(
        FnFallibleObserver(|| -> Result<Vec<CwndObservation>, ObserveError> {
            Err(ObserveError::Timeout)
        }),
        policy,
        SimDuration::from_millis(200),
        SimDuration::from_millis(500),
    );
    assert!(observer.observe().is_err());
    let s = observer.stats();
    assert_eq!((s.calls, s.retries, s.timeouts, s.gave_up), (1, 1, 2, 1));
}

#[test]
fn budget_never_blocks_the_first_attempt() {
    // A budget smaller than one poll still lets the first attempt run —
    // the budget bounds *retrying*, not calling.
    let outcome = retry_with_backoff(
        &BackoffPolicy::agent_default(),
        Some(SimDuration::ZERO),
        |_e: &ObserveError| SimDuration::from_millis(200),
        |_attempt| -> Result<(), ObserveError> { Err(ObserveError::Timeout) },
    );
    assert_eq!(outcome.attempts, 1);
    assert!(outcome.result.is_err());
}

// ---------------------------------------------------------------------
// The final allowed attempt decides the outcome
// ---------------------------------------------------------------------

#[test]
fn success_on_the_final_attempt_is_a_success() {
    let policy = BackoffPolicy::agent_default();
    let max = policy.max_attempts;
    let outcome = retry_with_backoff(
        &policy,
        None,
        |_e: &ObserveError| SimDuration::ZERO,
        |attempt| {
            if attempt < max {
                Err(ObserveError::Timeout)
            } else {
                Ok(attempt)
            }
        },
    );
    assert_eq!(outcome.result, Ok(max));
    assert_eq!(outcome.attempts, max);
}

#[test]
fn timeout_on_the_final_attempt_gives_up_with_full_counts() {
    let policy = BackoffPolicy::agent_default();
    let mut observer = ResilientObserver::new(
        FnFallibleObserver(|| -> Result<Vec<CwndObservation>, ObserveError> {
            Err(ObserveError::Timeout)
        }),
        policy,
        SimDuration::from_millis(1),
        // Roomy budget: only max_attempts can end the call.
        SimDuration::from_secs(60),
    );
    assert_eq!(observer.observe(), Err(ObserveError::Timeout));
    let s = observer.stats();
    assert_eq!(s.calls, 1);
    assert_eq!(s.retries, u64::from(policy.max_attempts - 1));
    assert_eq!(s.timeouts, u64::from(policy.max_attempts));
    assert_eq!(s.gave_up, 1);

    // A later clean poll is a fresh logical call: the wrapper carries no
    // failure state across cycles.
    let mut recovered = ResilientObserver::new(
        FnFallibleObserver(|| Ok(vec![obs([10, 0, 0, 1], 40)])),
        policy,
        SimDuration::from_millis(1),
        SimDuration::from_secs(60),
    );
    assert_eq!(recovered.observe().map(|rows| rows.len()), Ok(1));
    assert_eq!(recovered.stats().gave_up, 0);
}

// ---------------------------------------------------------------------
// Degraded-mode re-entry
// ---------------------------------------------------------------------

#[test]
fn agent_reenters_degraded_mode_and_recovers_between_episodes() {
    let cfg = RiptideConfig::builder()
        .history(HistoryStrategy::None)
        .build()
        .unwrap();
    let mut agent = RiptideAgent::new(cfg).unwrap();
    agent.attach_telemetry(AgentTelemetry::standalone(32));
    let mut routes = RouteTable::new();
    let policy = BackoffPolicy::none();

    // Each cycle polls through a fresh wrapper, as the deployment loop
    // does; `Ok(window)` scripts a clean poll, `Err` a dead one.
    let cycle = |agent: &mut RiptideAgent,
                 routes: &mut RouteTable,
                 t: u64,
                 poll: Result<u32, ObserveError>| {
        let mut observer = ResilientObserver::new(
            FnFallibleObserver(|| poll.clone().map(|w| vec![obs([10, 0, 7, 1], w)])),
            policy,
            SimDuration::from_millis(200),
            SimDuration::from_secs(1),
        );
        let now = SimTime::from_secs(t);
        match observer.observe() {
            Ok(rows) => {
                let mut replay = FnObserver(move || rows.clone());
                agent.tick(now, &mut replay, routes);
            }
            Err(_) => {
                agent.tick_degraded(now, routes);
            }
        }
    };

    cycle(&mut agent, &mut routes, 1, Ok(80)); // learn + install
    cycle(&mut agent, &mut routes, 2, Err(ObserveError::Timeout)); // episode 1
    assert_eq!(
        routes.initcwnd_for(Ipv4Addr::new(10, 0, 7, 1)),
        Some(80),
        "degraded cycle must not withdraw a live route"
    );
    cycle(&mut agent, &mut routes, 3, Ok(40)); // recovery relearns
    assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 7, 1)), Some(40));
    // Episode 2, still degraded when the TTL horizon passes: expiry
    // keeps running without polls.
    cycle(&mut agent, &mut routes, 4, Err(ObserveError::Timeout));
    cycle(&mut agent, &mut routes, 300, Err(ObserveError::Timeout));

    let s = agent.stats();
    assert_eq!(s.ticks, 5, "degraded cycles still count as ticks");
    assert_eq!(s.degraded_ticks, 3, "two episodes, three degraded cycles");
    assert_eq!(s.route_updates, 2, "one install per clean cycle");
    assert_eq!(s.route_expirations, 1, "TTL sweep ran while degraded");
    assert_eq!(
        routes.initcwnd_for(Ipv4Addr::new(10, 0, 7, 1)),
        None,
        "expired route withdrawn during the degraded episode"
    );
    // Telemetry mirrors the stats through both episodes.
    let snap = agent.telemetry().unwrap().registry().snapshot();
    assert_eq!(snap.value("riptide_degraded_ticks_total"), Some(3));
    assert_eq!(snap.value("riptide_route_updates_total"), Some(2));
    assert_eq!(snap.value("riptide_installed_routes"), Some(0));
}
