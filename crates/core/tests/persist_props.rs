//! Property tests for the crash-durable state codec (`riptide::persist`).
//!
//! The codec guards the warm-restart path: whatever bytes a crash, a
//! torn append, or a corrupt disk hands back, decoding must never
//! panic, never fabricate records, and replay must be idempotent so a
//! restore can safely run against an already-replayed snapshot.

use std::net::Ipv4Addr;

use proptest::collection::vec;
use proptest::prelude::*;

use riptide::guard::{BreakerState, GuardExport};
use riptide::history::HistoryState;
use riptide::persist::{
    crc32, decode_state, encode_state, JournalOp, JournalRecord, SnapshotEntry, TableSnapshot,
    JOURNAL_RECORD_BYTES,
};
use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::SimTime;

/// Expands one seed into a prefix; lengths stay in the valid 8..=32
/// band the codec accepts.
fn prefix_from(seed: u64) -> Ipv4Prefix {
    let bits = (seed >> 16) as u32;
    let len = 8 + (seed % 25) as u8;
    Ipv4Prefix::new(Ipv4Addr::from(bits), len)
}

/// Expands one seed into a snapshot entry covering every history
/// variant with finite floats (NaN would break `PartialEq`, not the
/// codec — `to_bits` round-trips any pattern).
fn entry_from(seed: u64) -> SnapshotEntry {
    let history = match (seed >> 3) % 6 {
        0 => HistoryState::Ewma { value: None },
        1 => HistoryState::Ewma {
            value: Some((seed % 10_000) as f64 / 7.0),
        },
        2 => HistoryState::None,
        3 => HistoryState::Window {
            values: (0..(seed % 5)).map(|i| (seed ^ i) as f64 % 900.0).collect(),
        },
        4 => HistoryState::Ring {
            values: (0..(seed % 7)).map(|i| (seed ^ i) as f64 % 300.0).collect(),
        },
        _ => HistoryState::Utility {
            value: (seed & 1 == 1).then(|| (seed % 5_000) as f64 / 13.0),
        },
    };
    SnapshotEntry {
        key: prefix_from(seed),
        window: 10 + (seed % 91) as u32,
        last_fresh: (seed % 100_000) as f64 / 3.0,
        last_updated: SimTime::from_nanos(seed % (1 << 40)),
        history,
    }
}

fn guard_from(seed: u64) -> GuardExport {
    GuardExport {
        key: prefix_from(seed.rotate_left(13)),
        breaker: match seed % 3 {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            _ => BreakerState::HalfOpen,
        },
        penalty: (seed % 4_000) as f64 / 11.0,
        penalty_at: SimTime::from_nanos(seed % (1 << 38)),
        clean_streak: (seed % 7) as u32,
    }
}

fn record_from(seed: u64) -> JournalRecord {
    JournalRecord {
        at: SimTime::from_nanos(seed % (1 << 41)),
        key: prefix_from(seed.rotate_right(7)),
        op: match seed % 3 {
            0 => JournalOp::Install {
                window: 10 + (seed % 91) as u32,
            },
            1 => JournalOp::Withdraw,
            _ => JournalOp::Evict,
        },
    }
}

fn snapshot_from(taken_at: u64, seeds: &[u64]) -> TableSnapshot {
    TableSnapshot {
        taken_at: SimTime::from_nanos(taken_at),
        entries: seeds.iter().map(|&s| entry_from(s)).collect(),
        installs: seeds
            .iter()
            .map(|&s| (prefix_from(s), 10 + (s % 91) as u32))
            .collect(),
        guards: seeds.iter().map(|&s| guard_from(s)).collect(),
        skipped_entries: 0,
    }
}

/// Regression for the forward-compat gap fixed alongside the policy
/// work: decoding a snapshot whose entry carries an unknown history tag
/// used to reject the *whole* snapshot
/// (`Err(Malformed("unknown history tag"))`), so a version rollback
/// lost the entire learned table. It must instead skip just that entry
/// and count the skip.
#[test]
fn unknown_history_tag_skips_entry_not_snapshot() {
    let snapshot = snapshot_from(3, &[8, 100, 201]);
    assert_eq!(snapshot.entries.len(), 3);
    let mut bytes = snapshot.encode();
    // Walk the fixed v2 layout to the first entry's history tag:
    // header = magic(4) + version(2) + taken_at(8) + 3 counts(12),
    // entry fields = prefix(5) + window(4) + fresh(8) + updated(8).
    let tag_pos = 26 + 25;
    bytes[tag_pos] = 0xEE;
    let body_len = bytes.len() - 4;
    let crc = crc32(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&crc.to_le_bytes());

    let state = decode_state(&bytes).expect("one foreign entry must not reject the snapshot");
    assert_eq!(state.snapshot.skipped_entries, 1);
    assert_eq!(state.snapshot.entries, snapshot.entries[1..]);
    assert_eq!(state.snapshot.installs, snapshot.installs);
    assert_eq!(state.snapshot.guards, snapshot.guards);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // encode → decode is the identity on any table and journal.
    #[test]
    fn state_round_trips(
        taken_at in 0u64..1 << 40,
        entry_seeds in vec(any::<u64>(), 0..24),
        journal_seeds in vec(any::<u64>(), 0..24),
    ) {
        let snapshot = snapshot_from(taken_at, &entry_seeds);
        let journal: Vec<JournalRecord> =
            journal_seeds.iter().map(|&s| record_from(s)).collect();
        let bytes = encode_state(&snapshot, &journal);
        let decoded = decode_state(&bytes);
        prop_assert!(decoded.is_ok(), "clean bytes must decode: {decoded:?}");
        let state = decoded.unwrap();
        prop_assert_eq!(&state.snapshot, &snapshot);
        prop_assert_eq!(&state.journal, &journal);
        prop_assert!(!state.torn_tail);
    }

    // Truncating anywhere — mid-snapshot, mid-record, at a boundary —
    // is rejected or cleanly torn, never a panic and never an invented
    // record.
    #[test]
    fn truncated_tail_is_rejected_without_panic(
        entry_seeds in vec(any::<u64>(), 0..12),
        journal_seeds in vec(any::<u64>(), 1..12),
        cut_seed in any::<u64>(),
    ) {
        let snapshot = snapshot_from(7, &entry_seeds);
        let journal: Vec<JournalRecord> =
            journal_seeds.iter().map(|&s| record_from(s)).collect();
        let snap_len = snapshot.encode().len();
        let bytes = encode_state(&snapshot, &journal);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match decode_state(&bytes[..cut]) {
            // A cut inside the snapshot block must not decode at all.
            Err(_) => prop_assert!(cut < snap_len),
            // A cut in the journal keeps only whole, clean records.
            Ok(state) => {
                prop_assert!(cut >= snap_len);
                let whole = (cut - snap_len) / JOURNAL_RECORD_BYTES;
                prop_assert_eq!(&state.journal[..], &journal[..whole]);
                prop_assert_eq!(state.torn_tail, !(cut - snap_len).is_multiple_of(JOURNAL_RECORD_BYTES));
            }
        }
    }

    // A single flipped bit anywhere in the file is caught by a CRC:
    // either the snapshot refuses to decode or the journal truncates
    // at the damaged record — decoded content is never wrong.
    #[test]
    fn bit_flip_never_corrupts_decoded_state(
        entry_seeds in vec(any::<u64>(), 0..12),
        journal_seeds in vec(any::<u64>(), 1..12),
        flip_seed in any::<u64>(),
    ) {
        let snapshot = snapshot_from(11, &entry_seeds);
        let journal: Vec<JournalRecord> =
            journal_seeds.iter().map(|&s| record_from(s)).collect();
        let snap_len = snapshot.encode().len();
        let mut bytes = encode_state(&snapshot, &journal);
        let pos = (flip_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << (flip_seed % 8);
        match decode_state(&bytes) {
            Err(_) => prop_assert!(pos < snap_len, "journal damage is not fatal"),
            Ok(state) => {
                prop_assert!(pos >= snap_len, "snapshot damage must not decode");
                prop_assert_eq!(&state.snapshot, &snapshot);
                let hit = (pos - snap_len) / JOURNAL_RECORD_BYTES;
                prop_assert_eq!(&state.journal[..], &journal[..hit]);
                prop_assert!(state.torn_tail, "the damaged record is dropped as torn");
            }
        }
    }

    // Replaying a journal twice lands on the same table as once:
    // installs are last-writer-wins upserts, removals are absent-ok.
    #[test]
    fn replay_is_idempotent(
        taken_at in 0u64..1 << 40,
        entry_seeds in vec(any::<u64>(), 0..16),
        journal_seeds in vec(any::<u64>(), 0..32),
    ) {
        let snapshot = snapshot_from(taken_at, &entry_seeds);
        let journal: Vec<JournalRecord> =
            journal_seeds.iter().map(|&s| record_from(s)).collect();
        let once = riptide::persist::replay(&snapshot, &journal);
        let twice = riptide::persist::replay(&once, &journal);
        prop_assert_eq!(&once, &twice);
        // And the replayed image itself round-trips.
        let bytes = encode_state(&once, &[]);
        let back = decode_state(&bytes);
        prop_assert!(back.is_ok());
        prop_assert_eq!(&back.unwrap().snapshot, &once);
    }
}
