//! # riptide
//!
//! A from-scratch implementation of **Riptide** — the tool from
//! *"Riptide: Jump-Starting Back-Office Connections in Cloud Systems"*
//! (Flores, Khakpour, Bedi — ICDCS 2016).
//!
//! Riptide observes the congestion windows of a host's live TCP
//! connections, learns a per-destination window from them, and installs
//! that value as the `initcwnd` attribute of a per-destination route, so
//! *new* connections to a known destination skip the cold part of slow
//! start and enter the network at a level the path is known to support.
//!
//! ## Anatomy
//!
//! * [`agent::RiptideAgent`] — Algorithm 1: poll → group → combine →
//!   history-blend → clamp → install, plus TTL expiry.
//! * [`config::RiptideConfig`] — Table I's parameters (`α`, `i_u`, `t`,
//!   `c_max`, `c_min`) with a builder.
//! * [`combine::CombineStrategy`] / [`history::HistoryStrategy`] /
//!   [`granularity::Granularity`] — the §III-B design alternatives
//!   (average vs max vs traffic-weighted; EWMA vs none vs windowed;
//!   host routes vs prefix routes).
//! * [`observe`] — input side: [`observe::WindowObserver`] and adapters
//!   from `ss`-style socket tables.
//! * [`control`] — output side: [`control::RouteController`] over a
//!   Linux-style routing table, logging the exact `ip route` commands a
//!   shell deployment would run.
//! * [`model`] — the paper's §II-B analytic model of slow-start round
//!   trips, driving Figures 3/4/6.
//!
//! ## Example
//!
//! ```
//! use riptide::prelude::*;
//! use riptide_linuxnet::route::RouteTable;
//! use riptide_simnet::time::SimTime;
//! use std::net::Ipv4Addr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut agent = RiptideAgent::new(RiptideConfig::deployment())?;
//! let mut routes = RouteTable::new();
//! let mut observer = FnObserver(|| vec![
//!     CwndObservation { dst: Ipv4Addr::new(10, 0, 0, 127), cwnd: 80, bytes_acked: 1 << 20 },
//! ]);
//! agent.tick(SimTime::from_secs(1), &mut observer, &mut routes);
//! // New connections to 10.0.0.127 now start at a window of 80:
//! assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 127)), Some(80));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod advisory;
pub mod agent;
pub mod combine;
pub mod config;
pub mod control;
pub mod granularity;
pub mod history;
pub mod kernel;
pub mod model;
pub mod observe;
pub mod table;
pub mod trend;

/// The types most users need, importable in one line.
pub mod prelude {
    pub use crate::advisory::Advisory;
    pub use crate::agent::{AgentStats, RiptideAgent, TickReport};
    pub use crate::combine::CombineStrategy;
    pub use crate::config::{RiptideConfig, RiptideConfigBuilder};
    pub use crate::control::{
        recover_stale_routes, ControlError, RouteController, SharedRouteController,
    };
    pub use crate::granularity::Granularity;
    pub use crate::history::HistoryStrategy;
    pub use crate::kernel::KernelAgent;
    pub use crate::observe::{
        observations_from_sock_table, CwndObservation, FnObserver, WindowObserver,
    };
    pub use crate::table::FinalTable;
    pub use crate::trend::TrendPolicy;
}
