//! # riptide
//!
//! A from-scratch implementation of **Riptide** — the tool from
//! *"Riptide: Jump-Starting Back-Office Connections in Cloud Systems"*
//! (Flores, Khakpour, Bedi — ICDCS 2016).
//!
//! Riptide observes the congestion windows of a host's live TCP
//! connections, learns a per-destination window from them, and installs
//! that value as the `initcwnd` attribute of a per-destination route, so
//! *new* connections to a known destination skip the cold part of slow
//! start and enter the network at a level the path is known to support.
//!
//! ## Module map (↔ paper sections)
//!
//! | Module | Role | Paper anchor |
//! |---|---|---|
//! | [`agent`] | [`agent::RiptideAgent`]: poll → group → combine → blend → clamp → install, TTL expiry; degraded (expiry-only) cycles | Algorithm 1; §IV-D no-harm |
//! | [`config`] | Table I parameters (`α`, `i_u`, `t`, `c_max`, `c_min`) + builder + conf-file parser | Table I |
//! | [`combine`] | Average / max / traffic-weighted group reduction | §III-B combine alternatives |
//! | [`history`] | EWMA / none / windowed history blending | §III-B history; Table I `α` |
//! | [`policy`] | [`policy::Policy`] trait over window estimators; percentile and loss-utility competitors; the arena registry | §III-B design space; ROADMAP item 4 |
//! | [`granularity`] | Host routes vs `/24` (PoP) prefix routes | §III-B granularity |
//! | [`aggregate`] | Learn at `/32`, coalesce agreeing siblings into covering routes, split on divergence | §III-B at internet scale; Pied Piper (PAPERS.md) |
//! | [`trend`] | §V trend damping (aggressive decrease on collapse) | §V |
//! | [`advisory`] | Control-plane advisories (suspend / conservative) | §V load-balancing interplay |
//! | [`guard`] | [`guard::LossGuard`]: per-destination loss-aware circuit breaker with BGP-style flap damping — demote jump-started destinations whose retransmit rate says the learned window became the harm | §IV-D no-harm, closed-loop |
//! | [`reconcile`] | Anti-entropy audit: diff the kernel route table against the agent's installed view, repair drift, never touch foreign routes | §IV-D operational safety |
//! | [`observe`] | Input seam: [`observe::WindowObserver`] (always succeeds) and [`observe::FallibleObserver`] (real `ss` polls that time out / truncate) | §III poll loop |
//! | [`control`] | Output seam: [`control::RouteController`], command logging, startup recovery, and the [`control::CheckedController`] window-range invariant | Fig. 8; §IV-D |
//! | [`resilience`] | Retry-with-backoff, per-call timeouts, budgets; `ss`/`ip` subprocess bridges | §IV-D graceful degradation |
//! | [`table`] | The TTL'd per-destination final-values table | §III "final table", Table I `t` |
//! | [`persist`] | Crash-durable state file: versioned CRC-guarded snapshot + append-only journal, torn-tail-safe replay | §IV-A ramp cost; ROADMAP item 3 |
//! | [`sync`] | Anti-entropy fleet sync primitives: table digests, bounded delta sets, deterministic newest-wins clamp-merge | Pied Piper (PAPERS.md) |
//! | [`telemetry`] | Metrics registry (counters/gauges/histograms) + bounded decision journal; Prometheus text exposition | §V operational story |
//! | [`kernel`] | The §V in-kernel event-driven variant | §V |
//! | [`model`] | §II-B analytic slow-start model (Figures 3/4/6) | §II-B |
//!
//! ## Example
//!
//! ```
//! use riptide::prelude::*;
//! use riptide_linuxnet::route::RouteTable;
//! use riptide_simnet::time::SimTime;
//! use std::net::Ipv4Addr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut agent = RiptideAgent::new(RiptideConfig::deployment())?;
//! let mut routes = RouteTable::new();
//! let mut observer = FnObserver(|| vec![
//!     CwndObservation { dst: Ipv4Addr::new(10, 0, 0, 127), cwnd: 80, bytes_acked: 1 << 20, retrans: 0, ecn_marks: 0 },
//! ]);
//! agent.tick(SimTime::from_secs(1), &mut observer, &mut routes);
//! // New connections to 10.0.0.127 now start at a window of 80:
//! assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 127)), Some(80));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod advisory;
pub mod agent;
pub mod aggregate;
pub mod combine;
pub mod config;
pub mod control;
pub mod granularity;
pub mod guard;
pub mod history;
pub mod kernel;
pub mod model;
pub mod observe;
pub mod persist;
pub mod policy;
pub mod reconcile;
pub mod resilience;
pub mod sync;
pub mod table;
pub mod telemetry;
pub mod trend;

/// The types most users need, importable in one line.
pub mod prelude {
    pub use crate::advisory::Advisory;
    pub use crate::agent::{AgentStats, RiptideAgent, TickReport};
    pub use crate::aggregate::{AggregationPass, AggregationPolicy, Aggregator};
    pub use crate::combine::CombineStrategy;
    pub use crate::config::{RiptideConfig, RiptideConfigBuilder};
    pub use crate::control::{
        recover_stale_routes, CheckedController, ControlError, RouteController,
        SharedRouteController,
    };
    pub use crate::granularity::Granularity;
    pub use crate::guard::{BreakerState, GuardConfig, GuardVerdict, LossGuard};
    pub use crate::history::HistoryStrategy;
    pub use crate::kernel::KernelAgent;
    pub use crate::observe::{
        observations_from_sock_table, CwndObservation, FallibleObserver, FnFallibleObserver,
        FnObserver, ObserveError, WindowObserver,
    };
    pub use crate::persist::{
        decode_state, encode_state, replay, JournalOp, JournalRecord, PersistError, SnapshotEntry,
        StateFile, TableSnapshot,
    };
    pub use crate::policy::{registered_policies, LearningPolicy, Policy, PolicyInput};
    pub use crate::reconcile::{audit, is_riptide_route, AuditReport, AuditVerdict};
    pub use crate::resilience::{
        retry_with_backoff, BackoffPolicy, IoStats, ResilientController, ResilientObserver,
        RetryOutcome,
    };
    pub use crate::sync::{SyncConfig, SyncDelta, SyncEntry, TableDigest};
    pub use crate::table::FinalTable;
    pub use crate::telemetry::{
        AgentTelemetry, DecisionAction, DecisionCause, DecisionJournal, DecisionRecord, IoCounters,
        MetricValue, MetricsRegistry, MetricsSnapshot,
    };
    pub use crate::trend::TrendPolicy;
}
