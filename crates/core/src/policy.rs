//! Pluggable learning policies: the window estimator behind a trait.
//!
//! The paper's deployed estimator — EWMA over the combined observation,
//! clamped into `[c_min, c_max]` — is one point in a design space §III-B
//! explicitly leaves open. This module factors that estimator behind the
//! [`Policy`] trait so competitors can race through the same agent,
//! persistence, and experiment machinery:
//!
//! * [`LearningPolicy::History`] wraps the paper's strategies
//!   ([`HistoryStrategy`]: EWMA / none / windowed mean) unchanged — the
//!   default EWMA path is arithmetically identical to the pre-trait
//!   code, which the golden digests pin.
//! * [`LearningPolicy::Percentile`] keeps a bounded ring of observed
//!   values and answers a fixed quantile of it: p25 is a conservative
//!   estimator (a window a quarter of recent observations stayed
//!   under), p75 an aggressive one.
//! * [`LearningPolicy::LossUtility`] is a Pied-Piper-style delivery
//!   score: the fresh value earns `gain` credit, discounted by
//!   `penalty × loss_rate` from the group's retransmit share, then
//!   smoothed by an EWMA. Heavy loss drives the utility down (even
//!   negative — the clamp floors it at `c_min`), so a destination that
//!   only looks fast while retransmitting never jump-starts high.
//!
//! Policies carry a stable [`Policy::name`] that flows into the decision
//! journal ([`DecisionCause::Learned`]) and bench reports, and a state
//! constructor whose variants are persisted by [`crate::persist`].
//!
//! [`DecisionCause::Learned`]: crate::telemetry::DecisionCause::Learned

use std::collections::VecDeque;

use crate::history::{HistoryState, HistoryStrategy};

/// The MSS used to convert `bytes_acked` into a segment count for loss
/// rates, matching [`crate::guard`]'s accounting.
const LOSS_MSS: u64 = 1448;

/// Everything a policy may consume from one observation group: the
/// combined fresh value plus the group's cumulative loss counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyInput {
    /// The combined (post-[`CombineStrategy`]) fresh window value.
    ///
    /// [`CombineStrategy`]: crate::combine::CombineStrategy
    pub fresh: f64,
    /// Cumulative retransmitted segments across the group.
    pub retrans: u64,
    /// Cumulative ECN-echo window reductions across the group —
    /// congestion signalled without loss. Zero when ECN is off, so
    /// policies that sum it with `retrans` are arithmetic-identical to
    /// their pre-ECN behaviour on non-ECN scenarios.
    pub ecn_marks: u64,
    /// Cumulative acknowledged bytes across the group.
    pub bytes_acked: u64,
}

impl PolicyInput {
    /// An input carrying only the fresh value (no loss signal) — what
    /// the pure history policies consume.
    pub fn fresh_only(fresh: f64) -> Self {
        PolicyInput {
            fresh,
            retrans: 0,
            ecn_marks: 0,
            bytes_acked: 0,
        }
    }
}

/// A window estimator: turns a stream of per-destination observations
/// into the pre-clamp value the agent installs.
///
/// The contract every implementation (and the cross-policy proptests in
/// `tests/invariants.rs`) must honor:
///
/// * `new_state` creates a state `observe` accepts; `observe` on a
///   state from a different policy is a caller logic error and may
///   panic.
/// * A constant loss-free input stream converges to that constant (the
///   estimator must not drift on steady evidence).
/// * The returned value is finite for finite input; the agent's clamp
///   maps anything else to `c_min`.
/// * `name` is stable across runs — it is journaled and persisted into
///   bench baselines.
pub trait Policy {
    /// A short stable identifier for journals, benches, and reports.
    fn name(&self) -> &'static str;

    /// Checks parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range parameter.
    fn validate(&self) -> Result<(), String>;

    /// Creates the per-destination state this policy updates.
    fn new_state(&self) -> HistoryState;

    /// Whether `state` is a variant this policy's `observe` accepts —
    /// the warm-restart compatibility check (a persisted state from a
    /// different policy is re-seeded, not fed in raw).
    fn state_matches(&self, state: &HistoryState) -> bool;

    /// Feeds one observation group through the estimator, returning the
    /// value to shape and clamp.
    ///
    /// # Panics
    ///
    /// May panic if `state` was created by a different policy (a logic
    /// error in the caller — see [`Policy::state_matches`]).
    fn observe(&self, state: &mut HistoryState, input: &PolicyInput) -> f64;

    /// [`Policy::observe`] with only a fresh value — the seam the
    /// pre-trait callers (kernel agent, gossip seeding, table doctests)
    /// use.
    fn blend(&self, state: &mut HistoryState, fresh: f64) -> f64 {
        self.observe(state, &PolicyInput::fresh_only(fresh))
    }
}

impl Policy for HistoryStrategy {
    fn name(&self) -> &'static str {
        HistoryStrategy::name(self)
    }

    fn validate(&self) -> Result<(), String> {
        HistoryStrategy::validate(self)
    }

    fn new_state(&self) -> HistoryState {
        HistoryStrategy::new_state(self)
    }

    fn state_matches(&self, state: &HistoryState) -> bool {
        matches!(
            (self, state),
            (HistoryStrategy::Ewma { .. }, HistoryState::Ewma { .. })
                | (HistoryStrategy::None, HistoryState::None)
                | (
                    HistoryStrategy::WindowedMean { .. },
                    HistoryState::Window { .. }
                )
        )
    }

    fn observe(&self, state: &mut HistoryState, input: &PolicyInput) -> f64 {
        // The paper's strategies are loss-blind: only the fresh value
        // feeds the blend, exactly as before the trait existed.
        HistoryStrategy::blend(self, state, input.fresh)
    }
}

/// The registered estimator competitors, as one configurable enum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearningPolicy {
    /// A paper-native history strategy (EWMA / none / windowed mean).
    History(HistoryStrategy),
    /// A fixed quantile over a bounded ring of observed values.
    Percentile {
        /// The quantile answered, in `[0, 1]` (0.25 = conservative p25,
        /// 0.75 = aggressive p75).
        fraction: f64,
        /// Ring capacity: how many recent observations are retained
        /// (1..=4096, the persistence codec's bound).
        capacity: usize,
    },
    /// Pied-Piper-style loss-utility score: `fresh × (gain − penalty ×
    /// loss_rate)`, EWMA-smoothed with weight `alpha` on history.
    LossUtility {
        /// Credit multiplier on the fresh value (1.0 = converge to the
        /// fresh value when loss-free).
        gain: f64,
        /// Penalty multiplier on the retransmit share.
        penalty: f64,
        /// EWMA weight on the historical utility, in `[0, 1]`.
        alpha: f64,
    },
}

impl Default for LearningPolicy {
    fn default() -> Self {
        LearningPolicy::History(HistoryStrategy::default())
    }
}

impl From<HistoryStrategy> for LearningPolicy {
    fn from(strategy: HistoryStrategy) -> Self {
        LearningPolicy::History(strategy)
    }
}

/// Upper bound on a percentile ring, matching the persistence codec's
/// `MAX_HISTORY_WINDOW`.
const MAX_RING: usize = 4096;

impl Policy for LearningPolicy {
    fn name(&self) -> &'static str {
        match self {
            LearningPolicy::History(s) => HistoryStrategy::name(s),
            LearningPolicy::Percentile { fraction, .. } => {
                if (fraction - 0.25).abs() < 1e-9 {
                    "p25"
                } else if (fraction - 0.5).abs() < 1e-9 {
                    "p50"
                } else if (fraction - 0.75).abs() < 1e-9 {
                    "p75"
                } else {
                    "percentile"
                }
            }
            LearningPolicy::LossUtility { .. } => "loss-utility",
        }
    }

    fn validate(&self) -> Result<(), String> {
        match *self {
            LearningPolicy::History(s) => HistoryStrategy::validate(&s),
            LearningPolicy::Percentile { fraction, capacity } => {
                if !(0.0..=1.0).contains(&fraction) || fraction.is_nan() {
                    return Err(format!(
                        "percentile fraction must be in [0, 1], got {fraction}"
                    ));
                }
                if capacity == 0 || capacity > MAX_RING {
                    return Err(format!(
                        "ring capacity must be in 1..={MAX_RING}, got {capacity}"
                    ));
                }
                Ok(())
            }
            LearningPolicy::LossUtility {
                gain,
                penalty,
                alpha,
            } => {
                if !gain.is_finite() || gain <= 0.0 {
                    return Err(format!("gain must be finite and positive, got {gain}"));
                }
                if !penalty.is_finite() || penalty < 0.0 {
                    return Err(format!(
                        "penalty must be finite and non-negative, got {penalty}"
                    ));
                }
                if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
                    return Err(format!("alpha must be in [0, 1], got {alpha}"));
                }
                Ok(())
            }
        }
    }

    fn new_state(&self) -> HistoryState {
        match *self {
            LearningPolicy::History(s) => HistoryStrategy::new_state(&s),
            LearningPolicy::Percentile { capacity, .. } => HistoryState::Ring {
                values: VecDeque::with_capacity(capacity),
            },
            LearningPolicy::LossUtility { .. } => HistoryState::Utility { value: None },
        }
    }

    fn state_matches(&self, state: &HistoryState) -> bool {
        match self {
            LearningPolicy::History(s) => Policy::state_matches(s, state),
            LearningPolicy::Percentile { .. } => matches!(state, HistoryState::Ring { .. }),
            LearningPolicy::LossUtility { .. } => matches!(state, HistoryState::Utility { .. }),
        }
    }

    fn observe(&self, state: &mut HistoryState, input: &PolicyInput) -> f64 {
        match (*self, state) {
            (LearningPolicy::History(s), state) => Policy::observe(&s, state, input),
            (LearningPolicy::Percentile { fraction, capacity }, HistoryState::Ring { values }) => {
                values.push_back(input.fresh);
                while values.len() > capacity {
                    values.pop_front();
                }
                let mut sorted: Vec<f64> = values.iter().copied().collect();
                sorted.sort_by(f64::total_cmp);
                // Nearest-rank quantile: exact on a singleton, and the
                // constant itself on a constant stream.
                let idx = ((sorted.len() - 1) as f64 * fraction).round() as usize;
                sorted[idx.min(sorted.len() - 1)]
            }
            (
                LearningPolicy::LossUtility {
                    gain,
                    penalty,
                    alpha,
                },
                HistoryState::Utility { value },
            ) => {
                // Loss rate as the retransmit share of delivered
                // segments, the same accounting the guard uses. A group
                // that acked nothing yet counts one segment so a single
                // retransmit cannot read as 100% loss.
                let segments = (input.bytes_acked / LOSS_MSS).max(1);
                // ECN echoes count as congestion events alongside
                // retransmits: a marking AQM signals overload without
                // dropping anything, and ignoring it would make the
                // utility blind to exactly the congestion this policy
                // exists to price in. With ECN off the term is zero and
                // the arithmetic is bit-identical to the pre-ECN form.
                let congestion = input.retrans + input.ecn_marks;
                let loss_rate = congestion as f64 / (congestion as f64 + segments as f64);
                let utility = input.fresh * (gain - penalty * loss_rate);
                let blended = match *value {
                    None => utility,
                    Some(prev) => alpha * prev + (1.0 - alpha) * utility,
                };
                *value = Some(blended);
                blended
            }
            (policy, state) => {
                panic!("history state {state:?} does not match policy {policy:?}")
            }
        }
    }
}

impl LearningPolicy {
    /// Parses a policy spec as written in `riptided --policy` and the
    /// conf file's `policy =` key:
    ///
    /// ```text
    /// ewma | ewma:<alpha> | ewma-fast | none | windowed:<n>
    /// p25 | p50 | p75 | percentile:<fraction>:<capacity>
    /// loss-utility | loss-utility:<gain>:<penalty>:<alpha>
    /// ```
    ///
    /// Registered competitor names ([`registered_policies`]) resolve to
    /// their registered parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unparsable token; the result
    /// is additionally [`Policy::validate`]d.
    pub fn from_spec(spec: &str) -> Result<LearningPolicy, String> {
        let spec = spec.trim();
        if let Some((_, policy)) = registered_policies().into_iter().find(|(n, _)| *n == spec) {
            return Ok(policy);
        }
        let parsed = if spec == "ewma" {
            LearningPolicy::History(HistoryStrategy::Ewma { alpha: 0.7 })
        } else if let Some(a) = spec.strip_prefix("ewma:") {
            LearningPolicy::History(HistoryStrategy::Ewma {
                alpha: a.parse().map_err(|e| format!("bad alpha: {e}"))?,
            })
        } else if spec == "none" {
            LearningPolicy::History(HistoryStrategy::None)
        } else if let Some(n) = spec.strip_prefix("windowed:") {
            LearningPolicy::History(HistoryStrategy::WindowedMean {
                window: n.parse().map_err(|e| format!("bad window: {e}"))?,
            })
        } else if spec == "p50" {
            LearningPolicy::Percentile {
                fraction: 0.5,
                capacity: 64,
            }
        } else if let Some(rest) = spec.strip_prefix("percentile:") {
            let (frac, cap) = rest
                .split_once(':')
                .ok_or("percentile needs <fraction>:<capacity>")?;
            LearningPolicy::Percentile {
                fraction: frac.parse().map_err(|e| format!("bad fraction: {e}"))?,
                capacity: cap.parse().map_err(|e| format!("bad capacity: {e}"))?,
            }
        } else if let Some(rest) = spec.strip_prefix("loss-utility:") {
            let mut parts = rest.splitn(3, ':');
            let mut next = |what: &str| {
                parts
                    .next()
                    .ok_or_else(|| format!("loss-utility missing {what}"))
            };
            LearningPolicy::LossUtility {
                gain: next("gain")?
                    .parse()
                    .map_err(|e| format!("bad gain: {e}"))?,
                penalty: next("penalty")?
                    .parse()
                    .map_err(|e| format!("bad penalty: {e}"))?,
                alpha: next("alpha")?
                    .parse()
                    .map_err(|e| format!("bad alpha: {e}"))?,
            }
        } else {
            return Err(format!("unknown policy {spec:?}"));
        };
        parsed.validate()?;
        Ok(parsed)
    }
}

/// The competitors the policy-ablation arena races, in arena arm order:
/// `(registered name, policy)`. The first entry is the paper's deployed
/// default — its arena arm is labeled `riptide` so its shard digests
/// stay byte-identical to `probe_comparison`'s.
pub fn registered_policies() -> Vec<(&'static str, LearningPolicy)> {
    vec![
        (
            "ewma",
            LearningPolicy::History(HistoryStrategy::Ewma { alpha: 0.7 }),
        ),
        (
            "ewma-fast",
            LearningPolicy::History(HistoryStrategy::Ewma { alpha: 0.3 }),
        ),
        (
            "p25",
            LearningPolicy::Percentile {
                fraction: 0.25,
                capacity: 64,
            },
        ),
        (
            "p75",
            LearningPolicy::Percentile {
                fraction: 0.75,
                capacity: 64,
            },
        ),
        (
            "loss-utility",
            LearningPolicy::LossUtility {
                gain: 1.0,
                penalty: 2.0,
                alpha: 0.7,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_the_deployment_ewma() {
        assert_eq!(
            LearningPolicy::default(),
            LearningPolicy::History(HistoryStrategy::Ewma { alpha: 0.7 })
        );
        assert_eq!(LearningPolicy::default().name(), "ewma");
    }

    #[test]
    fn history_policy_matches_inherent_blend_bit_for_bit() {
        // The trait path must be arithmetically identical to the
        // pre-trait inherent path — this is what keeps every golden
        // digest unchanged.
        let strategy = HistoryStrategy::Ewma { alpha: 0.7 };
        let policy = LearningPolicy::History(strategy);
        let mut a = strategy.new_state();
        let mut b = Policy::new_state(&policy);
        for v in [50.0, 150.0, 10.0, 77.3, 99.9] {
            let want = strategy.blend(&mut a, v);
            let got = policy.observe(&mut b, &PolicyInput::fresh_only(v));
            assert_eq!(want.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn percentile_answers_the_requested_quantile() {
        let p25 = LearningPolicy::Percentile {
            fraction: 0.25,
            capacity: 8,
        };
        let mut st = Policy::new_state(&p25);
        let mut last = 0.0;
        for v in [40.0, 10.0, 30.0, 20.0, 50.0] {
            last = p25.observe(&mut st, &PolicyInput::fresh_only(v));
        }
        // Sorted ring [10, 20, 30, 40, 50]: nearest-rank p25 = 20.
        assert_eq!(last, 20.0);
        let p75 = LearningPolicy::Percentile {
            fraction: 0.75,
            capacity: 8,
        };
        let mut st = Policy::new_state(&p75);
        for v in [40.0, 10.0, 30.0, 20.0, 50.0] {
            last = p75.observe(&mut st, &PolicyInput::fresh_only(v));
        }
        assert_eq!(last, 40.0);
    }

    #[test]
    fn percentile_ring_is_bounded() {
        let policy = LearningPolicy::Percentile {
            fraction: 0.75,
            capacity: 3,
        };
        let mut st = Policy::new_state(&policy);
        for v in 1..=10 {
            policy.observe(&mut st, &PolicyInput::fresh_only(v as f64));
        }
        match &st {
            HistoryState::Ring { values } => {
                assert_eq!(values.iter().copied().collect::<Vec<_>>(), [8.0, 9.0, 10.0]);
            }
            other => panic!("wrong state {other:?}"),
        }
    }

    #[test]
    fn loss_utility_converges_when_loss_free() {
        let policy = LearningPolicy::LossUtility {
            gain: 1.0,
            penalty: 2.0,
            alpha: 0.7,
        };
        let mut st = Policy::new_state(&policy);
        let mut v = 0.0;
        for _ in 0..200 {
            v = policy.observe(
                &mut st,
                &PolicyInput {
                    fresh: 80.0,
                    retrans: 0,
                    ecn_marks: 0,
                    bytes_acked: 1 << 20,
                },
            );
        }
        assert!((v - 80.0).abs() < 1e-6, "converged to {v}");
    }

    #[test]
    fn loss_utility_discounts_retransmits() {
        let policy = LearningPolicy::LossUtility {
            gain: 1.0,
            penalty: 2.0,
            alpha: 0.0, // no smoothing: inspect the raw score
        };
        let mut st = Policy::new_state(&policy);
        let clean = policy.observe(
            &mut st,
            &PolicyInput {
                fresh: 80.0,
                retrans: 0,
                ecn_marks: 0,
                bytes_acked: 1448 * 100,
            },
        );
        assert_eq!(clean, 80.0);
        // 100 retransmits against 100 delivered segments: 50% loss rate,
        // utility 80 × (1 − 2·0.5) = 0.
        let lossy = policy.observe(
            &mut st,
            &PolicyInput {
                fresh: 80.0,
                retrans: 100,
                ecn_marks: 0,
                bytes_acked: 1448 * 100,
            },
        );
        assert!(lossy.abs() < 1e-9, "got {lossy}");
    }

    #[test]
    fn registered_policies_validate_and_have_unique_names() {
        let regs = registered_policies();
        assert!(regs.len() >= 4, "the arena needs at least 4 competitors");
        let mut names: Vec<&str> = regs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), regs.len(), "registered names must be unique");
        for (name, policy) in regs {
            policy.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Every registered policy round-trips through the spec
            // parser under its registered name.
            assert_eq!(LearningPolicy::from_spec(name).unwrap(), policy);
        }
    }

    #[test]
    fn spec_parsing_covers_the_grammar() {
        assert_eq!(
            LearningPolicy::from_spec("ewma:0.3").unwrap(),
            LearningPolicy::History(HistoryStrategy::Ewma { alpha: 0.3 })
        );
        assert_eq!(
            LearningPolicy::from_spec("none").unwrap(),
            LearningPolicy::History(HistoryStrategy::None)
        );
        assert_eq!(
            LearningPolicy::from_spec("windowed:5").unwrap(),
            LearningPolicy::History(HistoryStrategy::WindowedMean { window: 5 })
        );
        assert_eq!(
            LearningPolicy::from_spec("percentile:0.9:128").unwrap(),
            LearningPolicy::Percentile {
                fraction: 0.9,
                capacity: 128
            }
        );
        assert_eq!(
            LearningPolicy::from_spec("p50").unwrap(),
            LearningPolicy::Percentile {
                fraction: 0.5,
                capacity: 64
            }
        );
        assert_eq!(
            LearningPolicy::from_spec("loss-utility:1.5:3.0:0.5").unwrap(),
            LearningPolicy::LossUtility {
                gain: 1.5,
                penalty: 3.0,
                alpha: 0.5
            }
        );
        assert!(LearningPolicy::from_spec("vibes").is_err());
        assert!(LearningPolicy::from_spec("ewma:1.5").is_err(), "validated");
        assert!(LearningPolicy::from_spec("percentile:0.5:0").is_err());
        assert!(LearningPolicy::from_spec("loss-utility:0:1:0.5").is_err());
    }

    #[test]
    fn state_matching_covers_every_pair() {
        let policies = [
            LearningPolicy::History(HistoryStrategy::Ewma { alpha: 0.7 }),
            LearningPolicy::History(HistoryStrategy::None),
            LearningPolicy::History(HistoryStrategy::WindowedMean { window: 4 }),
            LearningPolicy::Percentile {
                fraction: 0.25,
                capacity: 8,
            },
            LearningPolicy::LossUtility {
                gain: 1.0,
                penalty: 2.0,
                alpha: 0.7,
            },
        ];
        for (i, p) in policies.iter().enumerate() {
            for (j, q) in policies.iter().enumerate() {
                let state = Policy::new_state(q);
                assert_eq!(
                    p.state_matches(&state),
                    i == j,
                    "policy {i} vs state of {j}"
                );
            }
        }
    }

    #[test]
    fn mismatched_state_panics() {
        let policy = LearningPolicy::Percentile {
            fraction: 0.25,
            capacity: 8,
        };
        let mut st = HistoryState::None;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            policy.observe(&mut st, &PolicyInput::fresh_only(1.0));
        }));
        assert!(r.is_err());
    }
}
