//! Prefix aggregation: coalesce sibling host routes into a covering
//! prefix when their learned windows agree, split on divergence.
//!
//! The paper's prefix granularity (§III-B) decides the key space *up
//! front*; at internet scale that choice is wrong in both directions —
//! `/32` learning keeps per-destination fidelity but installs a route
//! per host, `/24` learning caps the table but averages hosts that may
//! genuinely differ. Aggregation (in the spirit of Pied Piper's
//! cross-connection sharing, see PAPERS.md) gets both: the agent keeps
//! **learning at `/32`**, and after every tick a deterministic pass
//! coalesces sibling hosts into one covering route when — and only as
//! long as — their learned windows agree.
//!
//! Invariants (pinned by tests here and in the agent):
//!
//! * **Never widen past the learned band.** An aggregate's window is
//!   the *minimum* of its members' clamped windows, and members only
//!   merge while `max − min ≤ band`. No destination is ever jump-started
//!   harder than its own learned value, and no member's window is
//!   understated by more than the band.
//! * **One pass restores agreement.** The pass is a pure function of
//!   the learned table: any divergence observed in tick *n* dissolves
//!   the aggregate in tick *n*'s pass, reinstalling members at their
//!   individual windows. There is no hysteresis state to drift.
//! * **Every merge and split is journal-attributed** via
//!   [`DecisionCause::Aggregated`] / [`DecisionCause::Disaggregated`].
//!
//! [`DecisionCause::Aggregated`]: crate::telemetry::DecisionCause::Aggregated
//! [`DecisionCause::Disaggregated`]: crate::telemetry::DecisionCause::Disaggregated
//!
//! # Examples
//!
//! ```
//! use riptide::aggregate::{AggregationPolicy, Aggregator};
//! use riptide::history::HistoryStrategy;
//! use riptide::table::FinalTable;
//! use riptide_simnet::time::SimTime;
//!
//! let mut table = FinalTable::new();
//! let strategy = HistoryStrategy::None;
//! for (host, w) in [("10.0.1.1", 40u32), ("10.0.1.2", 42), ("10.0.1.3", 41)] {
//!     let key = host.parse()?;
//!     table.blend(key, w as f64, &strategy, SimTime::from_secs(1));
//!     table.set_window(&key, w);
//! }
//!
//! let mut agg = Aggregator::new(AggregationPolicy::default());
//! let pass = agg.pass(&table);
//! // The three /32s agree within the band: one /24 at the member minimum.
//! assert_eq!(pass.merged.len(), 1);
//! assert_eq!(pass.merged[0].covering.to_string(), "10.0.1.0/24");
//! assert_eq!(pass.merged[0].window, 40, "never widen past a member");
//!
//! // A diverging member dissolves the aggregate on the next pass.
//! table.set_window(&"10.0.1.2".parse()?, 90);
//! let pass = agg.pass(&table);
//! assert_eq!(pass.split.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;

use riptide_linuxnet::prefix::Ipv4Prefix;

use crate::table::FinalTable;

/// When and how learned host routes coalesce into covering prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregationPolicy {
    /// Length of the covering prefix members coalesce into (the paper's
    /// PoP unit: `/24`).
    pub aggregate_len: u8,
    /// Maximum `max − min` spread of member windows, in segments, for
    /// siblings to count as "agreeing". This is the clamp band the
    /// aggregate may understate a member by.
    pub band: u32,
    /// Minimum number of sibling members before a covering route pays
    /// for itself (a one-member aggregate is just a worse host route).
    pub min_siblings: usize,
}

impl Default for AggregationPolicy {
    /// `/24` aggregates, a band of 8 segments, at least 2 siblings.
    fn default() -> Self {
        AggregationPolicy {
            aggregate_len: 24,
            band: 8,
            min_siblings: 2,
        }
    }
}

impl AggregationPolicy {
    /// Checks the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns a description if the aggregate length is not strictly
    /// inside `(0, 32)` or `min_siblings < 2`.
    pub fn validate(&self) -> Result<(), String> {
        if self.aggregate_len == 0 || self.aggregate_len >= 32 {
            return Err(format!(
                "aggregate length /{} must be between /1 and /31",
                self.aggregate_len
            ));
        }
        if self.min_siblings < 2 {
            return Err(format!(
                "min_siblings {} must be at least 2 (a 1-member aggregate is never a win)",
                self.min_siblings
            ));
        }
        Ok(())
    }

    /// The covering prefix `key` would aggregate into, if `key` is more
    /// specific than the aggregate length.
    pub fn covering_of(&self, key: &Ipv4Prefix) -> Option<Ipv4Prefix> {
        (key.len() > self.aggregate_len).then(|| key.covering(self.aggregate_len))
    }
}

/// A newly formed (or retuned) aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The covering prefix now representing its members.
    pub covering: Ipv4Prefix,
    /// The aggregate window: the minimum of the member windows.
    pub window: u32,
    /// The member keys, in key order.
    pub members: Vec<Ipv4Prefix>,
    /// `max − min` of the member windows at merge time.
    pub spread: u32,
}

/// A dissolved aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitOutcome {
    /// The covering prefix being withdrawn.
    pub covering: Ipv4Prefix,
    /// The members to reinstall individually, with their current
    /// learned windows, in key order. Empty when the members themselves
    /// expired or were evicted.
    pub members: Vec<(Ipv4Prefix, u32)>,
    /// `max − min` of the member windows at split time (0 when no
    /// members remain).
    pub spread: u32,
}

/// What one aggregation pass decided. The route-level consequences
/// (withdraw members / install covering and vice versa) are applied by
/// the agent so they flow through its controller and journal.
#[derive(Debug, Clone, Default)]
pub struct AggregationPass {
    /// Aggregates formed this pass (members → one covering route).
    pub merged: Vec<MergeOutcome>,
    /// Existing aggregates whose window moved with their members.
    pub retuned: Vec<MergeOutcome>,
    /// Aggregates dissolved this pass (covering route → members).
    pub split: Vec<SplitOutcome>,
}

/// The aggregation/splitting pass. Holds the set of live aggregates;
/// [`Aggregator::pass`] diffs that set against what the learned table
/// currently supports.
#[derive(Debug, Clone)]
pub struct Aggregator {
    policy: AggregationPolicy,
    /// Live aggregates: covering prefix → installed aggregate window.
    aggregates: BTreeMap<Ipv4Prefix, u32>,
}

impl Aggregator {
    /// Creates an aggregator with no live aggregates.
    pub fn new(policy: AggregationPolicy) -> Self {
        Aggregator {
            policy,
            aggregates: BTreeMap::new(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &AggregationPolicy {
        &self.policy
    }

    /// Number of live aggregates.
    pub fn len(&self) -> usize {
        self.aggregates.len()
    }

    /// Whether no aggregates are live.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
    }

    /// The covering prefix of a *live* aggregate covering `key`, if any
    /// — the agent skips individual installs for such keys, and the
    /// grouped capacity accounting charges them as one unit.
    pub fn covering_of(&self, key: &Ipv4Prefix) -> Option<Ipv4Prefix> {
        let covering = self.policy.covering_of(key)?;
        self.aggregates.contains_key(&covering).then_some(covering)
    }

    /// The window of the live aggregate at exactly `covering`.
    pub fn window_of(&self, covering: &Ipv4Prefix) -> Option<u32> {
        self.aggregates.get(covering).copied()
    }

    /// Iterates live aggregates in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Prefix, u32)> {
        self.aggregates.iter().map(|(k, w)| (k, *w))
    }

    /// Runs one aggregation/splitting pass over the learned table and
    /// updates the live-aggregate set. Deterministic: the outcome is a
    /// pure function of `(policy, live aggregates, table)`, and all
    /// outcome lists are in covering-prefix order.
    ///
    /// Entries with a window of 0 (blended but never committed — e.g.
    /// learned under a `Suspend` advisory) are ignored: there is no
    /// window to aggregate.
    pub fn pass(&mut self, table: &FinalTable) -> AggregationPass {
        // Group eligible learned keys under their covering prefix.
        let mut groups: BTreeMap<Ipv4Prefix, Vec<(Ipv4Prefix, u32)>> = BTreeMap::new();
        for (key, entry) in table.iter() {
            if entry.window == 0 {
                continue;
            }
            if let Some(covering) = self.policy.covering_of(key) {
                groups
                    .entry(covering)
                    .or_default()
                    .push((*key, entry.window));
            }
        }

        let mut pass = AggregationPass::default();
        for (covering, members) in &groups {
            let min = members.iter().map(|(_, w)| *w).min().expect("non-empty");
            let max = members.iter().map(|(_, w)| *w).max().expect("non-empty");
            let spread = max - min;
            let agrees = members.len() >= self.policy.min_siblings && spread <= self.policy.band;
            match (agrees, self.aggregates.get(covering).copied()) {
                (true, None) => {
                    self.aggregates.insert(*covering, min);
                    pass.merged.push(MergeOutcome {
                        covering: *covering,
                        window: min,
                        members: members.iter().map(|(k, _)| *k).collect(),
                        spread,
                    });
                }
                (true, Some(current)) => {
                    if current != min {
                        self.aggregates.insert(*covering, min);
                        pass.retuned.push(MergeOutcome {
                            covering: *covering,
                            window: min,
                            members: members.iter().map(|(k, _)| *k).collect(),
                            spread,
                        });
                    }
                }
                (false, Some(_)) => {
                    self.aggregates.remove(covering);
                    pass.split.push(SplitOutcome {
                        covering: *covering,
                        members: members.clone(),
                        spread,
                    });
                }
                (false, None) => {}
            }
        }

        // Aggregates whose members all expired or were evicted dissolve
        // with nothing to reinstall.
        let orphaned: Vec<Ipv4Prefix> = self
            .aggregates
            .keys()
            .filter(|c| !groups.contains_key(*c))
            .copied()
            .collect();
        for covering in orphaned {
            self.aggregates.remove(&covering);
            pass.split.push(SplitOutcome {
                covering,
                members: Vec::new(),
                spread: 0,
            });
        }
        pass.split.sort_by_key(|s| s.covering);
        pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryStrategy;
    use riptide_simnet::time::SimTime;
    use std::net::Ipv4Addr;

    fn table_with(entries: &[(&str, u32)]) -> FinalTable {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::new();
        for (host, w) in entries {
            let key: Ipv4Prefix = host.parse().unwrap();
            t.blend(key, f64::from(*w), &strategy, SimTime::from_secs(1));
            t.set_window(&key, *w);
        }
        t
    }

    #[test]
    fn default_policy_validates() {
        assert!(AggregationPolicy::default().validate().is_ok());
        assert!(
            AggregationPolicy {
                aggregate_len: 32,
                ..AggregationPolicy::default()
            }
            .validate()
            .is_err(),
            "/32 aggregates nothing"
        );
        assert!(AggregationPolicy {
            min_siblings: 1,
            ..AggregationPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn agreeing_siblings_merge_at_member_minimum() {
        let t = table_with(&[("10.0.1.1", 44), ("10.0.1.2", 40), ("10.0.1.3", 47)]);
        let mut agg = Aggregator::new(AggregationPolicy::default());
        let pass = agg.pass(&t);
        assert_eq!(pass.merged.len(), 1);
        let m = &pass.merged[0];
        assert_eq!(m.covering, "10.0.1.0/24".parse::<Ipv4Prefix>().unwrap());
        assert_eq!(m.window, 40, "minimum member window — never widen");
        assert_eq!(m.spread, 7);
        assert_eq!(m.members.len(), 3);
        assert_eq!(agg.window_of(&m.covering), Some(40));
    }

    #[test]
    fn divergent_siblings_do_not_merge() {
        let t = table_with(&[("10.0.1.1", 40), ("10.0.1.2", 90)]);
        let mut agg = Aggregator::new(AggregationPolicy::default());
        let pass = agg.pass(&t);
        assert!(pass.merged.is_empty(), "spread 50 > band 8");
        assert!(agg.is_empty());
    }

    #[test]
    fn lone_host_does_not_merge() {
        let t = table_with(&[("10.0.1.1", 40)]);
        let mut agg = Aggregator::new(AggregationPolicy::default());
        assert!(agg.pass(&t).merged.is_empty(), "below min_siblings");
    }

    #[test]
    fn divergence_splits_with_members_to_reinstall() {
        let mut t = table_with(&[("10.0.1.1", 40), ("10.0.1.2", 42)]);
        let mut agg = Aggregator::new(AggregationPolicy::default());
        assert_eq!(agg.pass(&t).merged.len(), 1);

        t.set_window(&"10.0.1.2".parse().unwrap(), 90);
        let pass = agg.pass(&t);
        assert_eq!(pass.split.len(), 1);
        let s = &pass.split[0];
        assert_eq!(s.spread, 50);
        assert_eq!(
            s.members,
            vec![
                ("10.0.1.1".parse().unwrap(), 40),
                ("10.0.1.2".parse().unwrap(), 90),
            ]
        );
        assert!(agg.is_empty());
    }

    #[test]
    fn vanished_members_dissolve_the_aggregate() {
        let t = table_with(&[("10.0.1.1", 40), ("10.0.1.2", 42)]);
        let mut agg = Aggregator::new(AggregationPolicy::default());
        agg.pass(&t);
        assert_eq!(agg.len(), 1);
        let empty = FinalTable::new();
        let pass = agg.pass(&empty);
        assert_eq!(pass.split.len(), 1);
        assert!(pass.split[0].members.is_empty());
        assert!(agg.is_empty());
    }

    #[test]
    fn member_drift_within_band_retunes_the_window() {
        let mut t = table_with(&[("10.0.1.1", 40), ("10.0.1.2", 42)]);
        let mut agg = Aggregator::new(AggregationPolicy::default());
        agg.pass(&t);
        // Both members drift down but stay within the band: the
        // aggregate follows the new minimum instead of dissolving.
        t.set_window(&"10.0.1.1".parse().unwrap(), 36);
        t.set_window(&"10.0.1.2".parse().unwrap(), 38);
        let pass = agg.pass(&t);
        assert!(pass.merged.is_empty() && pass.split.is_empty());
        assert_eq!(pass.retuned.len(), 1);
        assert_eq!(pass.retuned[0].window, 36);
        // An identical re-pass is a no-op.
        let pass = agg.pass(&t);
        assert!(pass.merged.is_empty() && pass.retuned.is_empty() && pass.split.is_empty());
    }

    #[test]
    fn merge_split_merge_round_trip_is_deterministic() {
        let converged = table_with(&[("10.0.1.1", 40), ("10.0.1.2", 42), ("10.0.1.3", 44)]);
        let mut diverged = converged.clone();
        diverged.set_window(&"10.0.1.3".parse().unwrap(), 90);

        let run = || {
            let mut agg = Aggregator::new(AggregationPolicy::default());
            let first = agg.pass(&converged);
            let second = agg.pass(&diverged);
            let third = agg.pass(&converged);
            (first, second, third)
        };
        let (a1, a2, a3) = run();
        let (b1, b2, b3) = run();
        assert_eq!(a1.merged, b1.merged);
        assert_eq!(a2.split, b2.split);
        assert_eq!(a3.merged, b3.merged);
        assert_eq!(
            a1.merged, a3.merged,
            "re-convergence reforms the identical aggregate"
        );
    }

    #[test]
    fn windowless_entries_are_ignored() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::new();
        for n in 1..=3u8 {
            // blend() without set_window leaves window == 0 (e.g. a
            // Suspend advisory): nothing to aggregate.
            t.blend(
                Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, n)),
                40.0,
                &strategy,
                SimTime::from_secs(1),
            );
        }
        let mut agg = Aggregator::new(AggregationPolicy::default());
        assert!(agg.pass(&t).merged.is_empty());
    }

    #[test]
    fn keys_at_or_above_aggregate_len_are_left_alone() {
        // A learned /24 (prefix granularity) is never nested into
        // another /24, and a /16 is wider than the aggregate.
        let t = table_with(&[("10.0.1.0/24", 40), ("10.1.0.0/16", 42)]);
        let mut agg = Aggregator::new(AggregationPolicy::default());
        assert!(agg.pass(&t).merged.is_empty());
    }
}
