//! The §V "Kernel Implementation" variant.
//!
//! The paper: *"Riptide could further be implemented directly in the
//! Linux kernel. Such an implementation would likely reduce load, as an
//! external program no longer has to monitor all open connections, and
//! potentially enable higher granularity computations. It could further
//! allow setting of initial congestion windows on a per connection
//! basis, rather than per route."*
//!
//! [`KernelAgent`] is that design: event-driven instead of polled — the
//! stack pushes a window sample whenever one changes (or a connection
//! closes), and each `connect()` asks for its initial window directly.
//! No `ss` parsing, no route churn, no `i_u` staleness: a sample is
//! reflected in the very next connection. The userspace
//! [`crate::agent::RiptideAgent`] remains the deployable tool (the paper
//! keeps it for operational reasons); this type exists to quantify what
//! the kernel path would buy.

use std::net::Ipv4Addr;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::SimTime;

use crate::config::{ConfigError, RiptideConfig};
use crate::table::FinalTable;

/// An in-stack, event-driven Riptide.
///
/// # Examples
///
/// ```
/// use riptide::kernel::KernelAgent;
/// use riptide::config::RiptideConfig;
/// use riptide_simnet::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut k = KernelAgent::new(RiptideConfig::deployment())?;
/// let dst = Ipv4Addr::new(10, 0, 1, 1);
/// // The stack reports a window sample the moment it changes…
/// k.on_window_sample(dst, 80, SimTime::from_secs(1));
/// // …and the very next connect() sees it — no polling interval.
/// assert_eq!(k.initial_cwnd(dst, SimTime::from_secs(1)), Some(80));
/// # Ok::<(), riptide::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct KernelAgent {
    config: RiptideConfig,
    table: FinalTable,
    samples: u64,
}

impl KernelAgent {
    /// Creates a kernel-style agent.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any. The
    /// `update_interval` field is ignored — there is no polling.
    pub fn new(config: RiptideConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(KernelAgent {
            config,
            table: FinalTable::new(),
            samples: 0,
        })
    }

    /// The agent's configuration.
    pub fn config(&self) -> &RiptideConfig {
        &self.config
    }

    /// Total samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Live destinations currently known.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether nothing has been learned (or everything expired).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Ingests one congestion-window sample for a connection to `dst`.
    ///
    /// In a kernel build this is the `cong_control`/close hook; each
    /// sample blends immediately through the configured history strategy
    /// (there is no poll-time group to combine — the event stream *is*
    /// the higher-granularity computation the paper anticipates).
    pub fn on_window_sample(&mut self, dst: Ipv4Addr, cwnd: u32, now: SimTime) {
        self.samples += 1;
        let key = self.config.granularity.key(dst);
        let blended = self.table.blend(key, cwnd as f64, &self.config.policy, now);
        let window = self.config.clamp(blended);
        self.table.set_window(&key, window);
    }

    /// The initial window a new connection to `dst` should use, if the
    /// destination is known and not expired at `now`. This is the
    /// per-connection lookup the paper contrasts with per-route control.
    pub fn initial_cwnd(&self, dst: Ipv4Addr, now: SimTime) -> Option<u32> {
        let key = self.config.granularity.key(dst);
        let entry = self.table.get(&key)?;
        if now.saturating_since(entry.last_updated) > self.config.ttl {
            return None; // stale: fall back to the stack default
        }
        Some(entry.window)
    }

    /// Drops expired destinations; returns what was removed. Unlike the
    /// userspace agent there are no routes to withdraw — expiry is just
    /// memory reclamation, since [`KernelAgent::initial_cwnd`] already
    /// ignores stale entries.
    pub fn expire(&mut self, now: SimTime) -> Vec<Ipv4Prefix> {
        self.table.expire(now, self.config.ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryStrategy;

    fn agent() -> KernelAgent {
        KernelAgent::new(
            RiptideConfig::builder()
                .history(HistoryStrategy::None)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn dst() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 1, 1)
    }

    #[test]
    fn sample_visible_immediately() {
        let mut k = agent();
        assert_eq!(k.initial_cwnd(dst(), SimTime::ZERO), None);
        k.on_window_sample(dst(), 64, SimTime::from_secs(5));
        assert_eq!(k.initial_cwnd(dst(), SimTime::from_secs(5)), Some(64));
        assert_eq!(k.samples(), 1);
    }

    #[test]
    fn clamp_applies() {
        let mut k = agent();
        k.on_window_sample(dst(), 500, SimTime::from_secs(1));
        assert_eq!(k.initial_cwnd(dst(), SimTime::from_secs(1)), Some(100));
        k.on_window_sample(dst(), 2, SimTime::from_secs(2));
        assert_eq!(k.initial_cwnd(dst(), SimTime::from_secs(2)), Some(10));
    }

    #[test]
    fn lookup_is_lazily_ttl_checked() {
        let mut k = agent();
        k.on_window_sample(dst(), 64, SimTime::from_secs(0));
        assert_eq!(k.initial_cwnd(dst(), SimTime::from_secs(89)), Some(64));
        assert_eq!(
            k.initial_cwnd(dst(), SimTime::from_secs(91)),
            None,
            "stale entries never leak into new connections"
        );
        // The entry still occupies memory until expire() runs.
        assert_eq!(k.len(), 1);
        let dead = k.expire(SimTime::from_secs(91));
        assert_eq!(dead.len(), 1);
        assert!(k.is_empty());
    }

    #[test]
    fn ewma_history_still_applies_per_sample() {
        let mut k = KernelAgent::new(RiptideConfig::builder().alpha(0.5).build().unwrap()).unwrap();
        k.on_window_sample(dst(), 40, SimTime::from_secs(1));
        k.on_window_sample(dst(), 80, SimTime::from_secs(2));
        assert_eq!(k.initial_cwnd(dst(), SimTime::from_secs(2)), Some(60));
    }

    #[test]
    fn kernel_mode_reacts_faster_than_polling() {
        // The quantitative §V claim: a window change lands in the very
        // next connection, instead of after up to i_u seconds.
        let mut k = agent();
        let t0 = SimTime::from_millis(1);
        k.on_window_sample(dst(), 90, t0);
        // 1 ms later — far inside any polling interval — the new value
        // is already live.
        assert_eq!(k.initial_cwnd(dst(), SimTime::from_millis(2)), Some(90));
    }

    #[test]
    fn per_connection_granularity_is_host_by_default() {
        let mut k = agent();
        k.on_window_sample(Ipv4Addr::new(10, 0, 1, 1), 70, SimTime::from_secs(1));
        assert_eq!(
            k.initial_cwnd(Ipv4Addr::new(10, 0, 1, 2), SimTime::from_secs(1)),
            None,
            "host granularity: sibling host unknown"
        );
    }
}
