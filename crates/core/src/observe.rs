//! Observation inputs: what the agent learns from and how it gets it.
//!
//! This is the §III poll loop's input side. [`WindowObserver`] models an
//! `ss -i` poll that always succeeds (the simulator's in-process
//! snapshot); [`FallibleObserver`] models the real thing, where the poll
//! can time out, the subprocess can die, or the output can arrive
//! truncated. [`crate::resilience::ResilientObserver`] bridges the two
//! with retries and a per-tick time budget.

use std::fmt;
use std::net::Ipv4Addr;

use riptide_linuxnet::ss::{SockState, SockTable};

/// One observed connection: the fields of an `ss -i` row that matter to
/// the algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CwndObservation {
    /// The connection's remote address.
    pub dst: Ipv4Addr,
    /// Its current congestion window, in segments.
    pub cwnd: u32,
    /// Bytes acknowledged over the connection's lifetime — the weight the
    /// §III-B "conservative" combiner uses.
    pub bytes_acked: u64,
    /// Segments retransmitted over the connection's lifetime (`ss`'s
    /// cumulative `retrans` total) — the loss signal the guard layer
    /// differentiates into a post-install retransmit rate.
    pub retrans: u64,
    /// ECN-echo window reductions over the connection's lifetime —
    /// congestion signalled by marking rather than loss. Zero wherever
    /// ECN is not negotiated, which keeps every existing pipeline
    /// arithmetic unchanged.
    pub ecn_marks: u64,
}

/// A source of congestion-window observations — the agent's view of
/// "poll the current windows of all open connections".
///
/// Implementations: a simulated host's socket list, a parsed
/// [`SockTable`], or (in a real deployment) a wrapper shelling out to
/// `ss`.
pub trait WindowObserver {
    /// A snapshot of every established connection's window.
    fn observe(&mut self) -> Vec<CwndObservation>;
}

/// Adapts any closure returning observations into a [`WindowObserver`].
#[derive(Debug)]
pub struct FnObserver<F>(pub F);

impl<F> WindowObserver for FnObserver<F>
where
    F: FnMut() -> Vec<CwndObservation>,
{
    fn observe(&mut self) -> Vec<CwndObservation> {
        (self.0)()
    }
}

/// Why an observation poll produced nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObserveError {
    /// The poll exceeded its per-call timeout.
    Timeout,
    /// The polling subprocess could not run or exited non-zero.
    Exec(String),
    /// The poll output could not be parsed at all.
    Parse(String),
}

impl fmt::Display for ObserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObserveError::Timeout => write!(f, "observation poll timed out"),
            ObserveError::Exec(m) => write!(f, "observation poll failed to run: {m}"),
            ObserveError::Parse(m) => write!(f, "observation output unparseable: {m}"),
        }
    }
}

impl std::error::Error for ObserveError {}

/// A [`WindowObserver`] whose polls can fail — the real-deployment shape,
/// where `ss` is a subprocess with a timeout.
///
/// Every infallible [`WindowObserver`] is trivially a `FallibleObserver`
/// (via a blanket impl), so simulation code and tests can pass plain
/// observers anywhere a fallible one is expected.
pub trait FallibleObserver {
    /// Attempts one snapshot of every established connection's window.
    ///
    /// # Errors
    ///
    /// Returns [`ObserveError`] when the poll times out, cannot run, or
    /// returns unusable output.
    fn try_observe(&mut self) -> Result<Vec<CwndObservation>, ObserveError>;
}

impl<T: WindowObserver> FallibleObserver for T {
    fn try_observe(&mut self) -> Result<Vec<CwndObservation>, ObserveError> {
        Ok(self.observe())
    }
}

/// Adapts a closure returning `Result` into a [`FallibleObserver`] —
/// the fault-injection seam the chaos harness uses.
#[derive(Debug)]
pub struct FnFallibleObserver<F>(pub F);

impl<F> FallibleObserver for FnFallibleObserver<F>
where
    F: FnMut() -> Result<Vec<CwndObservation>, ObserveError>,
{
    fn try_observe(&mut self) -> Result<Vec<CwndObservation>, ObserveError> {
        (self.0)()
    }
}

/// Extracts observations from an `ss`-style table, keeping only
/// established sockets (windows of half-open sockets mean nothing).
pub fn observations_from_sock_table(table: &SockTable) -> Vec<CwndObservation> {
    table
        .entries()
        .iter()
        .filter(|e| e.state == SockState::Established)
        .map(|e| CwndObservation {
            dst: e.dst,
            cwnd: e.cwnd,
            bytes_acked: e.bytes_acked,
            retrans: e.retrans,
            // `ss` exposes no per-socket ECN-reduction counter; the
            // kernel path reports marks only through the simulator.
            ecn_marks: 0,
        })
        .collect()
}

impl WindowObserver for SockTable {
    fn observe(&mut self) -> Vec<CwndObservation> {
        observations_from_sock_table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riptide_linuxnet::ss::SockEntry;

    fn sock(dst: [u8; 4], state: SockState, cwnd: u32) -> SockEntry {
        SockEntry {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::from(dst),
            state,
            cc: "cubic".into(),
            cwnd,
            ssthresh: None,
            rtt_ms: None,
            bytes_acked: 100,
            retrans: 7,
            lost: 0,
        }
    }

    #[test]
    fn only_established_sockets_count() {
        let table: SockTable = vec![
            sock([10, 0, 1, 1], SockState::Established, 40),
            sock([10, 0, 1, 1], SockState::SynSent, 10),
            sock([10, 0, 2, 1], SockState::CloseWait, 10),
        ]
        .into_iter()
        .collect();
        let obs = observations_from_sock_table(&table);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].cwnd, 40);
        assert_eq!(obs[0].retrans, 7, "loss counter flows through");
    }

    #[test]
    fn fn_observer_adapts_closures() {
        let mut calls = 0;
        let mut obs = FnObserver(|| {
            calls += 1;
            vec![CwndObservation {
                dst: Ipv4Addr::new(10, 0, 1, 1),
                cwnd: 33,
                bytes_acked: 0,
                retrans: 0,
                ecn_marks: 0,
            }]
        });
        assert_eq!(obs.observe().len(), 1);
        assert_eq!(obs.observe()[0].cwnd, 33);
        let _ = obs;
        assert_eq!(calls, 2);
    }

    #[test]
    fn infallible_observers_are_fallible_observers() {
        let mut obs = FnObserver(|| {
            vec![CwndObservation {
                dst: Ipv4Addr::new(10, 0, 1, 1),
                cwnd: 12,
                bytes_acked: 0,
                retrans: 0,
                ecn_marks: 0,
            }]
        });
        assert_eq!(obs.try_observe().unwrap().len(), 1);
    }

    #[test]
    fn fallible_closures_surface_errors() {
        let mut flaky = FnFallibleObserver(|| Err(ObserveError::Timeout));
        assert_eq!(flaky.try_observe(), Err(ObserveError::Timeout));
        assert_eq!(
            ObserveError::Exec("ss: not found".into()).to_string(),
            "observation poll failed to run: ss: not found"
        );
    }

    #[test]
    fn sock_table_is_itself_an_observer() {
        let mut table: SockTable = vec![sock([10, 0, 1, 1], SockState::Established, 40)]
            .into_iter()
            .collect();
        assert_eq!(table.observe().len(), 1);
    }
}
