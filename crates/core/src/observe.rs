//! Observation inputs: what the agent learns from and how it gets it.

use std::net::Ipv4Addr;

use riptide_linuxnet::ss::{SockState, SockTable};

/// One observed connection: the fields of an `ss -i` row that matter to
/// the algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CwndObservation {
    /// The connection's remote address.
    pub dst: Ipv4Addr,
    /// Its current congestion window, in segments.
    pub cwnd: u32,
    /// Bytes acknowledged over the connection's lifetime — the weight the
    /// §III-B "conservative" combiner uses.
    pub bytes_acked: u64,
}

/// A source of congestion-window observations — the agent's view of
/// "poll the current windows of all open connections".
///
/// Implementations: a simulated host's socket list, a parsed
/// [`SockTable`], or (in a real deployment) a wrapper shelling out to
/// `ss`.
pub trait WindowObserver {
    /// A snapshot of every established connection's window.
    fn observe(&mut self) -> Vec<CwndObservation>;
}

/// Adapts any closure returning observations into a [`WindowObserver`].
#[derive(Debug)]
pub struct FnObserver<F>(pub F);

impl<F> WindowObserver for FnObserver<F>
where
    F: FnMut() -> Vec<CwndObservation>,
{
    fn observe(&mut self) -> Vec<CwndObservation> {
        (self.0)()
    }
}

/// Extracts observations from an `ss`-style table, keeping only
/// established sockets (windows of half-open sockets mean nothing).
pub fn observations_from_sock_table(table: &SockTable) -> Vec<CwndObservation> {
    table
        .entries()
        .iter()
        .filter(|e| e.state == SockState::Established)
        .map(|e| CwndObservation {
            dst: e.dst,
            cwnd: e.cwnd,
            bytes_acked: e.bytes_acked,
        })
        .collect()
}

impl WindowObserver for SockTable {
    fn observe(&mut self) -> Vec<CwndObservation> {
        observations_from_sock_table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riptide_linuxnet::ss::SockEntry;

    fn sock(dst: [u8; 4], state: SockState, cwnd: u32) -> SockEntry {
        SockEntry {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::from(dst),
            state,
            cc: "cubic".into(),
            cwnd,
            ssthresh: None,
            rtt_ms: None,
            bytes_acked: 100,
        }
    }

    #[test]
    fn only_established_sockets_count() {
        let table: SockTable = vec![
            sock([10, 0, 1, 1], SockState::Established, 40),
            sock([10, 0, 1, 1], SockState::SynSent, 10),
            sock([10, 0, 2, 1], SockState::CloseWait, 10),
        ]
        .into_iter()
        .collect();
        let obs = observations_from_sock_table(&table);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].cwnd, 40);
    }

    #[test]
    fn fn_observer_adapts_closures() {
        let mut calls = 0;
        let mut obs = FnObserver(|| {
            calls += 1;
            vec![CwndObservation {
                dst: Ipv4Addr::new(10, 0, 1, 1),
                cwnd: 33,
                bytes_acked: 0,
            }]
        });
        assert_eq!(obs.observe().len(), 1);
        assert_eq!(obs.observe()[0].cwnd, 33);
        let _ = obs;
        assert_eq!(calls, 2);
    }

    #[test]
    fn sock_table_is_itself_an_observer() {
        let mut table: SockTable = vec![sock([10, 0, 1, 1], SockState::Established, 40)]
            .into_iter()
            .collect();
        assert_eq!(table.observe().len(), 1);
    }
}
