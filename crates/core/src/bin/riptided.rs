//! `riptided` — the deployable face of the reproduction.
//!
//! The paper's tool is "a single Python script" that polls `ss` and runs
//! `ip route`. This binary is the same shape: it consumes `ss -i`-format
//! snapshots (files given on the command line, each treated as one poll
//! `i_u` apart) and prints the exact `ip route` commands the algorithm
//! decides on. Point it at real captures for a dry run of a deployment.
//!
//! ```text
//! riptided [options] <ss-snapshot>...
//!
//!   --alpha <a>          EWMA weight on history      (default 0.7)
//!   --policy <spec>      learning policy: ewma | ewma:<a> | none |
//!                        windowed:<n> | p25 | p50 | p75 |
//!                        percentile:<frac>:<cap> | loss-utility |
//!                        loss-utility:<gain>:<penalty>:<alpha>
//!                        (default ewma — the paper's estimator)
//!   --no-history         disable the history blend
//!   --cmax <w>           maximum window              (default 100)
//!   --cmin <w>           minimum window              (default 10)
//!   --ttl <secs>         entry time-to-live          (default 90)
//!   --interval <secs>    poll interval i_u           (default 1)
//!   --combine <s>        average|max|traffic-weighted
//!   --granularity <g>    host | /<len>               (default host)
//!   --trend              enable §V trend damping
//!   --config <file>      key = value config file (flags override)
//!   --recover            flush stale riptide routes first
//!   --follow             after the listed snapshots, keep re-polling the
//!                        last one every interval until SIGTERM/SIGINT
//!   --show-table         print the final learned table
//!   --metrics            print Prometheus counters to stderr at exit
//!   --metrics-file <p>   rewrite <p> with a Prometheus text-exposition
//!                        snapshot after every poll (and at shutdown)
//!   --state-file <p>     warm-restart persistence: restore the learned
//!                        table from <p> at start (reinstalling its
//!                        routes), append journal deltas after every
//!                        poll, and atomically rewrite the snapshot
//!                        every --snapshot-every polls and at shutdown
//!   --snapshot-every <n> polls between full snapshot rewrites
//!                        (default 60)
//! ```
//!
//! On SIGTERM or SIGINT the daemon withdraws every route it installed
//! before exiting, so a stopped agent leaves no stale windows behind;
//! the final metrics snapshot, the state-file snapshot and the decision
//! journal are flushed as part of the same sweep. SIGUSR1 dumps the
//! decision journal to stderr on demand at the next poll boundary.
//!
//! The state file is the `core::persist` snapshot+journal format: a
//! torn journal tail (a `kill -9` mid-append) truncates cleanly at the
//! next start, and a damaged snapshot block is ignored with a warning —
//! the daemon then starts empty, exactly as if the file were absent.
//! The TTL clock restarts with the daemon, so restored entries age from
//! the first poll, not from their original refresh instants.

use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set from the signal handler; the poll loops notice it and run the
/// shutdown sweep instead of exiting with routes still installed.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Set by SIGUSR1; the follow loop dumps the decision journal to stderr
/// at the next poll boundary and clears it.
static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn note_shutdown(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" fn note_dump(_signum: i32) {
    DUMP_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    // `signal(2)` straight from the platform C library: flipping an
    // atomic flag is all the handler does, and declaring the symbol
    // directly keeps the binary free of an FFI crate dependency.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    #[cfg(target_os = "linux")]
    const SIGUSR1: i32 = 10;
    #[cfg(not(target_os = "linux"))]
    const SIGUSR1: i32 = 30;
    unsafe {
        signal(SIGINT, note_shutdown);
        signal(SIGTERM, note_shutdown);
        signal(SIGUSR1, note_dump);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Sleeps for `interval`, waking early (and reporting `true`) if a
/// shutdown signal arrives mid-wait.
fn sleep_interruptibly(interval: std::time::Duration) -> bool {
    let slice = std::time::Duration::from_millis(25);
    let mut remaining = interval;
    while !remaining.is_zero() {
        if SHUTDOWN.load(Ordering::SeqCst) {
            return true;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining -= step;
    }
    SHUTDOWN.load(Ordering::SeqCst)
}

use riptide::persist::{decode_state, encode_state, JournalOp, JournalRecord};
use riptide::prelude::*;
use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_linuxnet::route::RouteTable;
use riptide_linuxnet::ss::SockTable;
use riptide_simnet::time::{SimDuration, SimTime};

fn fail(msg: &str) -> ExitCode {
    eprintln!("riptided: {msg}");
    ExitCode::FAILURE
}

/// The daemon's durability plumbing behind `--state-file`.
struct PersistState {
    /// The state-file path.
    path: String,
    /// Polls between full snapshot rewrites.
    snapshot_every: u64,
    /// The installed view as of the last snapshot or journal append —
    /// the diff base journal records are computed against.
    last_installed: std::collections::BTreeMap<Ipv4Prefix, u32>,
    /// Polls since the last full snapshot rewrite.
    polls_since_snapshot: u64,
}

impl PersistState {
    /// Rewrites the whole state file with a fresh snapshot. Same
    /// write-then-rename discipline as `--metrics-file`: the temp file
    /// is a pid-suffixed sibling so the rename stays on one filesystem
    /// and a reader (or a crash mid-write) never sees a half-written
    /// snapshot — the old, complete file survives until the rename.
    fn write_snapshot(&mut self, agent: &RiptideAgent, now: SimTime) {
        let bytes = encode_state(&agent.snapshot_state(now), &[]);
        let tmp = format!("{}.{}.tmp", self.path, std::process::id());
        let write = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &self.path));
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("# state: cannot write {}: {e}", self.path);
            return;
        }
        self.last_installed = agent.installed_view().clone();
        self.polls_since_snapshot = 0;
    }

    /// Appends journal records for whatever the poll changed in the
    /// installed view: a withdraw per vanished route, an install per
    /// new or re-windowed one. Appending to the file the snapshot
    /// header already anchors keeps the write tiny; a crash mid-append
    /// leaves a torn tail the decoder truncates cleanly.
    fn append_journal(&mut self, agent: &RiptideAgent, now: SimTime) {
        let cur = agent.installed_view();
        let mut records = Vec::new();
        for &key in self.last_installed.keys() {
            if !cur.contains_key(&key) {
                records.push(JournalRecord {
                    at: now,
                    key,
                    op: JournalOp::Withdraw,
                });
            }
        }
        for (&key, &window) in cur {
            if self.last_installed.get(&key) != Some(&window) {
                records.push(JournalRecord {
                    at: now,
                    key,
                    op: JournalOp::Install { window },
                });
            }
        }
        if records.is_empty() {
            return;
        }
        let mut bytes = Vec::with_capacity(records.len() * riptide::persist::JOURNAL_RECORD_BYTES);
        for r in &records {
            r.encode_into(&mut bytes);
        }
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(&bytes));
        match appended {
            Ok(()) => self.last_installed = cur.clone(),
            Err(e) => eprintln!("# state: cannot append to {}: {e}", self.path),
        }
    }

    /// Post-poll hook: a full rewrite every `snapshot_every` polls,
    /// journal deltas in between.
    fn after_poll(&mut self, agent: &RiptideAgent, now: SimTime) {
        self.polls_since_snapshot += 1;
        if self.polls_since_snapshot >= self.snapshot_every {
            self.write_snapshot(agent, now);
        } else {
            self.append_journal(agent, now);
        }
    }
}

fn main() -> ExitCode {
    // First pass: a `--config <file>` seeds the builder; flags given on
    // the command line override it.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut builder = RiptideConfig::builder();
    if let Some(pos) = raw.iter().position(|a| a == "--config") {
        if pos + 1 >= raw.len() {
            return fail("--config requires a path");
        }
        let path = raw.remove(pos + 1);
        raw.remove(pos);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        match RiptideConfig::from_conf_str(&text) {
            Ok(cfg) => {
                builder = RiptideConfig::builder()
                    .update_interval(cfg.update_interval)
                    .ttl(cfg.ttl)
                    .cwnd_max(cfg.cwnd_max)
                    .cwnd_min(cfg.cwnd_min)
                    .combine(cfg.combine)
                    .policy(cfg.policy)
                    .granularity(cfg.granularity);
                if let Some(t) = cfg.trend {
                    builder = builder.trend(t);
                }
                if let Some(a) = cfg.aggregation {
                    builder = builder.aggregation(a);
                }
            }
            Err(e) => return fail(&format!("{path}: {e}")),
        }
    }
    let mut snapshots: Vec<String> = Vec::new();
    let mut recover = false;
    let mut follow = false;
    let mut show_table = false;
    let mut show_metrics = false;
    let mut metrics_file: Option<String> = None;
    let mut state_file: Option<String> = None;
    let mut snapshot_every = 60u64;
    let mut trend = false;
    let mut interval = SimDuration::from_secs(1);

    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--alpha" => match value("--alpha")
                .and_then(|v| v.parse::<f64>().map_err(|e| format!("bad --alpha: {e}")))
            {
                Ok(a) => builder = builder.alpha(a),
                Err(e) => return fail(&e),
            },
            "--no-history" => builder = builder.history(HistoryStrategy::None),
            "--policy" => match value("--policy").and_then(|v| {
                LearningPolicy::from_spec(&v).map_err(|e| format!("bad --policy: {e}"))
            }) {
                Ok(p) => builder = builder.policy(p),
                Err(e) => return fail(&e),
            },
            "--cmax" => match value("--cmax")
                .and_then(|v| v.parse::<u32>().map_err(|e| format!("bad --cmax: {e}")))
            {
                Ok(w) => builder = builder.cwnd_max(w),
                Err(e) => return fail(&e),
            },
            "--cmin" => match value("--cmin")
                .and_then(|v| v.parse::<u32>().map_err(|e| format!("bad --cmin: {e}")))
            {
                Ok(w) => builder = builder.cwnd_min(w),
                Err(e) => return fail(&e),
            },
            "--ttl" => match value("--ttl")
                .and_then(|v| v.parse::<u64>().map_err(|e| format!("bad --ttl: {e}")))
            {
                Ok(s) => builder = builder.ttl(SimDuration::from_secs(s)),
                Err(e) => return fail(&e),
            },
            "--interval" => match value("--interval")
                .and_then(|v| v.parse::<u64>().map_err(|e| format!("bad --interval: {e}")))
            {
                Ok(s) => {
                    interval = SimDuration::from_secs(s);
                    builder = builder.update_interval(interval);
                }
                Err(e) => return fail(&e),
            },
            "--combine" => match value("--combine") {
                Ok(v) => {
                    let strategy = match v.as_str() {
                        "average" => CombineStrategy::Average,
                        "max" => CombineStrategy::Max,
                        "traffic-weighted" => CombineStrategy::TrafficWeighted,
                        other => return fail(&format!("unknown combine strategy {other:?}")),
                    };
                    builder = builder.combine(strategy);
                }
                Err(e) => return fail(&e),
            },
            "--granularity" => match value("--granularity") {
                Ok(v) => {
                    let g = if v == "host" {
                        Granularity::Host
                    } else if let Some(len) = v.strip_prefix('/') {
                        match len.parse::<u8>() {
                            Ok(l) if l <= 32 => Granularity::Prefix(l),
                            _ => return fail(&format!("bad prefix length {v:?}")),
                        }
                    } else {
                        return fail(&format!(
                            "granularity must be `host` or `/<len>`, got {v:?}"
                        ));
                    };
                    builder = builder.granularity(g);
                }
                Err(e) => return fail(&e),
            },
            "--trend" => trend = true,
            "--recover" => recover = true,
            "--follow" => follow = true,
            "--show-table" => show_table = true,
            "--metrics" => show_metrics = true,
            "--metrics-file" => match value("--metrics-file") {
                Ok(p) => metrics_file = Some(p),
                Err(e) => return fail(&e),
            },
            "--state-file" => match value("--state-file") {
                Ok(p) => state_file = Some(p),
                Err(e) => return fail(&e),
            },
            "--snapshot-every" => match value("--snapshot-every").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("bad --snapshot-every: {e}"))
            }) {
                Ok(n) if n >= 1 => snapshot_every = n,
                Ok(_) => return fail("--snapshot-every must be at least 1"),
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                println!(
                    "usage: riptided [options] <ss-snapshot>...  (see --help header in source)"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown option {other:?}"));
            }
            path => snapshots.push(path.to_string()),
        }
    }
    if trend {
        builder = builder.trend(TrendPolicy::default());
    }
    if snapshots.is_empty() {
        return fail("no ss snapshots given (each file is one poll)");
    }

    let config = match builder.build() {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let mut agent = match RiptideAgent::new(config) {
        Ok(a) => a,
        Err(e) => return fail(&e.to_string()),
    };
    // Telemetry is always on in the daemon: the registry is a handful of
    // atomics and the journal a small ring buffer, and both feed
    // `--metrics`, `--metrics-file` and the SIGUSR1 journal dump.
    let telemetry = AgentTelemetry::standalone(256);
    agent.attach_telemetry(telemetry.clone());

    // Write-then-rename so a scraper racing a flush always reads a
    // complete exposition, never a truncated one: `std::fs::write`
    // truncates in place, and node_exporter-style textfile collectors
    // poll on their own clock. The temp file is a sibling (same
    // directory, pid-suffixed) so the rename stays on one filesystem
    // and therefore atomic.
    let flush_metrics = |telemetry: &AgentTelemetry| {
        if let Some(path) = &metrics_file {
            let tmp = format!("{path}.{}.tmp", std::process::id());
            let write = std::fs::write(&tmp, telemetry.registry().render_prometheus())
                .and_then(|()| std::fs::rename(&tmp, path));
            if let Err(e) = write {
                let _ = std::fs::remove_file(&tmp);
                eprintln!("# cannot write metrics file {path}: {e}");
            }
        }
    };

    let table = Rc::new(RefCell::new(RouteTable::new()));
    let mut controller = SharedRouteController::new(Rc::clone(&table));
    if recover {
        let removed = riptide::control::recover_stale_routes(&mut table.borrow_mut());
        eprintln!("# recovered: flushed {removed} stale route(s)");
    }

    install_signal_handlers();

    let mut printed = 0usize;

    // Warm restart: decode the state file (if any), replay its journal
    // onto the snapshot, and hand the merged table to the agent, which
    // clamps every window and reinstalls the routes through the
    // controller — the jump-start windows are live before the first
    // poll instead of after a full relearn cycle. A damaged snapshot
    // block (or a missing file) means starting empty, never a panic.
    let mut persist = state_file.map(|path| {
        match std::fs::read(&path) {
            Ok(bytes) if !bytes.is_empty() => match decode_state(&bytes) {
                Ok(state) => {
                    if state.torn_tail {
                        eprintln!("# state: dropped a torn journal tail in {path}");
                    }
                    let merged = riptide::persist::replay(&state.snapshot, &state.journal);
                    let restored = agent.restore_state(&merged, SimTime::ZERO, &mut controller);
                    for cmd in &controller.command_log()[printed..] {
                        println!("{cmd}");
                    }
                    printed = controller.command_log().len();
                    eprintln!("# state: restored {} route(s) from {path}", restored.len());
                }
                Err(e) => eprintln!("# state: ignoring {path}: {e}"),
            },
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!("# state: cannot read {path}: {e}"),
        }
        let mut p = PersistState {
            path,
            snapshot_every,
            last_installed: std::collections::BTreeMap::new(),
            polls_since_snapshot: 0,
        };
        // Anchor the file with a fresh snapshot right away: journal
        // appends need a valid header to land behind, and a prior run's
        // already-replayed journal should not be replayed again.
        p.write_snapshot(&agent, SimTime::ZERO);
        p
    });

    // One poll: read a snapshot, tick the agent, print the commands the
    // tick produced. Used for the listed snapshots and then, under
    // `--follow`, for every re-poll of the last one.
    let mut poll_once = |agent: &mut RiptideAgent,
                         controller: &mut SharedRouteController,
                         path: &str,
                         now: SimTime|
     -> Result<(), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut sock_table = SockTable::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let report = agent.tick(now, &mut sock_table, controller);
        for e in &report.errors {
            eprintln!("# {path}: {e}");
        }
        for cmd in &controller.command_log()[printed..] {
            println!("{cmd}");
        }
        printed = controller.command_log().len();
        Ok(())
    };

    let mut polls = 0u64;
    for path in &snapshots {
        if SHUTDOWN.load(Ordering::SeqCst) {
            break;
        }
        polls += 1;
        let now = SimTime::ZERO + interval * polls;
        if let Err(e) = poll_once(&mut agent, &mut controller, path, now) {
            return fail(&e);
        }
        flush_metrics(&telemetry);
        if let Some(p) = persist.as_mut() {
            p.after_poll(&agent, now);
        }
    }

    if follow {
        // Daemon mode: the last snapshot path is the live feed (a cron
        // job or collector rewrites it in place); re-poll it every
        // interval until a shutdown signal arrives.
        let path = snapshots.last().expect("checked non-empty above");
        let wait = std::time::Duration::from_secs_f64(interval.as_secs_f64());
        while !sleep_interruptibly(wait) {
            if DUMP_REQUESTED.swap(false, Ordering::SeqCst) {
                eprint!("{}", telemetry.journal().render());
            }
            polls += 1;
            let now = SimTime::ZERO + interval * polls;
            if let Err(e) = poll_once(&mut agent, &mut controller, path, now) {
                return fail(&e);
            }
            flush_metrics(&telemetry);
            if let Some(p) = persist.as_mut() {
                p.after_poll(&agent, now);
            }
        }
    }

    if SHUTDOWN.load(Ordering::SeqCst) {
        // Graceful exit: persist the learned table as of the last poll
        // *before* the withdrawal sweep empties the installed view, so
        // the next start jump-starts from everything this run learned.
        if let Some(p) = persist.as_mut() {
            p.write_snapshot(&agent, SimTime::ZERO + interval * polls);
            eprintln!("# state: final snapshot written to {}", p.path);
        }
        // Then withdraw everything we installed so the host reverts to
        // kernel defaults the moment the daemon is gone, and flush the
        // final metrics snapshot (withdrawals included) and the
        // decision journal.
        let withdrawn = agent.shutdown(&mut controller);
        for cmd in &controller.command_log()[printed..] {
            println!("{cmd}");
        }
        eprintln!("# shutdown: withdrew {} route(s)", withdrawn.len());
        flush_metrics(&telemetry);
        eprint!("{}", telemetry.journal().render());
    }

    if show_table {
        eprintln!("# learned table:");
        eprint!("{}", table.borrow().render());
    }
    if show_metrics {
        eprint!("{}", telemetry.registry().render_prometheus());
    }
    ExitCode::SUCCESS
}
