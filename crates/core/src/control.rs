//! Route control outputs: how the agent's decisions reach the kernel.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use riptide_linuxnet::ip_cmd::IpRouteCmd;
use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_linuxnet::route::{RouteError, RouteTable};

/// A failed route-control action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlError {
    message: String,
}

impl ControlError {
    /// Creates an error with a human-readable description.
    pub fn new(message: impl Into<String>) -> Self {
        ControlError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route control failed: {}", self.message)
    }
}

impl std::error::Error for ControlError {}

impl From<RouteError> for ControlError {
    fn from(e: RouteError) -> Self {
        ControlError::new(e.to_string())
    }
}

/// The agent's actuator: install or withdraw per-destination initial
/// congestion windows.
///
/// In the simulated deployment this fronts a [`RouteTable`]; a real
/// deployment would shell out to `ip route` with exactly the commands
/// [`SharedRouteController::command_log`] records.
pub trait RouteController {
    /// Installs (or updates) the initial window for `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError`] if the underlying route operation fails.
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError>;

    /// Withdraws the window for `key`, restoring the stack default.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError`] if the route does not exist or cannot be
    /// removed.
    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError>;
}

impl<C: RouteController + ?Sized> RouteController for &mut C {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        (**self).set_initcwnd(key, window)
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        (**self).clear_initcwnd(key)
    }
}

impl RouteController for RouteTable {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        IpRouteCmd::set_initcwnd(key, window).apply(self)?;
        Ok(())
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        IpRouteCmd::del(key).apply(self)?;
        Ok(())
    }
}

/// A controller that drives a shared routing table (the shape the
/// simulation needs: the table is simultaneously the world's initcwnd
/// policy and the agent's actuator) and records every action as the
/// `ip route` command a shell deployment would run.
#[derive(Debug, Clone)]
pub struct SharedRouteController {
    table: Rc<RefCell<RouteTable>>,
    log: Vec<IpRouteCmd>,
}

impl SharedRouteController {
    /// Wraps a shared routing table.
    pub fn new(table: Rc<RefCell<RouteTable>>) -> Self {
        SharedRouteController {
            table,
            log: Vec::new(),
        }
    }

    /// The commands issued so far, oldest first.
    pub fn command_log(&self) -> &[IpRouteCmd] {
        &self.log
    }

    /// Renders the command log as shell lines (one per action).
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for cmd in &self.log {
            out.push_str(&cmd.to_string());
            out.push('\n');
        }
        out
    }

    /// The shared table handle.
    pub fn table(&self) -> Rc<RefCell<RouteTable>> {
        Rc::clone(&self.table)
    }
}

/// The window-range invariant, enforced at the last hop before the
/// kernel: a `CheckedController` refuses any install outside
/// `[c_min, c_max]` (§IV-D's no-harm property — a misbehaving layer above
/// must never leave a window in the kernel that the algorithm could not
/// have produced).
///
/// Wrap it *innermost* in a controller stack, directly in front of the
/// table, so that every path to an install — direct, retried, or
/// delayed-and-replayed — passes the check.
#[derive(Debug, Clone)]
pub struct CheckedController<C> {
    inner: C,
    lo: u32,
    hi: u32,
    installs: u64,
    breaches: u64,
    min_installed: u32,
    max_installed: u32,
}

impl<C: RouteController> CheckedController<C> {
    /// Wraps `inner`, allowing only windows in `[lo, hi]` through.
    pub fn new(inner: C, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "empty window range [{lo}, {hi}]");
        CheckedController {
            inner,
            lo,
            hi,
            installs: 0,
            breaches: 0,
            min_installed: u32::MAX,
            max_installed: 0,
        }
    }

    /// The accepted range.
    pub fn bounds(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    /// Installs that passed the check and reached the inner controller.
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Rejected installs (out-of-range windows). Zero in a healthy run.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// The extreme windows actually installed, or `None` before the
    /// first install. Both are within bounds by construction.
    pub fn installed_range(&self) -> Option<(u32, u32)> {
        (self.installs > 0).then_some((self.min_installed, self.max_installed))
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: RouteController> RouteController for CheckedController<C> {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        if window < self.lo || window > self.hi {
            self.breaches += 1;
            return Err(ControlError::new(format!(
                "window {window} outside [{}, {}] for {key}",
                self.lo, self.hi
            )));
        }
        self.inner.set_initcwnd(key, window)?;
        self.installs += 1;
        self.min_installed = self.min_installed.min(window);
        self.max_installed = self.max_installed.max(window);
        Ok(())
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        self.inner.clear_initcwnd(key)
    }
}

/// Startup recovery: removes routes a previous (crashed) agent instance
/// left behind, so learning restarts from a clean slate instead of
/// trusting stale windows of unknown age. Returns how many routes were
/// removed.
///
/// Only `proto static` routes carrying an `initcwnd` attribute — the
/// exact signature of Riptide's own installs — are touched; everything
/// else in the table is someone else's.
pub fn recover_stale_routes(table: &mut riptide_linuxnet::route::RouteTable) -> usize {
    use riptide_linuxnet::route::RouteProto;
    let stale: Vec<Ipv4Prefix> = table
        .iter()
        .filter(|r| r.attrs.proto == RouteProto::Static && r.attrs.initcwnd.is_some())
        .map(|r| r.prefix)
        .collect();
    for prefix in &stale {
        table.del(*prefix).expect("route listed a moment ago");
    }
    stale.len()
}

impl RouteController for SharedRouteController {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        let cmd = IpRouteCmd::set_initcwnd(key, window);
        cmd.apply(&mut self.table.borrow_mut())?;
        self.log.push(cmd);
        Ok(())
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        let cmd = IpRouteCmd::del(key);
        cmd.apply(&mut self.table.borrow_mut())?;
        self.log.push(cmd);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> Ipv4Prefix {
        Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, n))
    }

    #[test]
    fn route_table_is_a_controller() {
        let mut t = RouteTable::new();
        t.set_initcwnd(key(1), 80).unwrap();
        assert_eq!(t.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
        t.set_initcwnd(key(1), 90).unwrap();
        assert_eq!(t.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(90));
        t.clear_initcwnd(key(1)).unwrap();
        assert_eq!(t.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), None);
    }

    #[test]
    fn clear_missing_is_an_error() {
        let mut t = RouteTable::new();
        assert!(t.clear_initcwnd(key(1)).is_err());
    }

    #[test]
    fn shared_controller_logs_shell_commands() {
        let table = Rc::new(RefCell::new(RouteTable::new()));
        let mut ctl = SharedRouteController::new(Rc::clone(&table));
        ctl.set_initcwnd(key(7), 80).unwrap();
        ctl.clear_initcwnd(key(7)).unwrap();
        let log = ctl.render_log();
        assert_eq!(
            log,
            "ip route replace 10.0.1.7 proto static initcwnd 80\nip route del 10.0.1.7\n"
        );
        assert!(table.borrow().is_empty());
    }

    #[test]
    fn recovery_removes_only_riptide_signature_routes() {
        use riptide_linuxnet::route::{RouteAttrs, RouteProto};
        let mut t = RouteTable::new();
        // A dead predecessor's installs:
        t.set_initcwnd(key(1), 80).unwrap();
        t.set_initcwnd(key(2), 60).unwrap();
        // An operator's static route without initcwnd, and a kernel route:
        t.add("10.9.0.0/16".parse().unwrap(), RouteAttrs::default())
            .unwrap();
        t.add(
            "10.8.0.0/16".parse().unwrap(),
            RouteAttrs {
                proto: RouteProto::Kernel,
                initcwnd: Some(10),
                ..RouteAttrs::default()
            },
        )
        .unwrap();
        let removed = recover_stale_routes(&mut t);
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 2, "non-riptide routes untouched");
        assert_eq!(t.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), None);
    }

    #[test]
    fn checked_controller_blocks_out_of_range_windows() {
        let mut ctl = CheckedController::new(RouteTable::new(), 10, 100);
        ctl.set_initcwnd(key(1), 10).unwrap();
        ctl.set_initcwnd(key(2), 100).unwrap();
        assert!(ctl.set_initcwnd(key(3), 9).is_err());
        assert!(ctl.set_initcwnd(key(3), 101).is_err());
        assert!(ctl.set_initcwnd(key(3), 0).is_err());
        assert_eq!(ctl.installs(), 2);
        assert_eq!(ctl.breaches(), 3);
        assert_eq!(ctl.installed_range(), Some((10, 100)));
        // The rejected window never reached the table.
        assert_eq!(ctl.inner().initcwnd_for(Ipv4Addr::new(10, 0, 1, 3)), None);
        ctl.clear_initcwnd(key(1)).unwrap();
        assert_eq!(ctl.into_inner().len(), 1);
    }

    #[test]
    fn mut_references_are_controllers_too() {
        fn drive(ctl: &mut impl RouteController) {
            ctl.set_initcwnd(Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, 9)), 44)
                .unwrap();
        }
        let mut t = RouteTable::new();
        drive(&mut &mut t);
        assert_eq!(t.initcwnd_for(Ipv4Addr::new(10, 0, 1, 9)), Some(44));
    }

    #[test]
    fn shared_controller_mutations_visible_through_handle() {
        let table = Rc::new(RefCell::new(RouteTable::new()));
        let mut ctl = SharedRouteController::new(Rc::clone(&table));
        ctl.set_initcwnd(key(2), 55).unwrap();
        // The world-side policy would read the same table.
        assert_eq!(
            table.borrow().initcwnd_for(Ipv4Addr::new(10, 0, 1, 2)),
            Some(55)
        );
    }
}
