//! Anti-entropy fleet-sync primitives: table digests, bounded delta
//! sets, and deterministic conflict resolution.
//!
//! Riptide as published learns per machine; Pied Piper (PAPERS.md)
//! showed the next gains come from sharing learned state across hosts.
//! This module holds the *pure* half of that sharing — the pieces that
//! do not know about schedules, peers, or simulated networks:
//!
//! * [`SyncEntry`]: the unit of exchange — a destination key, its
//!   learned window, and the freshness stamp that arbitrates conflicts.
//! * [`TableDigest`]: a constant-size fingerprint of a peer's table.
//!   Gossip rounds are digest-first (push-pull): peers swap digests
//!   and only ship [`SyncDelta`]s when the digests differ, so a
//!   converged fleet costs 12 bytes per round per pair.
//! * [`SyncDelta`]: a bounded, freshest-first slice of a table.
//!   [`delta_for`] never exceeds `max_entries`, keeping gossip
//!   messages bounded no matter how large the table grows.
//! * [`remote_wins`]: the conflict rule — **newest `last_updated`
//!   wins**, ties keep local. Windows are clamp-merged into
//!   `[c_min, c_max]` by [`clamp_merge`] on the way in, so a peer
//!   with a different (or corrupt) configuration can never push an
//!   out-of-bounds window.
//!
//! The simulation-facing scheduler — who gossips with whom, when, and
//! the per-peer backoff when a peer is down — lives in
//! `riptide_cdn::gossip`; the agent-side application of a delta (which
//! reuses the `reconcile` invariant of never touching foreign routes)
//! is `RiptideAgent::merge_remote`.

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::SimTime;

/// One destination's learned state as exchanged between peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncEntry {
    /// The destination key.
    pub key: Ipv4Prefix,
    /// The learned (already clamped at the sender) window.
    pub window: u32,
    /// When the sender last refreshed the entry — the arbitration
    /// stamp: the newer entry wins a conflict.
    pub last_updated: SimTime,
}

/// A constant-size fingerprint of a table, exchanged before any deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDigest {
    /// Number of entries summarised.
    pub entries: u32,
    /// Order-sensitive FNV-1a over `(key, window, last_updated)` of
    /// the key-sorted entries — equal tables, equal fingerprints.
    pub fingerprint: u64,
}

/// Tuning for delta exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// Hard cap on entries per [`SyncDelta`] — the bounded-message-size
    /// guarantee.
    pub max_entries: usize,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig { max_entries: 256 }
    }
}

/// A bounded slice of a peer's table, freshest entries first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncDelta {
    /// The entries shipped, freshest `last_updated` first (key order
    /// breaks ties, so the selection is deterministic).
    pub entries: Vec<SyncEntry>,
    /// Whether the cap forced entries to be left out — the receiver
    /// knows another round is needed to converge.
    pub truncated: bool,
}

/// Computes the digest of a table given its key-sorted entries.
///
/// The caller supplies entries in key order (tables iterate sorted);
/// the fingerprint is FNV-1a over each entry's fields in sequence.
pub fn digest_of<'a, I>(entries: I) -> TableDigest
where
    I: IntoIterator<Item = &'a SyncEntry>,
{
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut count: u32 = 0;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for e in entries {
        mix(&u32::from(e.key.network()).to_le_bytes());
        mix(&[e.key.len()]);
        mix(&e.window.to_le_bytes());
        mix(&e.last_updated.as_nanos().to_le_bytes());
        count += 1;
    }
    TableDigest {
        entries: count,
        fingerprint: hash,
    }
}

/// Selects the bounded delta a peer should ship: entries refreshed
/// strictly after `newer_than`, freshest first, capped at
/// `config.max_entries`.
///
/// Freshest-first matters under the cap: the entries most likely to
/// win conflicts (and most likely to still be alive under TTL) travel
/// first, so a bounded round still moves the fleet toward agreement.
/// Ordering is fully deterministic — `last_updated` descending, then
/// key ascending.
pub fn delta_for(local: &[SyncEntry], newer_than: SimTime, config: &SyncConfig) -> SyncDelta {
    let mut fresh: Vec<SyncEntry> = local
        .iter()
        .filter(|e| e.last_updated > newer_than)
        .copied()
        .collect();
    fresh.sort_by(|a, b| {
        b.last_updated
            .cmp(&a.last_updated)
            .then_with(|| a.key.cmp(&b.key))
    });
    let truncated = fresh.len() > config.max_entries;
    fresh.truncate(config.max_entries);
    SyncDelta {
        entries: fresh,
        truncated,
    }
}

/// The conflict rule: does the remote entry replace the local one?
///
/// Newest `last_updated` wins; a tie keeps local (both sides apply the
/// same rule, so a tie converges to each side keeping its own equal
/// stamp — and equal stamps with different windows cannot arise from
/// the same deterministic learning step they'd both have had to take).
/// A destination the local table has never seen is always accepted.
pub fn remote_wins(local: Option<&SyncEntry>, remote: &SyncEntry) -> bool {
    match local {
        None => true,
        Some(l) => remote.last_updated > l.last_updated,
    }
}

/// Clamp-merges a remote window into the local bounds: whatever a peer
/// believes, what gets installed here lies in `[c_min, c_max]`.
pub fn clamp_merge(window: u32, c_min: u32, c_max: u32) -> u32 {
    window.clamp(c_min, c_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn entry(n: u8, window: u32, at: u64) -> SyncEntry {
        SyncEntry {
            key: Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, n)),
            window,
            last_updated: SimTime::from_secs(at),
        }
    }

    #[test]
    fn equal_tables_have_equal_digests() {
        let a = vec![entry(1, 80, 10), entry(2, 40, 12)];
        let b = a.clone();
        assert_eq!(digest_of(&a), digest_of(&b));
        assert_eq!(digest_of(&a).entries, 2);
    }

    #[test]
    fn digest_is_sensitive_to_every_field() {
        let base = vec![entry(1, 80, 10)];
        let other_key = vec![entry(2, 80, 10)];
        let other_window = vec![entry(1, 81, 10)];
        let other_stamp = vec![entry(1, 80, 11)];
        let d = digest_of(&base).fingerprint;
        assert_ne!(d, digest_of(&other_key).fingerprint);
        assert_ne!(d, digest_of(&other_window).fingerprint);
        assert_ne!(d, digest_of(&other_stamp).fingerprint);
        assert_ne!(
            digest_of(&base).fingerprint,
            digest_of(&[]).fingerprint,
            "empty table digests differently"
        );
    }

    #[test]
    fn delta_is_freshest_first_and_bounded() {
        let local = vec![
            entry(1, 80, 10),
            entry(2, 40, 30),
            entry(3, 60, 20),
            entry(4, 20, 5),
        ];
        let delta = delta_for(
            &local,
            SimTime::from_secs(8),
            &SyncConfig { max_entries: 2 },
        );
        // Entry 4 (at=5) filtered by newer_than; the freshest two of the
        // remaining three make the cut.
        assert_eq!(
            delta.entries,
            vec![entry(2, 40, 30), entry(3, 60, 20)],
            "freshest first"
        );
        assert!(delta.truncated, "entry 1 was left behind");

        let all = delta_for(&local, SimTime::ZERO, &SyncConfig::default());
        assert_eq!(all.entries.len(), 4);
        assert!(!all.truncated);
    }

    #[test]
    fn delta_tie_breaks_on_key() {
        let local = vec![entry(9, 10, 7), entry(3, 10, 7)];
        let delta = delta_for(&local, SimTime::ZERO, &SyncConfig::default());
        assert_eq!(delta.entries, vec![entry(3, 10, 7), entry(9, 10, 7)]);
    }

    #[test]
    fn newest_wins_and_ties_keep_local() {
        let local = entry(1, 80, 10);
        assert!(remote_wins(None, &entry(1, 50, 1)), "unknown key accepted");
        assert!(remote_wins(Some(&local), &entry(1, 50, 11)));
        assert!(!remote_wins(Some(&local), &entry(1, 50, 10)), "tie → local");
        assert!(!remote_wins(Some(&local), &entry(1, 50, 9)));
    }

    #[test]
    fn clamp_merge_bounds_foreign_windows() {
        assert_eq!(clamp_merge(5, 10, 100), 10);
        assert_eq!(clamp_merge(500, 10, 100), 100);
        assert_eq!(clamp_merge(64, 10, 100), 64);
    }
}
