//! The paper's §II-B analytic transfer model.
//!
//! Assumptions, exactly as stated there: zero serialization delay, no
//! delayed ACKs, no loss, no flow-control bottleneck. Under lossless slow
//! start a sender with initial window `w` delivers `w` segments in the
//! first round trip, `2w` in the second, `4w` in the third, … so after
//! `k` round trips it has delivered `w·(2^k − 1)` segments. The model
//! inverts that: how many round trips does a file of a given size need,
//! and what does a larger initial window save?
//!
//! This drives Figures 3, 4 and 6 of the paper.

use riptide_simnet::time::SimDuration;

/// Default MSS used throughout the paper's arithmetic (1500-byte packets
/// with headers ≈ 1448 payload bytes; "approximately 15KB" in 10
/// segments).
pub const DEFAULT_MSS: u32 = 1448;

/// Round trips needed to deliver `segments` full segments starting from
/// initial window `initcwnd`, under lossless slow start.
///
/// Zero segments need zero round trips.
///
/// # Panics
///
/// Panics if `initcwnd` is zero.
///
/// # Examples
///
/// ```
/// use riptide::model::rtts_for_segments;
///
/// // 100 KB ≈ 70 segments: windows 10,20,40 → 3 RTTs at the default.
/// assert_eq!(rtts_for_segments(70, 10), 3);
/// // With initcwnd 100 the whole file fits in the first round trip.
/// assert_eq!(rtts_for_segments(70, 100), 1);
/// ```
pub fn rtts_for_segments(segments: u64, initcwnd: u32) -> u32 {
    assert!(initcwnd > 0, "initcwnd must be positive");
    if segments == 0 {
        return 0;
    }
    let w = initcwnd as u64;
    let mut rtts = 0u32;
    let mut delivered = 0u64;
    let mut window = w;
    while delivered < segments {
        delivered = delivered.saturating_add(window);
        window = window.saturating_mul(2);
        rtts += 1;
    }
    rtts
}

/// Round trips needed for a `bytes`-sized file with the given MSS.
///
/// # Panics
///
/// Panics if `mss` or `initcwnd` is zero.
pub fn rtts_for_bytes(bytes: u64, mss: u32, initcwnd: u32) -> u32 {
    assert!(mss > 0, "mss must be positive");
    rtts_for_segments(bytes.div_ceil(mss as u64), initcwnd)
}

/// Fractional reduction in round trips from raising the initial window
/// from `base_initcwnd` to `initcwnd` for a `bytes`-sized file — the
/// quantity Fig. 4 plots (as a percentage) against file size.
///
/// Returns 0 for empty files.
pub fn rtt_gain(bytes: u64, mss: u32, initcwnd: u32, base_initcwnd: u32) -> f64 {
    let base = rtts_for_bytes(bytes, mss, base_initcwnd);
    if base == 0 {
        return 0.0;
    }
    let improved = rtts_for_bytes(bytes, mss, initcwnd);
    (base as f64 - improved as f64) / base as f64
}

/// Total transfer time for a file under the model: data round trips
/// (plus one for the handshake when `include_handshake`) multiplied by
/// the path RTT. Drives Fig. 6.
pub fn transfer_time(
    bytes: u64,
    mss: u32,
    initcwnd: u32,
    rtt: SimDuration,
    include_handshake: bool,
) -> SimDuration {
    let mut rtts = rtts_for_bytes(bytes, mss, initcwnd);
    if include_handshake {
        rtts += 1;
    }
    rtt.saturating_mul(rtts as u64)
}

/// The largest file (in bytes) that completes in a single round trip at
/// the given initial window — the "fits in the initial window" threshold
/// the paper quotes as ≈15 KB for the default of 10.
pub fn one_rtt_capacity(mss: u32, initcwnd: u32) -> u64 {
    mss as u64 * initcwnd as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_need_zero_rtts() {
        assert_eq!(rtts_for_segments(0, 10), 0);
        assert_eq!(rtts_for_bytes(0, DEFAULT_MSS, 10), 0);
    }

    #[test]
    fn one_segment_needs_one_rtt() {
        assert_eq!(rtts_for_segments(1, 10), 1);
        assert_eq!(rtts_for_bytes(1, DEFAULT_MSS, 10), 1);
    }

    #[test]
    fn slow_start_doubling_schedule() {
        // iw=10: cumulative capacity 10, 30, 70, 150, ...
        assert_eq!(rtts_for_segments(10, 10), 1);
        assert_eq!(rtts_for_segments(11, 10), 2);
        assert_eq!(rtts_for_segments(30, 10), 2);
        assert_eq!(rtts_for_segments(31, 10), 3);
        assert_eq!(rtts_for_segments(70, 10), 3);
        assert_eq!(rtts_for_segments(71, 10), 4);
        assert_eq!(rtts_for_segments(150, 10), 4);
    }

    #[test]
    fn papers_15kb_threshold() {
        // §I: "any flows larger than 15KB requiring more than a single
        // RTT" with the default window of 10.
        assert_eq!(one_rtt_capacity(DEFAULT_MSS, 10), 14_480);
        assert_eq!(rtts_for_bytes(14_480, DEFAULT_MSS, 10), 1);
        assert_eq!(rtts_for_bytes(15_000, DEFAULT_MSS, 10), 2);
    }

    #[test]
    fn papers_100kb_example() {
        // §II-B / Fig. 6: 100 KB at the paper's four candidate windows.
        let bytes = 100 * 1000;
        assert_eq!(rtts_for_bytes(bytes, DEFAULT_MSS, 10), 3);
        assert_eq!(rtts_for_bytes(bytes, DEFAULT_MSS, 25), 2);
        assert_eq!(rtts_for_bytes(bytes, DEFAULT_MSS, 50), 2);
        assert_eq!(rtts_for_bytes(bytes, DEFAULT_MSS, 100), 1);
    }

    #[test]
    fn probe_sizes_match_paper_claims() {
        // §IV-A: "the 50 and 100KB probes are too large to fit in the
        // Linux default initial congestion window of 10"; 10 KB fits.
        assert_eq!(rtts_for_bytes(10_000, DEFAULT_MSS, 10), 1);
        assert!(rtts_for_bytes(50_000, DEFAULT_MSS, 10) > 1);
        assert!(rtts_for_bytes(100_000, DEFAULT_MSS, 10) > 1);
    }

    #[test]
    fn gain_is_zero_when_file_already_fits() {
        assert_eq!(rtt_gain(10_000, DEFAULT_MSS, 100, 10), 0.0);
        assert_eq!(rtt_gain(0, DEFAULT_MSS, 100, 10), 0.0);
    }

    #[test]
    fn gain_for_100kb_matches_hand_arithmetic() {
        // 3 RTTs -> 1 RTT: 66.7% reduction.
        let g = rtt_gain(100_000, DEFAULT_MSS, 100, 10);
        assert!((g - 2.0 / 3.0).abs() < 1e-9, "gain {g}");
        // 3 -> 2: 33.3%.
        let g = rtt_gain(100_000, DEFAULT_MSS, 25, 10);
        assert!((g - 1.0 / 3.0).abs() < 1e-9, "gain {g}");
    }

    #[test]
    fn gain_diminishes_for_very_large_files() {
        // Fig. 4: benefits fade past ~1 MB because many RTTs are needed
        // regardless.
        let small = rtt_gain(100_000, DEFAULT_MSS, 100, 10);
        let large = rtt_gain(10_000_000, DEFAULT_MSS, 100, 10);
        assert!(large < small, "gain {large} should fade vs {small}");
        assert!(large < 0.45, "very large files keep most of their RTTs");
    }

    #[test]
    fn transfer_time_scales_with_rtt() {
        // The paper's median-RTT example: at 125 ms, 100 KB takes
        // 375 ms at iw=10 vs 125 ms at iw=100 — a 250 ms saving.
        let rtt = SimDuration::from_millis(125);
        let slow = transfer_time(100_000, DEFAULT_MSS, 10, rtt, false);
        let fast = transfer_time(100_000, DEFAULT_MSS, 100, rtt, false);
        assert_eq!(slow, SimDuration::from_millis(375));
        assert_eq!(fast, SimDuration::from_millis(125));
        assert_eq!(slow - fast, SimDuration::from_millis(250));
    }

    #[test]
    fn handshake_adds_one_rtt() {
        let rtt = SimDuration::from_millis(100);
        let without = transfer_time(10_000, DEFAULT_MSS, 10, rtt, false);
        let with = transfer_time(10_000, DEFAULT_MSS, 10, rtt, true);
        assert_eq!(with - without, rtt);
    }

    #[test]
    fn monotonicity_bigger_window_never_hurts() {
        for bytes in [1u64, 10_000, 50_000, 100_000, 1_000_000, 10_000_000] {
            let mut prev = u32::MAX;
            for iw in [10u32, 25, 50, 100, 200] {
                let r = rtts_for_bytes(bytes, DEFAULT_MSS, iw);
                assert!(r <= prev, "rtts must not increase with window");
                prev = r;
            }
        }
    }

    #[test]
    #[should_panic(expected = "initcwnd")]
    fn zero_initcwnd_panics() {
        let _ = rtts_for_segments(10, 0);
    }

    #[test]
    #[should_panic(expected = "mss")]
    fn zero_mss_panics() {
        let _ = rtts_for_bytes(10, 0, 10);
    }
}
