//! Loss-aware guardrails: a per-destination circuit breaker over the
//! retransmit counters `ss` already reports.
//!
//! Riptide's no-harm argument (§IV-D of the paper) rests on the learned
//! window being *what the path recently sustained*. When the path
//! degrades faster than the EWMA forgets — a peering shift, a
//! newly-congested middle mile — a jump-started connection slams a
//! 50-segment burst into a path that now drops it, and the "optimization"
//! becomes the harm. The guard closes that loop: it differentiates each
//! destination's cumulative retransmit counter into a per-interval loss
//! rate and, when a *jump-started* destination runs hot, demotes it back
//! to the kernel-default window until the path proves itself again.
//!
//! The breaker is three-state, in the classic circuit-breaker shape:
//!
//! * **Closed** — healthy; the learned window installs normally.
//! * **Open** — tripped; the destination is pinned to the probe window
//!   (kernel default) and learning output is suppressed.
//! * **Half-open** — the damping penalty has decayed below the reuse
//!   threshold; the destination still runs at the probe window while the
//!   guard counts clean intervals. Enough clean probes close the breaker;
//!   one lossy interval re-trips it.
//!
//! Re-trip hysteresis borrows BGP flap damping (RFC 2439): each trip adds
//! a fixed penalty, the penalty decays exponentially with a configured
//! half-life, and the destination is suppressed while the penalty sits
//! above the suppress threshold and only reconsidered once it has decayed
//! below the (lower) reuse threshold. A destination that flaps
//! repeatedly therefore stays demoted for exponentially longer than one
//! that tripped once.

use std::collections::BTreeMap;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::{SimDuration, SimTime};

use crate::config::ConfigError;

/// Bytes per segment assumed when converting `bytes_acked` deltas into a
/// delivered-segment estimate (standard Ethernet MSS).
pub const SEGMENT_BYTES: u64 = 1448;

/// Tunables for the loss guard.
///
/// Defaults are conservative: a 5% per-interval retransmit rate on a
/// destination we jump-started trips the breaker, and the RFC 2439-style
/// penalty numbers (1000 per trip, suppress at 1000, reuse at 500,
/// half-life 60 s) mean a single trip demotes the destination for one
/// half-life and repeated trips for multiples of it.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Per-interval retransmit rate (retransmitted / (retransmitted +
    /// delivered) segments) above which a jump-started destination trips.
    pub retrans_threshold: f64,
    /// Minimum segments (delivered + retransmitted) an interval must
    /// carry before the guard judges it — tiny samples are noise.
    pub min_samples: u64,
    /// The demoted window installed while Open or Half-open: the kernel
    /// default, so a tripped destination behaves exactly as if Riptide
    /// never touched it.
    pub probe_window: u32,
    /// Penalty added per trip (RFC 2439 figure: 1000).
    pub trip_penalty: f64,
    /// Penalty at or above which the destination is suppressed (Open).
    pub suppress_threshold: f64,
    /// Penalty below which a suppressed destination becomes Half-open.
    pub reuse_threshold: f64,
    /// Ceiling on accumulated penalty, bounding worst-case demotion time.
    pub penalty_cap: f64,
    /// Exponential-decay half-life of the penalty.
    pub half_life: SimDuration,
    /// Consecutive clean Half-open intervals required to close.
    pub clean_probes: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            retrans_threshold: 0.05,
            min_samples: 50,
            probe_window: 10,
            trip_penalty: 1000.0,
            suppress_threshold: 1000.0,
            reuse_threshold: 500.0,
            penalty_cap: 4000.0,
            // RFC 2439 deployments damp for minutes, not seconds: one
            // trip suppresses for ~5 min, a relapsing destination for up
            // to ~10 (cap = 4 trips, two half-lives to reuse).
            half_life: SimDuration::from_secs(300),
            clean_probes: 3,
        }
    }
}

impl GuardConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if thresholds are out of range or ordered
    /// inconsistently (e.g. reuse above suppress, which could never
    /// re-admit a destination).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.retrans_threshold > 0.0 && self.retrans_threshold < 1.0) {
            return Err(ConfigError::new("retrans_threshold must be in (0, 1)"));
        }
        if self.probe_window == 0 {
            return Err(ConfigError::new("probe_window must be at least 1"));
        }
        if self.trip_penalty.is_nan() || self.trip_penalty <= 0.0 {
            return Err(ConfigError::new("trip_penalty must be positive"));
        }
        if !(self.reuse_threshold > 0.0 && self.reuse_threshold <= self.suppress_threshold) {
            return Err(ConfigError::new(
                "need 0 < reuse_threshold <= suppress_threshold",
            ));
        }
        if self.penalty_cap < self.suppress_threshold {
            return Err(ConfigError::new(
                "penalty_cap below suppress_threshold could never suppress",
            ));
        }
        if self.half_life.is_zero() {
            return Err(ConfigError::new("half_life must be non-zero"));
        }
        if self.clean_probes == 0 {
            return Err(ConfigError::new("clean_probes must be at least 1"));
        }
        Ok(())
    }
}

/// The circuit-breaker state of one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: the learned window installs normally.
    #[default]
    Closed,
    /// Tripped: pinned to the probe window, penalty above reuse.
    Open,
    /// Probing: still at the probe window, counting clean intervals.
    HalfOpen,
}

/// What one guard update decided, for stats and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardVerdict {
    /// The breaker state after this update.
    pub state: BreakerState,
    /// Whether this update tripped the breaker (Closed→Open or a
    /// Half-open re-trip).
    pub tripped: bool,
}

#[derive(Debug, Clone)]
struct DestState {
    breaker: BreakerState,
    /// Flap-damping penalty as of `penalty_at` (decays lazily).
    penalty: f64,
    penalty_at: SimTime,
    /// Cumulative (retransmits, bytes_acked) at the previous update —
    /// the baseline the next interval differentiates against.
    last_totals: Option<(u64, u64)>,
    clean_streak: u32,
}

impl DestState {
    fn new(now: SimTime) -> Self {
        DestState {
            breaker: BreakerState::Closed,
            penalty: 0.0,
            penalty_at: now,
            last_totals: None,
            clean_streak: 0,
        }
    }
}

/// The per-destination loss guard: differentiates cumulative retransmit
/// counters into interval rates and runs the damped circuit breaker.
///
/// # Examples
///
/// ```
/// use riptide::guard::{BreakerState, GuardConfig, LossGuard};
/// use riptide_linuxnet::prefix::Ipv4Prefix;
/// use riptide_simnet::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut guard = LossGuard::new(GuardConfig::default());
/// let key = Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 1));
/// // Baseline interval, then a 50%-loss interval on a jump-started path:
/// guard.update(key, 0, 1_000_000, true, SimTime::from_secs(1));
/// let v = guard.update(key, 500, 2_000_000, true, SimTime::from_secs(2));
/// assert!(v.tripped);
/// assert_eq!(guard.state(&key), BreakerState::Open);
/// assert!(guard.suppressed(&key));
/// ```
#[derive(Debug, Clone)]
pub struct LossGuard {
    config: GuardConfig,
    states: BTreeMap<Ipv4Prefix, DestState>,
    trips: u64,
}

impl LossGuard {
    /// Creates a guard with the given tunables.
    pub fn new(config: GuardConfig) -> Self {
        LossGuard {
            config,
            states: BTreeMap::new(),
            trips: 0,
        }
    }

    /// The guard's configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Total breaker trips over the guard's lifetime.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Destinations with live guard state.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the guard tracks no destinations.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Destinations per breaker state, as `(closed, open, half_open)` —
    /// the telemetry gauges' source.
    pub fn breaker_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in self.states.values() {
            match s.breaker {
                BreakerState::Closed => counts.0 += 1,
                BreakerState::Open => counts.1 += 1,
                BreakerState::HalfOpen => counts.2 += 1,
            }
        }
        counts
    }

    /// The breaker state for `key` (Closed when untracked).
    pub fn state(&self, key: &Ipv4Prefix) -> BreakerState {
        self.states.get(key).map(|s| s.breaker).unwrap_or_default()
    }

    /// Whether installs for `key` must be demoted to the probe window.
    pub fn suppressed(&self, key: &Ipv4Prefix) -> bool {
        !matches!(self.state(key), BreakerState::Closed)
    }

    /// The flap-damping penalty for `key` decayed to `now`.
    pub fn penalty(&self, key: &Ipv4Prefix, now: SimTime) -> f64 {
        self.states
            .get(key)
            .map(|s| decayed(s.penalty, s.penalty_at, now, self.config.half_life))
            .unwrap_or(0.0)
    }

    /// Drops all state for `key` (TTL expiry or table eviction: with the
    /// learned entry gone, there is nothing left to demote).
    pub fn forget(&mut self, key: &Ipv4Prefix) {
        self.states.remove(key);
    }

    /// Feeds one interval's cumulative counters for `key` and advances
    /// the breaker.
    ///
    /// `retrans_total` and `bytes_acked_total` are the *cumulative* sums
    /// over the destination group (straight off `ss`); the guard
    /// differentiates them against the previous update. `jump_started`
    /// says whether the currently installed window exceeds the probe
    /// window — only then can a lossy interval be *our* harm, so only
    /// then does a Closed breaker trip.
    pub fn update(
        &mut self,
        key: Ipv4Prefix,
        retrans_total: u64,
        bytes_acked_total: u64,
        jump_started: bool,
        now: SimTime,
    ) -> GuardVerdict {
        let config = self.config.clone();
        let state = self
            .states
            .entry(key)
            .or_insert_with(|| DestState::new(now));

        // Differentiate the cumulative counters. Saturating: connection
        // churn can make per-group sums regress, which must read as "no
        // new loss", never wrap.
        let (rate, volume) = match state.last_totals {
            Some((prev_retrans, prev_bytes)) => {
                let d_retrans = retrans_total.saturating_sub(prev_retrans);
                let d_segments = bytes_acked_total.saturating_sub(prev_bytes) / SEGMENT_BYTES;
                let total = d_retrans + d_segments;
                let rate = if total > 0 {
                    d_retrans as f64 / total as f64
                } else {
                    0.0
                };
                (rate, total)
            }
            // First sighting: no baseline, no judgement.
            None => (0.0, 0),
        };
        state.last_totals = Some((retrans_total, bytes_acked_total));

        // Decay the penalty to now.
        state.penalty = decayed(state.penalty, state.penalty_at, now, config.half_life);
        state.penalty_at = now;

        let judged = volume >= config.min_samples;
        let lossy = judged && rate > config.retrans_threshold;
        let mut tripped = false;

        match state.breaker {
            BreakerState::Closed => {
                if lossy && jump_started {
                    state.penalty = (state.penalty + config.trip_penalty).min(config.penalty_cap);
                    state.breaker = BreakerState::Open;
                    state.clean_streak = 0;
                    tripped = true;
                }
            }
            BreakerState::Open => {
                if state.penalty < config.reuse_threshold {
                    state.breaker = BreakerState::HalfOpen;
                    state.clean_streak = 0;
                }
            }
            BreakerState::HalfOpen => {
                if lossy {
                    // Still lossy at the kernel default: the path itself
                    // is sick. Re-trip with a fresh penalty on top of
                    // whatever remains — the flap-damping accumulation.
                    state.penalty = (state.penalty + config.trip_penalty).min(config.penalty_cap);
                    state.breaker = BreakerState::Open;
                    state.clean_streak = 0;
                    tripped = true;
                } else if judged {
                    state.clean_streak += 1;
                    if state.clean_streak >= config.clean_probes {
                        state.breaker = BreakerState::Closed;
                        state.clean_streak = 0;
                    }
                }
            }
        }

        if tripped {
            self.trips += 1;
        }
        GuardVerdict {
            state: state.breaker,
            tripped,
        }
    }
}

/// One destination's breaker state, exported for persistence.
///
/// The differentiation baseline (`last_totals`) is deliberately *not*
/// part of the export: cumulative `ss` counters do not survive a restart,
/// so a restored destination starts a fresh baseline and its first
/// post-restore interval is never judged — exactly the behaviour of a
/// first sighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardExport {
    /// The destination key.
    pub key: Ipv4Prefix,
    /// Breaker state at export time.
    pub breaker: BreakerState,
    /// Flap-damping penalty as of `penalty_at`.
    pub penalty: f64,
    /// When `penalty` was last materialised.
    pub penalty_at: SimTime,
    /// Consecutive clean Half-open intervals counted so far.
    pub clean_streak: u32,
}

impl LossGuard {
    /// Exports every destination's breaker state in key order, for the
    /// persistence snapshot.
    pub fn export_states(&self) -> Vec<GuardExport> {
        self.states
            .iter()
            .map(|(key, s)| GuardExport {
                key: *key,
                breaker: s.breaker,
                penalty: s.penalty,
                penalty_at: s.penalty_at,
                clean_streak: s.clean_streak,
            })
            .collect()
    }

    /// Restores exported breaker states, replacing any state already
    /// held for the same keys. Restored destinations get a fresh
    /// differentiation baseline (see [`GuardExport`]); penalties keep
    /// decaying from their recorded `penalty_at`, so an Open breaker
    /// that would have reached reuse during the downtime does so on its
    /// first post-restore update.
    pub fn restore_states(&mut self, exports: &[GuardExport]) {
        for e in exports {
            self.states.insert(
                e.key,
                DestState {
                    breaker: e.breaker,
                    penalty: e.penalty,
                    penalty_at: e.penalty_at,
                    last_totals: None,
                    clean_streak: e.clean_streak,
                },
            );
        }
    }
}

/// Exponential decay: `penalty * 0.5^(Δt / half_life)`.
fn decayed(penalty: f64, since: SimTime, now: SimTime, half_life: SimDuration) -> f64 {
    if penalty == 0.0 {
        return 0.0;
    }
    let dt = now.saturating_since(since);
    if dt.is_zero() {
        return penalty;
    }
    let halves = dt.as_secs_f64() / half_life.as_secs_f64();
    penalty * 0.5f64.powf(halves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> Ipv4Prefix {
        Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, n))
    }

    /// 1 MB per interval ≈ 690 segments — comfortably above min_samples.
    const MEG: u64 = 1_000_000;

    fn baseline(guard: &mut LossGuard, k: Ipv4Prefix) {
        let v = guard.update(k, 0, 0, true, SimTime::from_secs(0));
        assert_eq!(v.state, BreakerState::Closed);
        assert!(!v.tripped, "first sighting never judges");
    }

    #[test]
    fn clean_traffic_stays_closed() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        for t in 1..20 {
            let v = g.update(key(1), 0, t * MEG, true, SimTime::from_secs(t));
            assert_eq!(v.state, BreakerState::Closed);
        }
        assert_eq!(g.trips(), 0);
        assert_eq!(g.penalty(&key(1), SimTime::from_secs(20)), 0.0);
    }

    #[test]
    fn lossy_jump_started_destination_trips() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        // 200 retransmits against ~690 delivered segments: ~22% loss.
        let v = g.update(key(1), 200, MEG, true, SimTime::from_secs(1));
        assert!(v.tripped);
        assert_eq!(v.state, BreakerState::Open);
        assert!(g.suppressed(&key(1)));
        assert_eq!(g.trips(), 1);
    }

    #[test]
    fn loss_at_kernel_default_never_trips() {
        // Not jump-started: the kernel default can't be Riptide's harm.
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        let v = g.update(key(1), 500, MEG, false, SimTime::from_secs(1));
        assert!(!v.tripped);
        assert_eq!(v.state, BreakerState::Closed);
    }

    #[test]
    fn tiny_samples_are_not_judged() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        // 3 retransmits, ~7 delivered: 30% "rate" on 10 segments — noise.
        let v = g.update(key(1), 3, 10_000, true, SimTime::from_secs(1));
        assert!(!v.tripped, "below min_samples");
        assert_eq!(v.state, BreakerState::Closed);
    }

    #[test]
    fn penalty_decays_through_half_open_to_closed() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        g.update(key(1), 200, MEG, true, SimTime::from_secs(1));
        assert_eq!(g.state(&key(1)), BreakerState::Open);

        // Immediately after the trip the penalty is ~1000; one half-life
        // (300 s) later it is ~500, just at reuse; a bit more and we are
        // below.
        let p0 = g.penalty(&key(1), SimTime::from_secs(1));
        assert!((p0 - 1000.0).abs() < 1e-9);
        assert!(g.penalty(&key(1), SimTime::from_secs(301)) <= 500.0 + 1e-9);

        // Clean intervals while Open: first crossing below reuse moves to
        // HalfOpen, then clean_probes clean intervals close it.
        let mut t = 302;
        let v = g.update(key(1), 200, 2 * MEG, false, SimTime::from_secs(t));
        assert_eq!(v.state, BreakerState::HalfOpen);
        let mut state = v.state;
        for i in 1..=3u64 {
            t += 1;
            let v = g.update(key(1), 200, (2 + i) * MEG, false, SimTime::from_secs(t));
            state = v.state;
        }
        assert_eq!(state, BreakerState::Closed);
        assert!(!g.suppressed(&key(1)));
    }

    #[test]
    fn half_open_relapse_re_trips_with_accumulated_penalty() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        g.update(key(1), 200, MEG, true, SimTime::from_secs(1));
        // Decay to half-open…
        let v = g.update(key(1), 200, 2 * MEG, false, SimTime::from_secs(310));
        assert_eq!(v.state, BreakerState::HalfOpen);
        // …then a lossy probe interval: re-trip, penalty stacks above a
        // single trip's worth, so the second demotion outlasts the first.
        let v = g.update(key(1), 500, 3 * MEG, false, SimTime::from_secs(311));
        assert!(v.tripped);
        assert_eq!(v.state, BreakerState::Open);
        assert!(g.penalty(&key(1), SimTime::from_secs(311)) > 1000.0);
        assert_eq!(g.trips(), 2);
    }

    #[test]
    fn penalty_is_capped() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        let mut bytes = MEG;
        let mut t = 1;
        // Flap hard: loss every interval, alternating through half-open.
        for _ in 0..50 {
            g.update(key(1), 1_000_000, bytes, true, SimTime::from_secs(t));
            bytes += MEG;
            t += 1;
        }
        assert!(g.penalty(&key(1), SimTime::from_secs(t)) <= 4000.0);
    }

    #[test]
    fn counter_regression_reads_as_no_loss() {
        let mut g = LossGuard::new(GuardConfig::default());
        g.update(key(1), 500, 10 * MEG, true, SimTime::from_secs(0));
        // Connection churn: cumulative sums go backwards. Saturating
        // deltas must treat this as a quiet interval, not wrap.
        let v = g.update(key(1), 100, MEG, true, SimTime::from_secs(1));
        assert!(!v.tripped);
        assert_eq!(v.state, BreakerState::Closed);
    }

    #[test]
    fn forget_clears_state() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        g.update(key(1), 200, MEG, true, SimTime::from_secs(1));
        assert!(g.suppressed(&key(1)));
        g.forget(&key(1));
        assert!(g.is_empty());
        assert_eq!(g.state(&key(1)), BreakerState::Closed);
    }

    #[test]
    fn config_validation_catches_inconsistencies() {
        let ok = GuardConfig::default();
        ok.validate().unwrap();
        let bad = GuardConfig {
            reuse_threshold: 2000.0,
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err(), "reuse above suppress");
        let bad = GuardConfig {
            retrans_threshold: 0.0,
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GuardConfig {
            penalty_cap: 10.0,
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err(), "cap below suppress");
        let bad = GuardConfig {
            half_life: SimDuration::ZERO,
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GuardConfig {
            clean_probes: 0,
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn export_restore_round_trips_breaker_state() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        g.update(key(1), 200, MEG, true, SimTime::from_secs(1));
        g.update(key(2), 0, 0, true, SimTime::from_secs(1));
        assert_eq!(g.state(&key(1)), BreakerState::Open);

        let exports = g.export_states();
        assert_eq!(exports.len(), 2);
        let mut restored = LossGuard::new(GuardConfig::default());
        restored.restore_states(&exports);
        assert_eq!(restored.state(&key(1)), BreakerState::Open);
        assert_eq!(restored.state(&key(2)), BreakerState::Closed);
        assert_eq!(
            restored.penalty(&key(1), SimTime::from_secs(1)),
            g.penalty(&key(1), SimTime::from_secs(1))
        );
        // The baseline was dropped: the first post-restore interval is a
        // first sighting, so even a lossy interval is not judged.
        let v = restored.update(key(2), 900, MEG, true, SimTime::from_secs(2));
        assert!(!v.tripped, "no baseline after restore");
        // Penalty keeps decaying across the downtime: an Open breaker
        // reaches Half-open on its first update past the reuse point.
        let v = restored.update(key(1), 0, 0, false, SimTime::from_secs(600));
        assert_eq!(v.state, BreakerState::HalfOpen);
    }

    #[test]
    fn destinations_are_independent() {
        let mut g = LossGuard::new(GuardConfig::default());
        baseline(&mut g, key(1));
        g.update(key(2), 0, 0, true, SimTime::from_secs(0));
        g.update(key(1), 200, MEG, true, SimTime::from_secs(1));
        g.update(key(2), 0, MEG, true, SimTime::from_secs(1));
        assert!(g.suppressed(&key(1)));
        assert!(!g.suppressed(&key(2)));
        assert_eq!(g.len(), 2);
    }
}
