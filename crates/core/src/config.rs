//! Riptide's tunable parameters (Table I of the paper) and their builder.

use riptide_simnet::time::SimDuration;

use crate::combine::CombineStrategy;
use crate::granularity::Granularity;
use crate::history::HistoryStrategy;
use crate::policy::{LearningPolicy, Policy};

/// The agent's configuration: Table I of the paper plus the §III-B
/// strategy choices.
///
/// | Paper | Field | Deployment value |
/// |-------|-------|------------------|
/// | `α` | part of [`HistoryStrategy::Ewma`] | weight on history (unspecified in the paper; 0.7 here) |
/// | `i_u` | `update_interval` | 1 s (§IV-A) |
/// | `t` | `ttl` | 90 s (§III-B) |
/// | `c_max` | `cwnd_max` | 100 (§IV-B knee) |
/// | `c_min` | `cwnd_min` | 10 (the kernel default floor) |
///
/// # Examples
///
/// ```
/// use riptide::config::RiptideConfig;
/// use riptide_simnet::time::SimDuration;
///
/// let cfg = RiptideConfig::builder()
///     .cwnd_max(100)
///     .update_interval(SimDuration::from_secs(1))
///     .alpha(0.7)
///     .build()?;
/// assert_eq!(cfg.cwnd_max, 100);
/// # Ok::<(), riptide::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RiptideConfig {
    /// `i_u`: how often the agent polls open connections and refreshes
    /// routes.
    pub update_interval: SimDuration,
    /// `t`: how long a learned value survives without fresh observations
    /// before its route is withdrawn (default restored).
    pub ttl: SimDuration,
    /// `c_max`: ceiling on any installed initial window.
    pub cwnd_max: u32,
    /// `c_min`: floor on any installed initial window.
    pub cwnd_min: u32,
    /// How simultaneous observations to one destination are combined
    /// (§III-B "Combination Algorithm").
    pub combine: CombineStrategy,
    /// The window estimator: how fresh combined values become the value
    /// to clamp and install. [`LearningPolicy::History`] wraps the
    /// paper's §III-B history strategies (the EWMA is the deployment
    /// default); the other variants are registered competitors raced by
    /// the policy-ablation arena.
    pub policy: LearningPolicy,
    /// Destination grouping: per-host /32 routes or per-prefix routes
    /// (§III-B "Destinations as Routes").
    pub granularity: Granularity,
    /// Optional trend-based damping (§V): react to sharp per-destination
    /// window collapses faster than the history blend would.
    pub trend: Option<crate::trend::TrendPolicy>,
    /// Optional loss-aware circuit breaker: demote jump-started
    /// destinations whose post-install retransmit rate says the learned
    /// window is now the harm (closes the §IV-D no-harm loop).
    pub guard: Option<crate::guard::GuardConfig>,
    /// Optional bound on the learned table: at most this many
    /// destinations, least-recently-updated evicted first. `None` (the
    /// paper's deployment) grows without limit.
    pub table_capacity: Option<usize>,
    /// Optional prefix aggregation: keep learning at the configured
    /// granularity, but coalesce sibling routes into a covering prefix
    /// while their windows agree within the policy's band, splitting on
    /// divergence. `None` (the paper's deployment) installs one route
    /// per learned key.
    pub aggregation: Option<crate::aggregate::AggregationPolicy>,
}

impl RiptideConfig {
    /// The paper's deployment configuration: 1 s polling, 90 s TTL,
    /// windows clamped to `[10, 100]`, per-destination averaging with an
    /// EWMA over history, host-granularity routes.
    pub fn deployment() -> Self {
        RiptideConfig {
            update_interval: SimDuration::from_secs(1),
            ttl: SimDuration::from_secs(90),
            cwnd_max: 100,
            cwnd_min: 10,
            combine: CombineStrategy::Average,
            policy: LearningPolicy::History(HistoryStrategy::Ewma { alpha: 0.7 }),
            granularity: Granularity::Host,
            trend: None,
            guard: None,
            table_capacity: None,
            aggregation: None,
        }
    }

    /// Starts building a configuration from the deployment defaults.
    pub fn builder() -> RiptideConfigBuilder {
        RiptideConfigBuilder {
            config: RiptideConfig::deployment(),
        }
    }

    /// Clamps a computed window into `[cwnd_min, cwnd_max]`.
    ///
    /// Non-finite input (a NaN or infinity escaping some upstream
    /// arithmetic) maps to the conservative floor `cwnd_min` — never to
    /// an out-of-range window. (`NaN as u32` would otherwise saturate to
    /// 0 and install a window below `c_min`.)
    pub fn clamp(&self, window: f64) -> u32 {
        if !window.is_finite() {
            return self.cwnd_min;
        }
        let w = window.round();
        let w = if w < self.cwnd_min as f64 {
            self.cwnd_min as f64
        } else if w > self.cwnd_max as f64 {
            self.cwnd_max as f64
        } else {
            w
        };
        w as u32
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if bounds are inverted, intervals are zero,
    /// or the history strategy's parameters are out of range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cwnd_min == 0 {
            return Err(ConfigError::new("cwnd_min must be at least 1"));
        }
        if self.cwnd_min > self.cwnd_max {
            return Err(ConfigError::new(format!(
                "cwnd_min ({}) must not exceed cwnd_max ({})",
                self.cwnd_min, self.cwnd_max
            )));
        }
        if self.update_interval.is_zero() {
            return Err(ConfigError::new("update_interval must be non-zero"));
        }
        if self.ttl < self.update_interval {
            return Err(ConfigError::new(
                "ttl shorter than update_interval would expire entries between polls",
            ));
        }
        self.policy
            .validate()
            .map_err(|e| ConfigError::new(format!("policy: {e}")))?;
        self.granularity
            .validate()
            .map_err(|e| ConfigError::new(format!("granularity: {e}")))?;
        if let Some(trend) = &self.trend {
            trend
                .validate()
                .map_err(|e| ConfigError::new(format!("trend: {e}")))?;
        }
        if let Some(guard) = &self.guard {
            guard.validate()?;
        }
        if self.table_capacity == Some(0) {
            return Err(ConfigError::new("table_capacity must be at least 1"));
        }
        if let Some(aggregation) = &self.aggregation {
            aggregation
                .validate()
                .map_err(|e| ConfigError::new(format!("aggregation: {e}")))?;
            if let Granularity::Prefix(len) = self.granularity {
                if len <= aggregation.aggregate_len {
                    return Err(ConfigError::new(format!(
                        "aggregation into /{} needs keys more specific than it \
                         (granularity is /{len})",
                        aggregation.aggregate_len
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Default for RiptideConfig {
    fn default() -> Self {
        RiptideConfig::deployment()
    }
}

/// Builder for [`RiptideConfig`], starting from deployment defaults.
#[derive(Debug, Clone)]
pub struct RiptideConfigBuilder {
    config: RiptideConfig,
}

impl RiptideConfigBuilder {
    /// Sets `i_u`, the polling interval.
    pub fn update_interval(mut self, v: SimDuration) -> Self {
        self.config.update_interval = v;
        self
    }

    /// Sets `t`, the entry time-to-live.
    pub fn ttl(mut self, v: SimDuration) -> Self {
        self.config.ttl = v;
        self
    }

    /// Sets `c_max`.
    pub fn cwnd_max(mut self, v: u32) -> Self {
        self.config.cwnd_max = v;
        self
    }

    /// Sets `c_min`.
    pub fn cwnd_min(mut self, v: u32) -> Self {
        self.config.cwnd_min = v;
        self
    }

    /// Sets the combination strategy.
    pub fn combine(mut self, v: CombineStrategy) -> Self {
        self.config.combine = v;
        self
    }

    /// Sets the learning policy (the window estimator).
    pub fn policy(mut self, v: LearningPolicy) -> Self {
        self.config.policy = v;
        self
    }

    /// Sets a paper-native history strategy as the learning policy.
    pub fn history(mut self, v: HistoryStrategy) -> Self {
        self.config.policy = LearningPolicy::History(v);
        self
    }

    /// Shorthand: use the EWMA history policy with the given `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.policy = LearningPolicy::History(HistoryStrategy::Ewma { alpha });
        self
    }

    /// Sets the destination granularity.
    pub fn granularity(mut self, v: Granularity) -> Self {
        self.config.granularity = v;
        self
    }

    /// Enables trend-based damping (§V).
    pub fn trend(mut self, v: crate::trend::TrendPolicy) -> Self {
        self.config.trend = Some(v);
        self
    }

    /// Enables the loss-aware circuit breaker.
    pub fn guard(mut self, v: crate::guard::GuardConfig) -> Self {
        self.config.guard = Some(v);
        self
    }

    /// Bounds the learned table to at most `capacity` destinations.
    pub fn table_capacity(mut self, capacity: usize) -> Self {
        self.config.table_capacity = Some(capacity);
        self
    }

    /// Enables prefix aggregation with the given policy.
    pub fn aggregation(mut self, policy: crate::aggregate::AggregationPolicy) -> Self {
        self.config.aggregation = Some(policy);
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the assembled configuration fails
    /// [`RiptideConfig::validate`].
    pub fn build(self) -> Result<RiptideConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl RiptideConfig {
    /// Parses a deployment-style configuration file: one `key = value`
    /// pair per line, `#` comments, unknown keys rejected. Keys mirror
    /// Table I and the §III-B strategy choices:
    ///
    /// ```text
    /// # riptide.conf
    /// alpha = 0.7            # or: history = none | windowed:<n>
    /// policy = ewma          # any LearningPolicy::from_spec spec, e.g.
    ///                        # p25 | p75 | loss-utility:<g>:<p>:<a>
    /// interval = 1           # seconds (i_u)
    /// ttl = 90               # seconds (t)
    /// cmax = 100
    /// cmin = 10
    /// combine = average      # average | max | traffic-weighted
    /// granularity = host     # host | /<len>
    /// trend = off            # off | on | <drop>:<overshoot>
    /// guard = off            # off | on | <retrans rate threshold>
    /// capacity = unbounded   # unbounded | <max destinations>
    /// aggregate = off        # off | on | /<len>:<band>:<min siblings>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on unknown keys, malformed values, or a
    /// configuration failing [`RiptideConfig::validate`].
    pub fn from_conf_str(text: &str) -> Result<Self, ConfigError> {
        let mut builder = RiptideConfig::builder();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ConfigError::new(format!("line {}: expected key = value", lineno + 1))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| ConfigError::new(format!("line {}: {what}", lineno + 1));
            builder = match key {
                "alpha" => {
                    builder.alpha(value.parse().map_err(|e| bad(&format!("bad alpha: {e}")))?)
                }
                "history" => {
                    let strategy = if value == "none" {
                        HistoryStrategy::None
                    } else if let Some(n) = value.strip_prefix("windowed:") {
                        HistoryStrategy::WindowedMean {
                            window: n.parse().map_err(|e| bad(&format!("bad window: {e}")))?,
                        }
                    } else {
                        return Err(bad(&format!("unknown history {value:?}")));
                    };
                    builder.history(strategy)
                }
                "policy" => builder.policy(
                    LearningPolicy::from_spec(value)
                        .map_err(|e| bad(&format!("bad policy: {e}")))?,
                ),
                "interval" => builder.update_interval(SimDuration::from_secs(
                    value
                        .parse()
                        .map_err(|e| bad(&format!("bad interval: {e}")))?,
                )),
                "ttl" => builder.ttl(SimDuration::from_secs(
                    value.parse().map_err(|e| bad(&format!("bad ttl: {e}")))?,
                )),
                "cmax" => {
                    builder.cwnd_max(value.parse().map_err(|e| bad(&format!("bad cmax: {e}")))?)
                }
                "cmin" => {
                    builder.cwnd_min(value.parse().map_err(|e| bad(&format!("bad cmin: {e}")))?)
                }
                "combine" => builder.combine(match value {
                    "average" => CombineStrategy::Average,
                    "max" => CombineStrategy::Max,
                    "traffic-weighted" => CombineStrategy::TrafficWeighted,
                    other => return Err(bad(&format!("unknown combine {other:?}"))),
                }),
                "granularity" => {
                    let g = if value == "host" {
                        Granularity::Host
                    } else if let Some(len) = value.strip_prefix('/') {
                        Granularity::Prefix(
                            len.parse().map_err(|e| bad(&format!("bad prefix: {e}")))?,
                        )
                    } else {
                        return Err(bad(&format!("unknown granularity {value:?}")));
                    };
                    builder.granularity(g)
                }
                "trend" => match value {
                    "off" => builder,
                    "on" => builder.trend(crate::trend::TrendPolicy::default()),
                    spec => {
                        let (drop, overshoot) = spec
                            .split_once(':')
                            .ok_or_else(|| bad("trend must be off | on | <drop>:<overshoot>"))?;
                        builder.trend(crate::trend::TrendPolicy {
                            drop_fraction: drop
                                .parse()
                                .map_err(|e| bad(&format!("bad drop: {e}")))?,
                            overshoot: overshoot
                                .parse()
                                .map_err(|e| bad(&format!("bad overshoot: {e}")))?,
                        })
                    }
                },
                "guard" => match value {
                    "off" => builder,
                    "on" => builder.guard(crate::guard::GuardConfig::default()),
                    thr => builder.guard(crate::guard::GuardConfig {
                        retrans_threshold: thr
                            .parse()
                            .map_err(|e| bad(&format!("bad guard threshold: {e}")))?,
                        ..crate::guard::GuardConfig::default()
                    }),
                },
                "capacity" => match value {
                    "unbounded" => builder,
                    n => builder
                        .table_capacity(n.parse().map_err(|e| bad(&format!("bad capacity: {e}")))?),
                },
                "aggregate" => match value {
                    "off" => builder,
                    "on" => builder.aggregation(crate::aggregate::AggregationPolicy::default()),
                    spec => {
                        let spec = spec.strip_prefix('/').ok_or_else(|| {
                            bad("aggregate must be off | on | /<len>:<band>:<min siblings>")
                        })?;
                        let mut parts = spec.splitn(3, ':');
                        let mut next = |what: &str| {
                            parts
                                .next()
                                .ok_or_else(|| bad(&format!("aggregate missing {what}")))
                        };
                        builder.aggregation(crate::aggregate::AggregationPolicy {
                            aggregate_len: next("length")?
                                .parse()
                                .map_err(|e| bad(&format!("bad aggregate length: {e}")))?,
                            band: next("band")?
                                .parse()
                                .map_err(|e| bad(&format!("bad aggregate band: {e}")))?,
                            min_siblings: next("min siblings")?
                                .parse()
                                .map_err(|e| bad(&format!("bad aggregate min siblings: {e}")))?,
                        })
                    }
                },
                other => return Err(bad(&format!("unknown key {other:?}"))),
            };
        }
        builder.build()
    }
}

/// An invalid [`RiptideConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid riptide config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_matches_paper() {
        let cfg = RiptideConfig::deployment();
        cfg.validate().unwrap();
        assert_eq!(cfg.update_interval, SimDuration::from_secs(1));
        assert_eq!(cfg.ttl, SimDuration::from_secs(90));
        assert_eq!(cfg.cwnd_max, 100);
        assert_eq!(cfg.cwnd_min, 10);
        assert_eq!(cfg.combine, CombineStrategy::Average);
        assert_eq!(cfg.granularity, Granularity::Host);
    }

    #[test]
    fn clamp_bounds_both_sides() {
        let cfg = RiptideConfig::deployment();
        assert_eq!(cfg.clamp(3.0), 10);
        assert_eq!(cfg.clamp(55.4), 55);
        assert_eq!(cfg.clamp(55.6), 56);
        assert_eq!(cfg.clamp(250.0), 100);
    }

    #[test]
    fn clamp_maps_non_finite_to_the_floor() {
        let cfg = RiptideConfig::deployment();
        assert_eq!(cfg.clamp(f64::NAN), 10, "NaN must not saturate to 0");
        assert_eq!(cfg.clamp(f64::INFINITY), 10);
        assert_eq!(cfg.clamp(f64::NEG_INFINITY), 10);
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = RiptideConfig::builder()
            .cwnd_max(250)
            .cwnd_min(2)
            .ttl(SimDuration::from_secs(30))
            .update_interval(SimDuration::from_secs(5))
            .combine(CombineStrategy::Max)
            .granularity(Granularity::Prefix(24))
            .build()
            .unwrap();
        assert_eq!(cfg.cwnd_max, 250);
        assert_eq!(cfg.cwnd_min, 2);
        assert_eq!(cfg.combine, CombineStrategy::Max);
        assert_eq!(cfg.granularity, Granularity::Prefix(24));
    }

    #[test]
    fn inverted_bounds_rejected() {
        let err = RiptideConfig::builder()
            .cwnd_min(200)
            .cwnd_max(100)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cwnd_min"));
    }

    #[test]
    fn ttl_shorter_than_interval_rejected() {
        assert!(RiptideConfig::builder()
            .ttl(SimDuration::from_millis(500))
            .build()
            .is_err());
    }

    #[test]
    fn bad_alpha_rejected() {
        assert!(RiptideConfig::builder().alpha(1.5).build().is_err());
        assert!(RiptideConfig::builder().alpha(-0.1).build().is_err());
        assert!(RiptideConfig::builder().alpha(0.0).build().is_ok());
        assert!(RiptideConfig::builder().alpha(1.0).build().is_ok());
    }

    #[test]
    fn conf_file_round_trip() {
        let conf = "
            # deployment config
            alpha = 0.7
            interval = 1   # i_u
            ttl = 90
            cmax = 100
            cmin = 10
            combine = average
            granularity = host
            trend = off
        ";
        let cfg = RiptideConfig::from_conf_str(conf).unwrap();
        assert_eq!(cfg, RiptideConfig::deployment());
    }

    #[test]
    fn conf_file_alternatives() {
        let cfg = RiptideConfig::from_conf_str(
            "history = windowed:5\ncombine = max\ngranularity = /24\ntrend = 0.3:0.6\n",
        )
        .unwrap();
        assert_eq!(
            cfg.policy,
            LearningPolicy::History(HistoryStrategy::WindowedMean { window: 5 })
        );
        assert_eq!(cfg.combine, CombineStrategy::Max);
        assert_eq!(cfg.granularity, Granularity::Prefix(24));
        let trend = cfg.trend.unwrap();
        assert!((trend.drop_fraction - 0.3).abs() < 1e-12);
        assert!((trend.overshoot - 0.6).abs() < 1e-12);
        let on = RiptideConfig::from_conf_str("trend = on\n").unwrap();
        assert!(on.trend.is_some());
    }

    #[test]
    fn conf_file_policy_key() {
        let cfg = RiptideConfig::from_conf_str("policy = p25\n").unwrap();
        assert_eq!(
            cfg.policy,
            LearningPolicy::Percentile {
                fraction: 0.25,
                capacity: 64
            }
        );
        let cfg = RiptideConfig::from_conf_str("policy = loss-utility:1.0:2.0:0.7\n").unwrap();
        assert_eq!(
            cfg.policy,
            LearningPolicy::LossUtility {
                gain: 1.0,
                penalty: 2.0,
                alpha: 0.7
            }
        );
        // The default spec is exactly the deployment configuration.
        let cfg = RiptideConfig::from_conf_str("policy = ewma\n").unwrap();
        assert_eq!(cfg, RiptideConfig::deployment());
        assert!(RiptideConfig::from_conf_str("policy = vibes\n").is_err());
    }

    #[test]
    fn conf_file_guard_and_capacity() {
        let cfg = RiptideConfig::from_conf_str("guard = on\ncapacity = 500\n").unwrap();
        assert_eq!(cfg.guard, Some(crate::guard::GuardConfig::default()));
        assert_eq!(cfg.table_capacity, Some(500));
        let cfg = RiptideConfig::from_conf_str("guard = 0.1\n").unwrap();
        assert!((cfg.guard.unwrap().retrans_threshold - 0.1).abs() < 1e-12);
        let off = RiptideConfig::from_conf_str("guard = off\ncapacity = unbounded\n").unwrap();
        assert_eq!(off, RiptideConfig::deployment());
        assert!(RiptideConfig::from_conf_str("capacity = 0\n").is_err());
        assert!(RiptideConfig::from_conf_str("guard = vibes\n").is_err());
    }

    #[test]
    fn conf_file_aggregation() {
        let cfg = RiptideConfig::from_conf_str("aggregate = on\n").unwrap();
        assert_eq!(
            cfg.aggregation,
            Some(crate::aggregate::AggregationPolicy::default())
        );
        let cfg = RiptideConfig::from_conf_str("aggregate = /20:6:3\n").unwrap();
        let policy = cfg.aggregation.unwrap();
        assert_eq!(policy.aggregate_len, 20);
        assert_eq!(policy.band, 6);
        assert_eq!(policy.min_siblings, 3);
        let off = RiptideConfig::from_conf_str("aggregate = off\n").unwrap();
        assert_eq!(off, RiptideConfig::deployment());
        assert!(RiptideConfig::from_conf_str("aggregate = 24:8:2\n").is_err());
        assert!(RiptideConfig::from_conf_str("aggregate = /24:8\n").is_err());
        assert!(RiptideConfig::from_conf_str("aggregate = /32:8:2\n").is_err());
        // Aggregating /24 keys into /24 covers nothing: rejected.
        assert!(RiptideConfig::from_conf_str("granularity = /24\naggregate = on\n").is_err());
        // More specific prefix keys still aggregate fine.
        assert!(RiptideConfig::from_conf_str("granularity = /28\naggregate = on\n").is_ok());
    }

    #[test]
    fn guard_config_validated_at_build() {
        let err = RiptideConfig::builder()
            .guard(crate::guard::GuardConfig {
                retrans_threshold: 1.5,
                ..crate::guard::GuardConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("retrans_threshold"), "{err}");
    }

    #[test]
    fn conf_file_errors_carry_line_numbers() {
        let err = RiptideConfig::from_conf_str("alpha = 0.5\nwhat = 7\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(RiptideConfig::from_conf_str("alpha 0.5\n").is_err());
        assert!(RiptideConfig::from_conf_str("combine = vibes\n").is_err());
        assert!(RiptideConfig::from_conf_str("cmax = -3\n").is_err());
        // Validation errors surface too (cmin > cmax).
        assert!(RiptideConfig::from_conf_str("cmin = 500\n").is_err());
    }

    #[test]
    fn empty_conf_is_the_deployment_default() {
        let cfg = RiptideConfig::from_conf_str("# nothing\n\n").unwrap();
        assert_eq!(cfg, RiptideConfig::deployment());
    }

    #[test]
    fn zero_interval_rejected() {
        assert!(RiptideConfig::builder()
            .update_interval(SimDuration::ZERO)
            .build()
            .is_err());
    }
}
