//! History strategies: how fresh observations blend with what the agent
//! already believes (§III-B "The use of history is also flexible").
//!
//! The deployed system uses an exponentially weighted moving average with
//! weight `α` on the historical value — damping both "dangerous increases"
//! and collapses when all connections to a destination momentarily close.
//! The paper also sketches ignoring history entirely (react fast) and a
//! longer-view analysis (exploit consistent links); the latter is realized
//! here as a sliding-window mean.

use std::collections::VecDeque;

/// How a destination's fresh combined value updates its stored value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistoryStrategy {
    /// `final = α·previous + (1−α)·fresh` — the deployed choice.
    Ewma {
        /// Weight on the historical value, in `[0, 1]`.
        alpha: f64,
    },
    /// No history: the fresh value is used directly.
    None,
    /// Mean over the last `window` fresh values — the "longer-view
    /// historical analysis" variant.
    WindowedMean {
        /// Number of recent values retained (≥ 1).
        window: usize,
    },
}

impl Default for HistoryStrategy {
    fn default() -> Self {
        HistoryStrategy::Ewma { alpha: 0.7 }
    }
}

impl HistoryStrategy {
    /// Checks parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description if `alpha` is outside `[0, 1]` or the window
    /// is zero.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            HistoryStrategy::Ewma { alpha } => {
                if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
                    return Err(format!("alpha must be in [0, 1], got {alpha}"));
                }
            }
            HistoryStrategy::None => {}
            HistoryStrategy::WindowedMean { window } => {
                if window == 0 {
                    return Err("window must be at least 1".into());
                }
            }
        }
        Ok(())
    }

    /// Creates the per-destination state for this strategy.
    pub fn new_state(&self) -> HistoryState {
        match *self {
            HistoryStrategy::Ewma { .. } => HistoryState::Ewma { value: None },
            HistoryStrategy::None => HistoryState::None,
            HistoryStrategy::WindowedMean { window } => HistoryState::Window {
                values: VecDeque::with_capacity(window),
            },
        }
    }

    /// Feeds a fresh combined value through the history, returning the
    /// blended value to clamp and install.
    ///
    /// # Panics
    ///
    /// Panics if `state` was created by a different strategy (a logic
    /// error in the caller).
    pub fn blend(&self, state: &mut HistoryState, fresh: f64) -> f64 {
        match (*self, state) {
            (HistoryStrategy::Ewma { alpha }, HistoryState::Ewma { value }) => {
                let blended = match *value {
                    None => fresh,
                    Some(prev) => alpha * prev + (1.0 - alpha) * fresh,
                };
                *value = Some(blended);
                blended
            }
            (HistoryStrategy::None, HistoryState::None) => fresh,
            (HistoryStrategy::WindowedMean { window }, HistoryState::Window { values }) => {
                values.push_back(fresh);
                while values.len() > window {
                    values.pop_front();
                }
                values.iter().sum::<f64>() / values.len() as f64
            }
            (strategy, state) => {
                panic!("history state {state:?} does not match strategy {strategy:?}")
            }
        }
    }

    /// A short identifier for reports and benches.
    pub fn name(&self) -> &'static str {
        match self {
            HistoryStrategy::Ewma { .. } => "ewma",
            HistoryStrategy::None => "none",
            HistoryStrategy::WindowedMean { .. } => "windowed-mean",
        }
    }
}

/// Per-destination memory owned by the agent's table, created by
/// [`HistoryStrategy::new_state`] or a [`Policy::new_state`].
///
/// [`Policy::new_state`]: crate::policy::Policy::new_state
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryState {
    /// EWMA accumulator.
    Ewma {
        /// Last blended value, if any update has happened.
        value: Option<f64>,
    },
    /// No memory.
    None,
    /// Recent fresh values, newest last.
    Window {
        /// Retained values.
        values: VecDeque<f64>,
    },
    /// Bounded ring of observed values for the percentile policies
    /// ([`LearningPolicy::Percentile`]), newest last.
    ///
    /// [`LearningPolicy::Percentile`]: crate::policy::LearningPolicy::Percentile
    Ring {
        /// Retained observations.
        values: VecDeque<f64>,
    },
    /// Smoothed loss-utility score for
    /// [`LearningPolicy::LossUtility`].
    ///
    /// [`LearningPolicy::LossUtility`]: crate::policy::LearningPolicy::LossUtility
    Utility {
        /// Last smoothed utility, if any update has happened.
        value: Option<f64>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_value_passes_through() {
        let s = HistoryStrategy::Ewma { alpha: 0.7 };
        let mut st = s.new_state();
        assert_eq!(s.blend(&mut st, 50.0), 50.0);
    }

    #[test]
    fn ewma_damps_jumps() {
        let s = HistoryStrategy::Ewma { alpha: 0.7 };
        let mut st = s.new_state();
        s.blend(&mut st, 50.0);
        // A spike to 150 moves the value only 30% of the way.
        let v = s.blend(&mut st, 150.0);
        assert!((v - 80.0).abs() < 1e-9, "got {v}");
        // A collapse to 10 is likewise damped.
        let v = s.blend(&mut st, 10.0);
        assert!((v - 59.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn ewma_alpha_zero_ignores_history() {
        let s = HistoryStrategy::Ewma { alpha: 0.0 };
        let mut st = s.new_state();
        s.blend(&mut st, 50.0);
        assert_eq!(s.blend(&mut st, 90.0), 90.0);
    }

    #[test]
    fn ewma_alpha_one_freezes() {
        let s = HistoryStrategy::Ewma { alpha: 1.0 };
        let mut st = s.new_state();
        s.blend(&mut st, 50.0);
        assert_eq!(s.blend(&mut st, 90.0), 50.0);
    }

    #[test]
    fn ewma_converges_to_steady_input() {
        let s = HistoryStrategy::Ewma { alpha: 0.7 };
        let mut st = s.new_state();
        let mut v = s.blend(&mut st, 10.0);
        for _ in 0..100 {
            v = s.blend(&mut st, 100.0);
        }
        assert!((v - 100.0).abs() < 0.01, "converged to {v}");
    }

    #[test]
    fn none_strategy_is_memoryless() {
        let s = HistoryStrategy::None;
        let mut st = s.new_state();
        assert_eq!(s.blend(&mut st, 42.0), 42.0);
        assert_eq!(s.blend(&mut st, 7.0), 7.0);
    }

    #[test]
    fn windowed_mean_slides() {
        let s = HistoryStrategy::WindowedMean { window: 3 };
        let mut st = s.new_state();
        assert_eq!(s.blend(&mut st, 10.0), 10.0);
        assert_eq!(s.blend(&mut st, 20.0), 15.0);
        assert_eq!(s.blend(&mut st, 30.0), 20.0);
        // Window full: the 10 falls out.
        assert_eq!(s.blend(&mut st, 40.0), 30.0);
    }

    #[test]
    fn mismatched_state_panics() {
        let s = HistoryStrategy::None;
        let mut st = HistoryStrategy::default().new_state();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.blend(&mut st, 1.0);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn validation() {
        assert!(HistoryStrategy::Ewma { alpha: 0.5 }.validate().is_ok());
        assert!(HistoryStrategy::Ewma { alpha: 1.1 }.validate().is_err());
        assert!(HistoryStrategy::Ewma { alpha: f64::NAN }
            .validate()
            .is_err());
        assert!(HistoryStrategy::WindowedMean { window: 0 }
            .validate()
            .is_err());
        assert!(HistoryStrategy::WindowedMean { window: 5 }
            .validate()
            .is_ok());
        assert!(HistoryStrategy::None.validate().is_ok());
    }
}
