//! Zero-dependency observability: a thread-safe metrics registry and a
//! bounded decision journal.
//!
//! The agent is three interacting control loops — learn/install
//! (Algorithm 1), the loss-aware breaker ([`crate::guard`]) and the
//! anti-entropy audit ([`crate::reconcile`]) — and the paper's
//! operational story (§V: per-PoP deployments, 90 s TTLs, the `c_max`
//! knee) depends on operators seeing *why* each loop acted. This module
//! is that introspection layer, in two halves:
//!
//! * **Metrics** — [`MetricsRegistry`] hands out [`Counter`], [`Gauge`]
//!   and [`FixedHistogram`] handles backed by shared atomics. The hot
//!   path (incrementing, observing) is lock-free; only registration and
//!   snapshotting take the registry lock. A [`MetricsSnapshot`] is a
//!   plain value: it merges commutatively (shard snapshots can be
//!   reduced in any order and still agree) and renders deterministically
//!   in the Prometheus text exposition format.
//! * **The decision journal** — [`DecisionJournal`] is a bounded ring
//!   buffer of [`DecisionRecord`]s: every install, withdraw, suppress,
//!   evict and repair, each with its *cause* (the learned value and
//!   whether the clamp bit, the breaker state, the reconcile verdict).
//!   Decisions are orders of magnitude rarer than counter bumps, so the
//!   journal may take a lock.
//!
//! Everything here is optional: an agent without an attached
//! [`AgentTelemetry`] does no telemetry work at all, which is what keeps
//! experiment digests bit-identical when observability is off.
//!
//! # Determinism
//!
//! Counters record *logical* events only — never wall-clock time — so a
//! run at a fixed seed produces the same snapshot every time, on any
//! thread count. Merging per-shard snapshots is a per-metric sum (and an
//! element-wise sum for histogram buckets), which commutes; the merged
//! result is therefore independent of shard completion order.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::SimTime;

use crate::guard::BreakerState;
use crate::reconcile::AuditVerdict;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic, so a handle can be given away while the registry keeps
/// rendering the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable point-in-time value (table occupancy, breaker counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. One
    /// extra bucket (`+Inf`) follows implicitly.
    bounds: Vec<u64>,
    /// One slot per finite bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (installed window
/// sizes, here). Buckets are chosen at registration and never change, so
/// recording is a bounded scan over atomics — no locks, no allocation.
#[derive(Debug, Clone)]
pub struct FixedHistogram(Arc<HistogramCore>);

impl FixedHistogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        FixedHistogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum Registered {
    Counter {
        help: String,
        handle: Counter,
    },
    Gauge {
        help: String,
        handle: Gauge,
    },
    Histogram {
        help: String,
        handle: FixedHistogram,
    },
}

/// A named collection of metrics.
///
/// Registration is idempotent: asking twice for the same name returns a
/// handle to the same underlying atomic, so every agent of a simulated
/// deployment can "register" its counters against one shared registry
/// and the values sum naturally.
///
/// Cloning shares the registry.
///
/// # Examples
///
/// ```
/// use riptide::telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let ticks = registry.counter("riptide_ticks_total", "Agent cycles run");
/// ticks.inc();
/// ticks.inc();
/// assert_eq!(registry.snapshot().value("riptide_ticks_total"), Some(2));
/// assert!(registry
///     .render_prometheus()
///     .contains("riptide_ticks_total 2"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Registered>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Registered::Counter {
                help: help.to_string(),
                handle: Counter::default(),
            }) {
            Registered::Counter { handle, .. } => handle.clone(),
            _ => panic!("metric {name:?} already registered as a non-counter"),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Registered::Gauge {
                help: help.to_string(),
                handle: Gauge::default(),
            }) {
            Registered::Gauge { handle, .. } => handle.clone(),
            _ => panic!("metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Registers (or retrieves) a fixed-bucket histogram. `bounds` are
    /// the finite bucket upper bounds, strictly increasing; a `+Inf`
    /// overflow bucket is implicit.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or if
    /// `bounds` are not strictly increasing.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> FixedHistogram {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Registered::Histogram {
                help: help.to_string(),
                handle: FixedHistogram::new(bounds),
            }) {
            Registered::Histogram { handle, .. } => handle.clone(),
            _ => panic!("metric {name:?} already registered as a non-histogram"),
        }
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("registry lock").is_empty()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("registry lock");
        let metrics = map
            .iter()
            .map(|(name, reg)| {
                let value = match reg {
                    Registered::Counter { help, handle } => MetricValue::Counter {
                        help: help.clone(),
                        value: handle.get(),
                    },
                    Registered::Gauge { help, handle } => MetricValue::Gauge {
                        help: help.clone(),
                        value: handle.get(),
                    },
                    Registered::Histogram { help, handle } => {
                        let core = &handle.0;
                        MetricValue::Histogram {
                            help: help.clone(),
                            bounds: core.bounds.clone(),
                            buckets: core
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            sum: core.sum.load(Ordering::Relaxed),
                            count: core.count.load(Ordering::Relaxed),
                        }
                    }
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { metrics }
    }

    /// Renders the registry in Prometheus text exposition format
    /// (shorthand for `self.snapshot().render_prometheus()`).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// The frozen value of one metric inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone counter's value.
    Counter {
        /// Help text.
        help: String,
        /// The value.
        value: u64,
    },
    /// A gauge's value.
    Gauge {
        /// Help text.
        help: String,
        /// The value.
        value: u64,
    },
    /// A histogram's buckets and totals.
    Histogram {
        /// Help text.
        help: String,
        /// Finite bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (`bounds.len() + 1` entries; last is the
        /// `+Inf` overflow bucket).
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// A point-in-time copy of a registry: plain data, comparable, mergeable
/// and renderable without touching any live atomics.
///
/// Snapshots from different shards of one experiment merge with
/// [`MetricsSnapshot::merge`]; because merging is a per-metric sum, the
/// reduced snapshot is the same whatever order (or thread count) the
/// shards completed in.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics (the disabled-telemetry
    /// state — exactly this value leaves experiment digests unchanged).
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// The scalar value of a counter or gauge, if present.
    pub fn value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)? {
            MetricValue::Counter { value, .. } | MetricValue::Gauge { value, .. } => Some(*value),
            MetricValue::Histogram { .. } => None,
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: counters and gauges add, histograms
    /// add element-wise. A metric present on only one side is copied.
    /// Addition commutes and associates, so any merge order over a set
    /// of snapshots produces the same result.
    ///
    /// # Panics
    ///
    /// Panics when the same name carries different kinds or different
    /// histogram bounds — shards of one plan register identical schemas,
    /// so a mismatch is a bug, not data.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
                Some(ours) => match (ours, theirs) {
                    (MetricValue::Counter { value, .. }, MetricValue::Counter { value: v, .. })
                    | (MetricValue::Gauge { value, .. }, MetricValue::Gauge { value: v, .. }) => {
                        *value += v;
                    }
                    (
                        MetricValue::Histogram {
                            bounds,
                            buckets,
                            sum,
                            count,
                            ..
                        },
                        MetricValue::Histogram {
                            bounds: b2,
                            buckets: k2,
                            sum: s2,
                            count: c2,
                            ..
                        },
                    ) => {
                        assert_eq!(bounds, b2, "histogram {name:?}: mismatched bounds");
                        for (mine, theirs) in buckets.iter_mut().zip(k2) {
                            *mine += theirs;
                        }
                        *sum += s2;
                        *count += c2;
                    }
                    _ => panic!("metric {name:?}: mismatched kinds in merge"),
                },
            }
        }
    }

    /// Renders the snapshot in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` / value lines per metric, metrics in name
    /// order, histograms with cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`. Deterministic: equal snapshots render to
    /// byte-equal text.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            match metric {
                MetricValue::Counter { help, value } => {
                    let _ = write!(
                        out,
                        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
                    );
                }
                MetricValue::Gauge { help, value } => {
                    let _ = write!(
                        out,
                        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
                    );
                }
                MetricValue::Histogram {
                    help,
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    let _ = write!(out, "# HELP {name} {help}\n# TYPE {name} histogram\n");
                    let mut cumulative = 0u64;
                    for (i, bound) in bounds.iter().enumerate() {
                        cumulative += buckets[i];
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = write!(out, "{name}_sum {sum}\n{name}_count {count}\n");
                }
            }
        }
        out
    }
}

/// What a journaled decision did to a destination's route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionAction {
    /// A route was installed or updated with this window.
    Install {
        /// The window issued to the controller.
        window: u32,
    },
    /// The destination's route was withdrawn.
    Withdraw,
    /// The learned window was demoted to the probe window before
    /// install (the breaker is not Closed).
    Suppress {
        /// The demoted window actually issued.
        window: u32,
    },
    /// The destination was evicted by the table's capacity bound.
    Evict,
    /// A reconciler repair: `Some(window)` re-installed an externally
    /// deleted or rewritten route, `None` withdrew an orphan.
    Repair {
        /// The re-installed window, or `None` for an orphan withdrawal.
        window: Option<u32>,
    },
}

/// Why the decision was taken — the journal's cause taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionCause {
    /// Algorithm 1 learned a new value for the destination.
    Learned {
        /// The freshly combined (pre-blend) estimate, rounded.
        fresh: u32,
        /// Whether the `[c_min, c_max]` clamp changed the blended value.
        clamped: bool,
        /// Whether trend damping (§V) overrode the history blend.
        trend_damped: bool,
        /// The learning policy that produced the value
        /// ([`Policy::name`](crate::policy::Policy::name)).
        policy: &'static str,
    },
    /// The loss guard's breaker forced the decision.
    Guard {
        /// The breaker state after the deciding update.
        state: BreakerState,
    },
    /// The entry sat unobserved past its TTL.
    TtlExpired,
    /// The table's capacity bound evicted the entry.
    Capacity,
    /// A reconciler audit found kernel drift.
    Reconcile {
        /// The audit's overall verdict.
        verdict: AuditVerdict,
    },
    /// The agent is shutting down and sweeping its installs.
    Shutdown,
    /// Sibling destinations' learned windows agreed within the clamp
    /// band, so a covering aggregate route replaced their member routes
    /// (or retuned its window).
    Aggregated {
        /// Member destinations covered by the aggregate.
        members: u32,
        /// `max − min` of the member windows at merge time.
        spread: u32,
    },
    /// A covering aggregate no longer held — members diverged past the
    /// band, fell below the sibling minimum, or vanished — so it
    /// dissolved back into member routes.
    Disaggregated {
        /// Member destinations reinstalled individually (0 when the
        /// members themselves expired or were evicted).
        members: u32,
        /// `max − min` of the member windows at split time.
        spread: u32,
    },
    /// The route was reinstalled from a persisted state file during a
    /// warm restart ([`RiptideAgent::restore_state`]).
    ///
    /// [`RiptideAgent::restore_state`]: crate::agent::RiptideAgent::restore_state
    Restored {
        /// Seconds the entry survived on disk between snapshot stamp
        /// and restore, rounded down.
        age_secs: u32,
    },
    /// The entry was accepted from a gossip peer: the remote stamp was
    /// newer than anything local, and the remote window was clamp-merged
    /// into this agent's `[c_min, c_max]`
    /// ([`RiptideAgent::merge_remote`]).
    ///
    /// [`RiptideAgent::merge_remote`]: crate::agent::RiptideAgent::merge_remote
    SyncMerged {
        /// Whether the local bounds changed the peer's window on the
        /// way in.
        clamped: bool,
    },
}

/// One journaled decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// When the decision was taken (simulated time).
    pub at: SimTime,
    /// The destination key the decision concerns.
    pub key: Ipv4Prefix,
    /// What was done.
    pub action: DecisionAction,
    /// Why.
    pub cause: DecisionCause,
}

impl DecisionRecord {
    /// One-line human-readable rendering, `t=<secs> <key> <action> <cause>`.
    pub fn render(&self) -> String {
        let action = match self.action {
            DecisionAction::Install { window } => format!("install w={window}"),
            DecisionAction::Withdraw => "withdraw".to_string(),
            DecisionAction::Suppress { window } => format!("suppress w={window}"),
            DecisionAction::Evict => "evict".to_string(),
            DecisionAction::Repair { window: Some(w) } => format!("repair reinstall w={w}"),
            DecisionAction::Repair { window: None } => "repair withdraw-orphan".to_string(),
        };
        let cause = match self.cause {
            DecisionCause::Learned {
                fresh,
                clamped,
                trend_damped,
                policy,
            } => {
                format!(
                    "learned fresh={fresh} clamped={clamped} trend_damped={trend_damped} \
                     policy={policy}"
                )
            }
            DecisionCause::Guard { state } => format!("guard {state:?}"),
            DecisionCause::TtlExpired => "ttl-expired".to_string(),
            DecisionCause::Capacity => "capacity".to_string(),
            DecisionCause::Reconcile { verdict } => format!("reconcile {verdict:?}"),
            DecisionCause::Shutdown => "shutdown".to_string(),
            DecisionCause::Aggregated { members, spread } => {
                format!("aggregated members={members} spread={spread}")
            }
            DecisionCause::Disaggregated { members, spread } => {
                format!("disaggregated members={members} spread={spread}")
            }
            DecisionCause::Restored { age_secs } => format!("restored age={age_secs}s"),
            DecisionCause::SyncMerged { clamped } => format!("sync-merged clamped={clamped}"),
        };
        format!(
            "t={} {} {} cause={}",
            self.at.as_secs_f64(),
            self.key,
            action,
            cause
        )
    }
}

#[derive(Debug, Default)]
struct JournalInner {
    records: VecDeque<DecisionRecord>,
    total: u64,
}

/// A bounded ring buffer of [`DecisionRecord`]s. When full, the oldest
/// record is dropped — the journal is a flight recorder, not an audit
/// log. Cloning shares the buffer.
///
/// # Examples
///
/// ```
/// use riptide::telemetry::{DecisionAction, DecisionCause, DecisionJournal, DecisionRecord};
/// use riptide_simnet::time::SimTime;
///
/// let journal = DecisionJournal::bounded(2);
/// for i in 1..=3u32 {
///     journal.record(DecisionRecord {
///         at: SimTime::from_secs(i as u64),
///         key: "10.0.0.1".parse().unwrap(),
///         action: DecisionAction::Install { window: 10 * i },
///         cause: DecisionCause::TtlExpired,
///     });
/// }
/// assert_eq!(journal.len(), 2, "capacity bound holds");
/// assert_eq!(journal.total_recorded(), 3);
/// let kept = journal.snapshot();
/// assert_eq!(kept[0].at, SimTime::from_secs(2), "oldest dropped first");
/// ```
#[derive(Debug, Clone)]
pub struct DecisionJournal {
    inner: Arc<Mutex<JournalInner>>,
    capacity: usize,
}

impl DecisionJournal {
    /// Creates a journal keeping at most `capacity` records (at least 1).
    pub fn bounded(capacity: usize) -> Self {
        DecisionJournal {
            inner: Arc::new(Mutex::new(JournalInner::default())),
            capacity: capacity.max(1),
        }
    }

    /// Appends a record, dropping the oldest if the buffer is full.
    pub fn record(&self, record: DecisionRecord) {
        let mut inner = self.inner.lock().expect("journal lock");
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
        }
        inner.records.push_back(record);
        inner.total += 1;
    }

    /// Records currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock").records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records ever appended, including those already rotated out.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().expect("journal lock").total
    }

    /// A copy of the held records, oldest first.
    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        self.inner
            .lock()
            .expect("journal lock")
            .records
            .iter()
            .copied()
            .collect()
    }

    /// Renders the held records one per line, oldest first, with a
    /// trailing summary line counting rotated-out records.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("journal lock");
        let mut out = String::new();
        for r in &inner.records {
            out.push_str(&r.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "# journal: {} held, {} recorded\n",
            inner.records.len(),
            inner.total
        ));
        out
    }
}

/// The four I/O counters mirrored out of the resilience layer
/// ([`crate::resilience`]): wrappers increment these alongside their
/// private [`IoStats`] when attached.
///
/// [`IoStats`]: crate::resilience::IoStats
#[derive(Debug, Clone)]
pub struct IoCounters {
    /// Logical calls made through resilient wrappers.
    pub calls: Counter,
    /// Extra attempts beyond each call's first.
    pub retries: Counter,
    /// Individual attempts that timed out.
    pub timeouts: Counter,
    /// Calls that failed even after retrying.
    pub gave_up: Counter,
}

impl IoCounters {
    /// Registers (or retrieves) the I/O counters on `registry`.
    pub fn attach(registry: &MetricsRegistry) -> Self {
        IoCounters {
            calls: registry.counter(
                "riptide_io_calls_total",
                "Logical calls through resilient I/O wrappers",
            ),
            retries: registry.counter(
                "riptide_io_retries_total",
                "Extra I/O attempts beyond each call's first",
            ),
            timeouts: registry.counter(
                "riptide_io_timeouts_total",
                "Individual I/O attempts that timed out",
            ),
            gave_up: registry.counter(
                "riptide_io_gave_up_total",
                "I/O calls that failed even after retrying",
            ),
        }
    }
}

/// Window-size histogram bounds: the kernel default, the paper's
/// `c_max` knee at 100, and intermediate steps.
pub const WINDOW_BUCKETS: [u64; 6] = [10, 20, 40, 60, 80, 100];

/// The agent's full telemetry bundle: pre-registered handles for every
/// counter and gauge the agent maintains, plus the decision journal.
///
/// Attach one with [`RiptideAgent::attach_telemetry`]; agents without
/// one skip all telemetry work (no atomics touched, no journal lock).
/// Several agents may share one registry and journal — counters then sum
/// across them, which is how a simulated deployment aggregates per-host
/// agents into one per-shard snapshot.
///
/// [`RiptideAgent::attach_telemetry`]: crate::agent::RiptideAgent::attach_telemetry
#[derive(Debug, Clone)]
pub struct AgentTelemetry {
    registry: MetricsRegistry,
    journal: DecisionJournal,
    pub(crate) ticks: Counter,
    pub(crate) observations: Counter,
    pub(crate) route_updates: Counter,
    pub(crate) route_expirations: Counter,
    pub(crate) errors: Counter,
    pub(crate) degraded_ticks: Counter,
    pub(crate) guard_trips: Counter,
    pub(crate) table_evictions: Counter,
    pub(crate) reconcile_repairs: Counter,
    pub(crate) suppressed_installs: Counter,
    pub(crate) shutdown_withdrawals: Counter,
    pub(crate) clamped_installs: Counter,
    pub(crate) table_entries: Gauge,
    pub(crate) installed_routes: Gauge,
    pub(crate) breaker_open: Gauge,
    pub(crate) breaker_half_open: Gauge,
    pub(crate) installed_window: FixedHistogram,
}

impl AgentTelemetry {
    /// Registers the agent's metrics on `registry` and journals into
    /// `journal`. Registration is idempotent, so telemetry bundles for
    /// many agents may target one registry.
    pub fn new(registry: &MetricsRegistry, journal: DecisionJournal) -> Self {
        AgentTelemetry {
            ticks: registry.counter("riptide_ticks_total", "Agent update cycles executed"),
            observations: registry.counter(
                "riptide_observations_total",
                "Connection window observations consumed",
            ),
            route_updates: registry.counter(
                "riptide_route_updates_total",
                "Route installs or updates issued",
            ),
            route_expirations: registry.counter(
                "riptide_route_expirations_total",
                "Routes withdrawn by TTL expiry",
            ),
            errors: registry.counter(
                "riptide_control_errors_total",
                "Failed route-control actions",
            ),
            degraded_ticks: registry.counter(
                "riptide_degraded_ticks_total",
                "Cycles that ran expiry-only because the poll failed",
            ),
            guard_trips: registry.counter(
                "riptide_guard_trips_total",
                "Loss-guard breaker trips (destinations demoted)",
            ),
            table_evictions: registry.counter(
                "riptide_table_evictions_total",
                "Destinations evicted by the table capacity bound",
            ),
            reconcile_repairs: registry.counter(
                "riptide_reconcile_repairs_total",
                "Route-drift repairs performed by reconciler audits",
            ),
            suppressed_installs: registry.counter(
                "riptide_suppressed_installs_total",
                "Installs demoted to the probe window by the loss guard",
            ),
            shutdown_withdrawals: registry.counter(
                "riptide_shutdown_withdrawals_total",
                "Routes withdrawn by the graceful-shutdown sweep",
            ),
            clamped_installs: registry.counter(
                "riptide_clamped_installs_total",
                "Installs whose blended window the [c_min, c_max] clamp changed",
            ),
            table_entries: registry.gauge(
                "riptide_table_entries",
                "Live destinations in the learned final-values table",
            ),
            installed_routes: registry.gauge(
                "riptide_installed_routes",
                "Routes the agent currently believes are installed",
            ),
            breaker_open: registry.gauge(
                "riptide_breaker_open",
                "Destinations whose loss-guard breaker is Open",
            ),
            breaker_half_open: registry.gauge(
                "riptide_breaker_half_open",
                "Destinations whose loss-guard breaker is Half-open",
            ),
            installed_window: registry.histogram(
                "riptide_installed_window",
                "Windows issued to the route controller, in segments",
                &WINDOW_BUCKETS,
            ),
            registry: registry.clone(),
            journal,
        }
    }

    /// A standalone bundle with its own registry and a journal of
    /// `journal_capacity` records — what `riptided` attaches.
    pub fn standalone(journal_capacity: usize) -> Self {
        AgentTelemetry::new(
            &MetricsRegistry::new(),
            DecisionJournal::bounded(journal_capacity),
        )
    }

    /// The registry this bundle registers on.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The decision journal this bundle records into.
    pub fn journal(&self) -> &DecisionJournal {
        &self.journal
    }

    /// I/O counters on the same registry, for wiring the resilience
    /// layer ([`crate::resilience`]) to this bundle.
    pub fn io_counters(&self) -> IoCounters {
        IoCounters::attach(&self.registry)
    }

    pub(crate) fn journal_decision(
        &self,
        at: SimTime,
        key: Ipv4Prefix,
        action: DecisionAction,
        cause: DecisionCause,
    ) {
        self.journal.record(DecisionRecord {
            at,
            key,
            action,
            cause,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> Ipv4Prefix {
        Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, n))
    }

    #[test]
    fn counter_handles_share_state() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x_total", "x");
        let b = registry.counter("x_total", "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.snapshot().value("x_total"), Some(3));
    }

    #[test]
    fn gauge_set_overwrites() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("depth", "queue depth");
        g.set(7);
        g.set(3);
        assert_eq!(registry.snapshot().value("depth"), Some(3));
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_conflict_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("m", "as gauge");
        registry.counter("m", "as counter");
    }

    #[test]
    fn histogram_buckets_and_totals() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("w", "windows", &[10, 100]);
        h.observe(5);
        h.observe(10); // on the bound: le="10"
        h.observe(64);
        h.observe(1000); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1079);
        let text = registry.render_prometheus();
        assert!(text.contains("w_bucket{le=\"10\"} 2"), "{text}");
        assert!(
            text.contains("w_bucket{le=\"100\"} 3"),
            "cumulative: {text}"
        );
        assert!(text.contains("w_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("w_sum 1079"));
        assert!(text.contains("w_count 4"));
        assert!(text.contains("# TYPE w histogram"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let registry = MetricsRegistry::new();
        registry.histogram("bad", "bad", &[10, 10]);
    }

    #[test]
    fn snapshot_merge_sums_and_copies() {
        let r1 = MetricsRegistry::new();
        r1.counter("a_total", "a").add(3);
        r1.histogram("h", "h", &[10]).observe(4);
        let r2 = MetricsRegistry::new();
        r2.counter("a_total", "a").add(2);
        r2.counter("b_total", "b").inc();
        r2.histogram("h", "h", &[10]).observe(40);

        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.value("a_total"), Some(5));
        assert_eq!(merged.value("b_total"), Some(1), "one-sided metric copied");
        match merged.iter().find(|(n, _)| *n == "h").unwrap().1 {
            MetricValue::Histogram {
                buckets,
                sum,
                count,
                ..
            } => {
                assert_eq!(buckets, &vec![1, 1]);
                assert_eq!((*sum, *count), (44, 2));
            }
            other => panic!("expected histogram, got {other:?}"),
        }

        // Commutativity: the opposite merge order agrees.
        let mut flipped = r2.snapshot();
        flipped.merge(&r1.snapshot());
        assert_eq!(merged, flipped);
    }

    #[test]
    fn render_is_deterministic_and_name_ordered() {
        let registry = MetricsRegistry::new();
        registry.counter("z_total", "last").inc();
        registry.counter("a_total", "first").inc();
        let text = registry.render_prometheus();
        assert!(text.find("a_total").unwrap() < text.find("z_total").unwrap());
        assert_eq!(text, registry.render_prometheus());
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(snap.render_prometheus(), "");
    }

    #[test]
    fn journal_rotates_oldest_first() {
        let journal = DecisionJournal::bounded(3);
        for i in 0..5u64 {
            journal.record(DecisionRecord {
                at: SimTime::from_secs(i),
                key: key(1),
                action: DecisionAction::Withdraw,
                cause: DecisionCause::TtlExpired,
            });
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.capacity(), 3);
        assert_eq!(journal.total_recorded(), 5);
        let at: Vec<u64> = journal
            .snapshot()
            .iter()
            .map(|r| r.at.as_secs_f64() as u64)
            .collect();
        assert_eq!(at, vec![2, 3, 4]);
        let text = journal.render();
        assert!(text.contains("# journal: 3 held, 5 recorded"), "{text}");
    }

    #[test]
    fn journal_capacity_floor_is_one() {
        let journal = DecisionJournal::bounded(0);
        assert_eq!(journal.capacity(), 1);
        assert!(journal.is_empty());
    }

    #[test]
    fn record_rendering_covers_the_cause_taxonomy() {
        let mk = |action, cause| {
            DecisionRecord {
                at: SimTime::from_secs(9),
                key: key(7),
                action,
                cause,
            }
            .render()
        };
        let line = mk(
            DecisionAction::Install { window: 80 },
            DecisionCause::Learned {
                fresh: 80,
                clamped: false,
                trend_damped: false,
                policy: "ewma",
            },
        );
        assert!(
            line.contains("install w=80")
                && line.contains("learned fresh=80")
                && line.contains("policy=ewma"),
            "{line}"
        );
        let line = mk(
            DecisionAction::Suppress { window: 10 },
            DecisionCause::Guard {
                state: BreakerState::Open,
            },
        );
        assert!(line.contains("suppress w=10") && line.contains("guard Open"));
        let line = mk(
            DecisionAction::Repair { window: None },
            DecisionCause::Reconcile {
                verdict: AuditVerdict::Repaired,
            },
        );
        assert!(line.contains("repair withdraw-orphan") && line.contains("reconcile Repaired"));
        assert!(mk(DecisionAction::Evict, DecisionCause::Capacity).contains("evict"));
        assert!(mk(DecisionAction::Withdraw, DecisionCause::Shutdown).contains("shutdown"));
        let line = mk(
            DecisionAction::Install { window: 64 },
            DecisionCause::Restored { age_secs: 12 },
        );
        assert!(line.contains("restored age=12s"), "{line}");
        let line = mk(
            DecisionAction::Install { window: 100 },
            DecisionCause::SyncMerged { clamped: true },
        );
        assert!(line.contains("sync-merged clamped=true"), "{line}");
    }

    #[test]
    fn agent_telemetry_registers_the_full_schema() {
        let t = AgentTelemetry::standalone(16);
        t.ticks.inc();
        t.installed_window.observe(80);
        let snap = t.registry().snapshot();
        assert_eq!(snap.value("riptide_ticks_total"), Some(1));
        for name in [
            "riptide_observations_total",
            "riptide_route_updates_total",
            "riptide_route_expirations_total",
            "riptide_control_errors_total",
            "riptide_degraded_ticks_total",
            "riptide_guard_trips_total",
            "riptide_table_evictions_total",
            "riptide_reconcile_repairs_total",
            "riptide_suppressed_installs_total",
            "riptide_shutdown_withdrawals_total",
            "riptide_clamped_installs_total",
            "riptide_table_entries",
            "riptide_installed_routes",
            "riptide_breaker_open",
            "riptide_breaker_half_open",
        ] {
            assert_eq!(snap.value(name), Some(0), "{name} registered");
        }
        // Shared registry: a second bundle reuses the same atomics.
        let t2 = AgentTelemetry::new(t.registry(), t.journal().clone());
        t2.ticks.inc();
        assert_eq!(t.ticks.get(), 2);
        let io = t.io_counters();
        io.calls.inc();
        assert_eq!(
            t.registry().snapshot().value("riptide_io_calls_total"),
            Some(1)
        );
    }
}
