//! The agent's final-values table: one learned window per destination
//! key, with history state and TTL bookkeeping.

use std::collections::BTreeMap;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::{SimDuration, SimTime};

use crate::history::HistoryState;
use crate::policy::{Policy, PolicyInput};

/// One destination's learned state.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalEntry {
    /// The clamped window currently installed for this destination.
    pub window: u32,
    /// History accumulator feeding the next blend.
    pub history: HistoryState,
    /// The most recent *fresh* (pre-blend) combined value — what the
    /// trend policy differentiates.
    pub last_fresh: f64,
    /// When the entry was last refreshed by an observation.
    pub last_updated: SimTime,
}

/// The per-destination table of Algorithm 1's "final window values".
///
/// Keys are routing prefixes (the configured granularity applied to
/// destination addresses). Iteration order is deterministic (BTreeMap),
/// so route updates replay identically across runs.
///
/// A table may be *capacity-bounded* ([`FinalTable::bounded`]): when an
/// update would grow it past its capacity, the least-recently-updated
/// entries are evicted first (ties broken by key order, so eviction is
/// deterministic). This bounds kernel route-table growth when the agent
/// faces millions of distinct destinations.
///
/// # Examples
///
/// ```
/// use riptide::table::FinalTable;
/// use riptide::history::HistoryStrategy;
/// use riptide_simnet::time::{SimDuration, SimTime};
///
/// let strategy = HistoryStrategy::Ewma { alpha: 0.5 };
/// let mut t = FinalTable::new();
/// let key = "10.0.0.127".parse()?;
///
/// // Blend an observation, then commit the clamped window.
/// let blended = t.blend(key, 80.0, &strategy, SimTime::from_secs(1));
/// t.set_window(&key, blended.round() as u32);
/// assert_eq!(t.window(&key), Some(80));
///
/// // Entries expire once unrefreshed for longer than the TTL.
/// let dead = t.expire(SimTime::from_secs(200), SimDuration::from_secs(90));
/// assert_eq!(dead, vec![key]);
/// assert!(t.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FinalTable {
    entries: BTreeMap<Ipv4Prefix, FinalEntry>,
    capacity: Option<usize>,
}

impl FinalTable {
    /// Creates an empty, unbounded table.
    pub fn new() -> Self {
        FinalTable::default()
    }

    /// Creates an empty table holding at most `capacity` destinations.
    pub fn bounded(capacity: usize) -> Self {
        FinalTable {
            entries: BTreeMap::new(),
            capacity: Some(capacity),
        }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Evicts least-recently-updated entries (ties broken by key order)
    /// until the table fits its capacity, returning the evicted keys in
    /// eviction order. A no-op on unbounded tables.
    ///
    /// Cost is `O(n + k log k)` for `k` evictions (one scan plus a
    /// partial sort of the victims), not `O(n·k)` — the property the
    /// `megacdn` bench gates at a million entries.
    ///
    /// # Examples
    ///
    /// ```
    /// use riptide::table::FinalTable;
    /// use riptide::history::HistoryStrategy;
    /// use riptide_simnet::time::SimTime;
    ///
    /// let strategy = HistoryStrategy::None;
    /// let mut t = FinalTable::bounded(2);
    /// for (n, at) in [(1u8, 10u64), (2, 20), (3, 30)] {
    ///     let key = format!("10.0.0.{n}").parse()?;
    ///     t.blend(key, 40.0, &strategy, SimTime::from_secs(at));
    /// }
    /// // Oldest entry out first.
    /// assert_eq!(t.enforce_capacity(), vec!["10.0.0.1".parse()?]);
    /// assert_eq!(t.len(), 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn enforce_capacity(&mut self) -> Vec<Ipv4Prefix> {
        self.enforce_capacity_grouped(|_| None)
    }

    /// Capacity enforcement with aggregation-aware accounting: entries
    /// mapped to the same group by `group_of` are charged as **one**
    /// unit against the capacity (an aggregated `/24` covering 200
    /// learned `/32`s occupies one route, so it costs one slot), and are
    /// evicted together. A group's recency is its *newest* member's
    /// `last_updated` (the covering route is live as long as any member
    /// is); ungrouped entries (`group_of` returns `None`) behave exactly
    /// as in [`FinalTable::enforce_capacity`]. Victim order is
    /// deterministic: ascending `(last_updated, unit key)`, members in
    /// key order within a group.
    pub fn enforce_capacity_grouped(
        &mut self,
        group_of: impl Fn(&Ipv4Prefix) -> Option<Ipv4Prefix>,
    ) -> Vec<Ipv4Prefix> {
        let Some(cap) = self.capacity else {
            return Vec::new();
        };
        if self.entries.len() <= cap {
            return Vec::new();
        }
        // One charged unit per group (or per ungrouped key), stamped
        // with the newest member update. BTreeMap order makes member
        // lists key-ordered.
        let mut units: BTreeMap<Ipv4Prefix, (SimTime, Vec<Ipv4Prefix>)> = BTreeMap::new();
        for (k, e) in &self.entries {
            let unit = group_of(k).unwrap_or(*k);
            let slot = units
                .entry(unit)
                .or_insert_with(|| (e.last_updated, Vec::new()));
            slot.0 = slot.0.max(e.last_updated);
            slot.1.push(*k);
        }
        if units.len() <= cap {
            return Vec::new();
        }
        let excess = units.len() - cap;
        let mut order: Vec<(SimTime, Ipv4Prefix)> =
            units.iter().map(|(u, (at, _))| (*at, *u)).collect();
        // Only the `excess` oldest units need a total order: select,
        // then sort just that head.
        if excess < order.len() {
            order.select_nth_unstable(excess - 1);
        }
        order.truncate(excess);
        order.sort_unstable();
        let mut evicted = Vec::new();
        for (_, unit) in order {
            for k in &units[&unit].1 {
                self.entries.remove(k);
                evicted.push(*k);
            }
        }
        evicted
    }

    /// Number of live destinations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Occupancy as a fraction of capacity, in `[0, 1]` (`None` for
    /// unbounded tables) — telemetry's view of eviction pressure.
    pub fn utilization(&self) -> Option<f64> {
        self.capacity
            .map(|cap| self.entries.len() as f64 / cap.max(1) as f64)
    }

    /// The entry for `key`, if present.
    pub fn get(&self, key: &Ipv4Prefix) -> Option<&FinalEntry> {
        self.entries.get(key)
    }

    /// The installed window for `key`, if present.
    pub fn window(&self, key: &Ipv4Prefix) -> Option<u32> {
        self.entries.get(key).map(|e| e.window)
    }

    /// Blends `fresh` into the entry for `key` (creating it if new),
    /// stamps it with `now`, stores the clamped `window`, and returns the
    /// blended pre-clamp value. Any [`Policy`] — a plain
    /// [`HistoryStrategy`](crate::history::HistoryStrategy) or a
    /// [`LearningPolicy`](crate::policy::LearningPolicy) — drives the
    /// blend.
    pub fn update<P: Policy + ?Sized>(
        &mut self,
        key: Ipv4Prefix,
        fresh: f64,
        window: u32,
        policy: &P,
        now: SimTime,
    ) -> f64 {
        let entry = self.entries.entry(key).or_insert_with(|| FinalEntry {
            window,
            history: policy.new_state(),
            last_fresh: fresh,
            last_updated: now,
        });
        let blended = policy.blend(&mut entry.history, fresh);
        entry.window = window;
        entry.last_fresh = fresh;
        entry.last_updated = now;
        blended
    }

    /// The most recent fresh (pre-blend) value recorded for `key`.
    pub fn last_fresh(&self, key: &Ipv4Prefix) -> Option<f64> {
        self.entries.get(key).map(|e| e.last_fresh)
    }

    /// Records the final clamped window for `key` after blending (split
    /// from [`FinalTable::update`] because the clamp depends on the
    /// blended value).
    pub fn set_window(&mut self, key: &Ipv4Prefix, window: u32) {
        if let Some(e) = self.entries.get_mut(key) {
            e.window = window;
        }
    }

    /// Blends `fresh` through the history for `key` without committing a
    /// window yet, creating the entry if needed.
    pub fn blend<P: Policy + ?Sized>(
        &mut self,
        key: Ipv4Prefix,
        fresh: f64,
        policy: &P,
        now: SimTime,
    ) -> f64 {
        self.observe(key, &PolicyInput::fresh_only(fresh), policy, now)
    }

    /// Feeds a full observation group (fresh value plus loss counters)
    /// through the policy for `key` without committing a window yet,
    /// creating the entry if needed — the loss-aware generalisation of
    /// [`FinalTable::blend`].
    pub fn observe<P: Policy + ?Sized>(
        &mut self,
        key: Ipv4Prefix,
        input: &PolicyInput,
        policy: &P,
        now: SimTime,
    ) -> f64 {
        let entry = self.entries.entry(key).or_insert_with(|| FinalEntry {
            window: 0,
            history: policy.new_state(),
            last_fresh: input.fresh,
            last_updated: now,
        });
        entry.last_updated = now;
        let blended = policy.observe(&mut entry.history, input);
        entry.last_fresh = input.fresh;
        blended
    }

    /// Removes and returns every key whose entry is older than `ttl` at
    /// `now` — Algorithm 1's expiry step.
    pub fn expire(&mut self, now: SimTime, ttl: SimDuration) -> Vec<Ipv4Prefix> {
        let dead: Vec<Ipv4Prefix> = self
            .entries
            .iter()
            .filter(|(_, e)| now.saturating_since(e.last_updated) > ttl)
            .map(|(k, _)| *k)
            .collect();
        for k in &dead {
            self.entries.remove(k);
        }
        dead
    }

    /// Iterates live entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Prefix, &FinalEntry)> {
        self.entries.iter()
    }

    /// Inserts a fully-formed entry, replacing any existing one — the
    /// warm-restart seam: `persist`/gossip restore rebuilds the table
    /// from decoded [`FinalEntry`] values (including their original
    /// `last_updated` stamps, so TTL keeps running across a restart)
    /// instead of re-learning through [`FinalTable::blend`].
    ///
    /// Callers are responsible for validating the entry first (the
    /// agent's restore clamps windows and re-seeds mismatched history
    /// variants); the table itself stores what it is given.
    pub fn restore_entry(&mut self, key: Ipv4Prefix, entry: FinalEntry) {
        self.entries.insert(key, entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryStrategy;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> Ipv4Prefix {
        Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, n))
    }

    #[test]
    fn blend_then_set_window_round_trip() {
        let strategy = HistoryStrategy::Ewma { alpha: 0.5 };
        let mut t = FinalTable::new();
        let b = t.blend(key(1), 60.0, &strategy, SimTime::from_secs(1));
        assert_eq!(b, 60.0);
        t.set_window(&key(1), 60);
        assert_eq!(t.window(&key(1)), Some(60));
        // Second observation blends 50/50.
        let b = t.blend(key(1), 100.0, &strategy, SimTime::from_secs(2));
        assert_eq!(b, 80.0);
    }

    #[test]
    fn expire_removes_stale_entries_only() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::new();
        t.blend(key(1), 50.0, &strategy, SimTime::from_secs(0));
        t.blend(key(2), 50.0, &strategy, SimTime::from_secs(80));
        let dead = t.expire(SimTime::from_secs(85), SimDuration::from_secs(90));
        assert!(dead.is_empty(), "nothing older than 90s yet");
        let dead = t.expire(SimTime::from_secs(95), SimDuration::from_secs(90));
        assert_eq!(dead, vec![key(1)]);
        assert_eq!(t.len(), 1);
        assert!(t.get(&key(2)).is_some());
    }

    #[test]
    fn refresh_resets_ttl() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::new();
        t.blend(key(1), 50.0, &strategy, SimTime::from_secs(0));
        t.blend(key(1), 55.0, &strategy, SimTime::from_secs(60));
        let dead = t.expire(SimTime::from_secs(100), SimDuration::from_secs(90));
        assert!(dead.is_empty(), "refresh at t=60 keeps it alive at t=100");
    }

    #[test]
    fn bounded_table_evicts_lru_deterministically() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::bounded(2);
        assert_eq!(t.capacity(), Some(2));
        t.blend(key(1), 50.0, &strategy, SimTime::from_secs(10));
        t.blend(key(2), 50.0, &strategy, SimTime::from_secs(20));
        t.blend(key(3), 50.0, &strategy, SimTime::from_secs(30));
        let evicted = t.enforce_capacity();
        assert_eq!(evicted, vec![key(1)], "oldest entry goes first");
        assert_eq!(t.len(), 2);
        // Refreshing key(2) makes key(3) the LRU victim.
        t.blend(key(2), 55.0, &strategy, SimTime::from_secs(40));
        t.blend(key(4), 50.0, &strategy, SimTime::from_secs(50));
        assert_eq!(t.enforce_capacity(), vec![key(3)]);
        assert!(t.get(&key(2)).is_some() && t.get(&key(4)).is_some());
    }

    #[test]
    fn bounded_table_ties_break_by_key_order() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::bounded(1);
        // Same timestamp: the lowest key is evicted first.
        t.blend(key(9), 1.0, &strategy, SimTime::from_secs(5));
        t.blend(key(3), 1.0, &strategy, SimTime::from_secs(5));
        t.blend(key(6), 1.0, &strategy, SimTime::from_secs(5));
        assert_eq!(t.enforce_capacity(), vec![key(3), key(6)]);
        assert!(t.get(&key(9)).is_some());
    }

    #[test]
    fn grouped_capacity_charges_an_aggregate_as_one_entry() {
        // Regression: an aggregated prefix covering N learned /32s must
        // count as ONE entry against the capacity, not N. Here 6 learned
        // hosts collapse into 2 aggregate units + 1 loner = 3 charged
        // units, which fits a capacity of 3 even though len() is 7.
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::bounded(3);
        let group = |k: &Ipv4Prefix| (k.len() == 32).then(|| k.covering(24));
        for n in [1u8, 2, 3] {
            t.blend(
                Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, n)),
                1.0,
                &strategy,
                SimTime::from_secs(10),
            );
        }
        for n in [1u8, 2, 3] {
            t.blend(
                Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, n)),
                1.0,
                &strategy,
                SimTime::from_secs(20),
            );
        }
        t.blend(
            "10.0.9.0/24".parse().unwrap(),
            1.0,
            &strategy,
            SimTime::from_secs(30),
        );
        assert_eq!(t.len(), 7);
        assert!(
            t.enforce_capacity_grouped(group).is_empty(),
            "3 charged units fit capacity 3 despite 7 raw entries"
        );
        // Ungrouped accounting would have evicted 4 of the 7.
        assert_eq!(t.clone().enforce_capacity().len(), 4);

        // One more unit (a fourth group) forces the oldest whole group
        // out: all three 10.0.0.x members leave together, oldest first.
        t.blend(
            Ipv4Prefix::host(Ipv4Addr::new(10, 0, 2, 1)),
            1.0,
            &strategy,
            SimTime::from_secs(40),
        );
        let evicted = t.enforce_capacity_grouped(group);
        assert_eq!(
            evicted,
            vec![
                Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 1)),
                Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 2)),
                Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 3)),
            ]
        );
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn grouped_recency_is_newest_member() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::bounded(1);
        let group = |k: &Ipv4Prefix| (k.len() == 32).then(|| k.covering(24));
        // Group A has an old member and a fresh one; loner B sits in
        // between. The group's recency (t=50) beats B (t=30), so B is
        // the victim even though A contains the globally oldest entry.
        t.blend(
            Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 1)),
            1.0,
            &strategy,
            SimTime::from_secs(10),
        );
        t.blend(
            Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 2)),
            1.0,
            &strategy,
            SimTime::from_secs(50),
        );
        t.blend(
            Ipv4Prefix::host(Ipv4Addr::new(10, 9, 9, 9)),
            1.0,
            &strategy,
            SimTime::from_secs(30),
        );
        assert_eq!(
            t.enforce_capacity_grouped(group),
            vec![Ipv4Prefix::host(Ipv4Addr::new(10, 9, 9, 9))]
        );
    }

    #[test]
    fn sorted_eviction_matches_repeated_min_scan() {
        // The single-sort eviction must reproduce the historical
        // one-victim-at-a-time order exactly.
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::bounded(3);
        let stamps = [7u64, 3, 3, 9, 1, 5, 3, 8];
        for (i, at) in stamps.iter().enumerate() {
            t.blend(
                Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, (100 - i) as u8)),
                1.0,
                &strategy,
                SimTime::from_secs(*at),
            );
        }
        let mut reference = t.clone();
        let mut want = Vec::new();
        while reference.len() > 3 {
            let victim = reference
                .iter()
                .min_by_key(|(k, e)| (e.last_updated, **k))
                .map(|(k, _)| *k)
                .unwrap();
            reference.entries.remove(&victim);
            want.push(victim);
        }
        assert_eq!(t.enforce_capacity(), want);
    }

    #[test]
    fn utilization_reports_eviction_pressure() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::bounded(4);
        assert_eq!(t.utilization(), Some(0.0));
        t.blend(key(1), 1.0, &strategy, SimTime::ZERO);
        t.blend(key(2), 1.0, &strategy, SimTime::ZERO);
        assert_eq!(t.utilization(), Some(0.5));
        assert_eq!(FinalTable::new().utilization(), None, "unbounded");
    }

    #[test]
    fn unbounded_table_never_evicts() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::new();
        for n in 0..=255u8 {
            t.blend(key(n), 1.0, &strategy, SimTime::ZERO);
        }
        assert!(t.enforce_capacity().is_empty());
        assert_eq!(t.len(), 256);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let strategy = HistoryStrategy::None;
        let mut t = FinalTable::new();
        t.blend(key(9), 1.0, &strategy, SimTime::ZERO);
        t.blend(key(1), 1.0, &strategy, SimTime::ZERO);
        t.blend(key(5), 1.0, &strategy, SimTime::ZERO);
        let keys: Vec<_> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![key(1), key(5), key(9)]);
    }
}
