//! Destination grouping (§III-B "Destinations as Routes").
//!
//! Riptide can learn and install windows per host (/32 routes) or per
//! prefix: if two PoPs draw their addresses from known subnets and the
//! intra-PoP interconnect is uniform, one route per remote PoP captures
//! the same information at a fraction of the route-table and computation
//! cost.

use std::net::Ipv4Addr;

use riptide_linuxnet::prefix::Ipv4Prefix;

/// The key space the agent groups observations (and installs routes) on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// One /32 route per observed remote host.
    #[default]
    Host,
    /// One route per covering prefix of the given length (e.g. `24` for
    /// one route per remote PoP in a /24-per-PoP addressing plan).
    Prefix(u8),
}

impl Granularity {
    /// The routing key a destination address falls under.
    ///
    /// # Panics
    ///
    /// Panics if a `Prefix` length exceeds 32 (rejected earlier by
    /// [`Granularity::validate`] in checked paths).
    ///
    /// # Examples
    ///
    /// ```
    /// use riptide::granularity::Granularity;
    /// use std::net::Ipv4Addr;
    ///
    /// let dst = Ipv4Addr::new(10, 0, 1, 77);
    /// assert_eq!(Granularity::Host.key(dst).to_string(), "10.0.1.77");
    /// assert_eq!(Granularity::Prefix(24).key(dst).to_string(), "10.0.1.0/24");
    /// // Two hosts in one PoP share a /24 key — one route serves both.
    /// assert_eq!(
    ///     Granularity::Prefix(24).key(dst),
    ///     Granularity::Prefix(24).key(Ipv4Addr::new(10, 0, 1, 200)),
    /// );
    /// ```
    pub fn key(self, dst: Ipv4Addr) -> Ipv4Prefix {
        match self {
            Granularity::Host => Ipv4Prefix::host(dst),
            Granularity::Prefix(len) => Ipv4Prefix::new(dst, len),
        }
    }

    /// Checks the prefix length.
    ///
    /// # Errors
    ///
    /// Returns a description if the prefix length exceeds 32.
    pub fn validate(self) -> Result<(), String> {
        if let Granularity::Prefix(len) = self {
            if len > 32 {
                return Err(format!("prefix length {len} > 32"));
            }
        }
        Ok(())
    }

    /// A short identifier for reports and benches.
    pub fn name(self) -> String {
        match self {
            Granularity::Host => "host".to_string(),
            Granularity::Prefix(len) => format!("prefix/{len}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_granularity_keys_are_slash_32() {
        let g = Granularity::Host;
        let k = g.key(Ipv4Addr::new(10, 0, 1, 7));
        assert_eq!(k, Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, 7)));
        assert_eq!(k.len(), 32);
    }

    #[test]
    fn prefix_granularity_groups_a_pop() {
        let g = Granularity::Prefix(24);
        let k1 = g.key(Ipv4Addr::new(10, 0, 1, 7));
        let k2 = g.key(Ipv4Addr::new(10, 0, 1, 250));
        let k3 = g.key(Ipv4Addr::new(10, 0, 2, 7));
        assert_eq!(k1, k2, "same PoP, same key");
        assert_ne!(k1, k3, "different PoP, different key");
        assert_eq!(k1.to_string(), "10.0.1.0/24");
    }

    #[test]
    fn slash_30_like_the_papers_example() {
        // §III-B's example uses /30 operator prefixes.
        let g = Granularity::Prefix(30);
        let k = g.key(Ipv4Addr::new(192, 0, 2, 6));
        assert_eq!(k.to_string(), "192.0.2.4/30");
    }

    #[test]
    fn validation_rejects_long_prefixes() {
        assert!(Granularity::Prefix(33).validate().is_err());
        assert!(Granularity::Prefix(32).validate().is_ok());
        assert!(Granularity::Host.validate().is_ok());
    }

    #[test]
    fn names() {
        assert_eq!(Granularity::Host.name(), "host");
        assert_eq!(Granularity::Prefix(24).name(), "prefix/24");
    }
}
