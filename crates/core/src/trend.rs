//! Trend-based damping (§V "Additional Algorithms").
//!
//! The paper: *"a significant decrease in congestion window over a short
//! time may indicate the need to aggressively decrease the initial
//! windows, beyond what is happening to existing connections."* The EWMA
//! deliberately reacts slowly; this policy watches the *fresh* combined
//! value per destination and, when it collapses between consecutive
//! polls, overrides the blended value downward so new connections do not
//! pile into a path that just degraded.

/// Detects sharp per-destination window collapses and damps the
/// installed value below what the history blend would give.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPolicy {
    /// Fractional drop between consecutive fresh values that triggers
    /// damping (e.g. `0.4` = a 40% collapse).
    pub drop_fraction: f64,
    /// Extra reduction applied on trigger: the installed value is capped
    /// at `fresh × (1 − overshoot)`.
    pub overshoot: f64,
}

impl Default for TrendPolicy {
    fn default() -> Self {
        TrendPolicy {
            drop_fraction: 0.4,
            overshoot: 0.5,
        }
    }
}

impl TrendPolicy {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description if either fraction is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.drop_fraction) {
            return Err(format!(
                "drop_fraction must be in [0, 1), got {}",
                self.drop_fraction
            ));
        }
        if !(0.0..1.0).contains(&self.overshoot) {
            return Err(format!(
                "overshoot must be in [0, 1), got {}",
                self.overshoot
            ));
        }
        Ok(())
    }

    /// Whether a move from `previous_fresh` to `fresh` is a collapse.
    pub fn triggers(&self, previous_fresh: f64, fresh: f64) -> bool {
        fresh <= previous_fresh * (1.0 - self.drop_fraction)
    }

    /// Applies the policy: given the previous and current fresh combined
    /// values and the history-blended value, returns the value to
    /// install.
    ///
    /// `floor` is the deployment's `c_min`: on a deep collapse the
    /// overshoot cap `fresh × (1 − overshoot)` can land arbitrarily close
    /// to zero, and a window below the kernel floor is never installable,
    /// so the damped value is raised back to `floor` rather than handing
    /// callers a number the clamp would silently rewrite.
    pub fn shape(&self, previous_fresh: Option<f64>, fresh: f64, blended: f64, floor: f64) -> f64 {
        match previous_fresh {
            Some(prev) if self.triggers(prev, fresh) => {
                blended.min(fresh * (1.0 - self.overshoot)).max(floor)
            }
            _ => blended,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_values_pass_through() {
        let p = TrendPolicy::default();
        assert_eq!(p.shape(Some(80.0), 78.0, 79.0, 10.0), 79.0);
        assert_eq!(p.shape(None, 80.0, 80.0, 10.0), 80.0);
    }

    #[test]
    fn collapse_overrides_the_slow_blend() {
        let p = TrendPolicy::default();
        // Fresh collapsed 80 -> 20 (75% drop); EWMA would still say 62.
        assert!(p.triggers(80.0, 20.0));
        let installed = p.shape(Some(80.0), 20.0, 62.0, 1.0);
        assert_eq!(installed, 10.0, "fresh x (1 - overshoot)");
    }

    #[test]
    fn damping_never_raises() {
        let p = TrendPolicy::default();
        // Blended already below the damped value: keep the lower one.
        let installed = p.shape(Some(100.0), 30.0, 10.0, 1.0);
        assert_eq!(installed, 10.0);
    }

    #[test]
    fn damping_respects_the_window_floor() {
        let p = TrendPolicy::default();
        // Fresh collapsed 100 -> 2: the overshoot cap alone would say
        // 2 x 0.5 = 1, below any sane c_min. The policy must not ask for
        // a window the kernel floor forbids.
        assert!(p.triggers(100.0, 2.0));
        let installed = p.shape(Some(100.0), 2.0, 50.0, 10.0);
        assert_eq!(installed, 10.0, "damped value raised to the floor");
    }

    #[test]
    fn threshold_edge() {
        let p = TrendPolicy {
            drop_fraction: 0.5,
            overshoot: 0.5,
        };
        assert!(p.triggers(100.0, 50.0), "exactly at threshold triggers");
        assert!(!p.triggers(100.0, 51.0));
    }

    #[test]
    fn validation() {
        assert!(TrendPolicy::default().validate().is_ok());
        assert!(TrendPolicy {
            drop_fraction: 1.0,
            overshoot: 0.5
        }
        .validate()
        .is_err());
        assert!(TrendPolicy {
            drop_fraction: 0.4,
            overshoot: -0.1
        }
        .validate()
        .is_err());
    }
}
