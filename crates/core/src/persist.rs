//! Warm-restart persistence: a versioned binary snapshot of the learned
//! table plus a CRC-guarded append-only journal of route deltas.
//!
//! The paper's agent learns alone and dies alone: a crashed Riptide
//! daemon restarts with an empty final-values table and relearns every
//! window at slow-start speed (§IV-A's ramp, paid again). This module is
//! the durability half of the fix — a WAL-hybrid state file in the
//! snapshot-plus-journal shape Redis made canonical:
//!
//! * **Snapshot** ([`TableSnapshot`]): the full learned state — every
//!   [`FinalEntry`]'s window, history accumulator and TTL stamp, the
//!   agent's installed-routes view, and the loss guard's breaker states
//!   ([`GuardExport`]) — encoded as one versioned, CRC-trailed block.
//!   Written on an interval and on graceful shutdown.
//! * **Journal** ([`JournalRecord`]): fixed-size install/withdraw/evict
//!   deltas appended between snapshots, each record carrying its own
//!   CRC. A `kill -9` mid-append leaves a torn tail; decoding stops at
//!   the first short or corrupt record and keeps everything before it,
//!   so a torn write truncates cleanly instead of poisoning the table.
//!
//! # Format
//!
//! All integers are little-endian; `f64`s travel as raw bit patterns
//! ([`f64::to_bits`]) so encode→decode is bit-exact; times are
//! [`SimTime`] nanoseconds as `u64`.
//!
//! ```text
//! state file  := snapshot journal-record*
//! snapshot    := "RPTS" version:u16 taken_at:u64
//!                n_entries:u32 n_installs:u32 n_guards:u32
//!                entry* install* guard* crc:u32
//! entry       := prefix window:u32 last_fresh:u64 last_updated:u64 history
//! prefix      := bits:u32 len:u8            (len <= 32 or the block is rejected)
//! history     := tag:u8 len:u16 payload     (v2: len = payload bytes)
//! payload     := ε                          (0x00 EWMA unseeded, 0x02 no
//!                                            history, 0x05 utility unseeded)
//!              | value:u64                  (0x01 EWMA seeded, 0x06 utility
//!                                            seeded)
//!              | n:u16 value:u64 * n        (0x03 windowed mean, 0x04
//!                                            percentile ring)
//! install     := prefix window:u32
//! guard       := prefix breaker:u8 penalty:u64 penalty_at:u64 clean_streak:u32
//! journal-record := tag:u8 at:u64 prefix window:u32 crc:u32   (22 bytes)
//! ```
//!
//! Version 1 files (no `len` after the history tag, tags 0x00–0x03 only)
//! still decode. The v2 length prefix is the forward-compat story: a
//! decoder meeting a history tag it does not know skips `len` bytes and
//! drops that entry alone — counted in
//! [`TableSnapshot::skipped_entries`] and surfaced by the agent as the
//! `riptide_persist_skipped_entries_total` metric — instead of rejecting
//! the whole snapshot, so a version rollback costs the unknown entries,
//! not the entire learned table.
//!
//! The snapshot CRC covers every byte from the magic through the last
//! guard record; each journal record's CRC covers its first 18 bytes.
//! CRCs are CRC-32 (IEEE 802.3), computed by the in-tree [`crc32`].
//!
//! # Replay rules
//!
//! [`replay`] folds journal records into a decoded snapshot in order:
//! installs upsert (last writer wins), withdrawals and evictions remove.
//! Both operations are assignments, so replaying a journal twice — or
//! replaying an already-replayed state — reaches the same final state:
//! replay is idempotent, which is what makes "snapshot, then reapply
//! whatever journal survived" safe without knowing where the snapshot
//! was cut.
//!
//! Decoding **never panics on hostile bytes**: every length is checked
//! against the remaining input, prefix lengths above 32 and unknown
//! tags reject the block, and the worst outcome of corruption is an
//! `Err` (snapshot) or a clean truncation (journal). The agent-side
//! restore ([`RiptideAgent::restore_state`]) additionally clamps every
//! window into `[c_min, c_max]`, so even a maliciously edited state
//! file cannot install an out-of-bounds window.
//!
//! [`FinalEntry`]: crate::table::FinalEntry
//! [`GuardExport`]: crate::guard::GuardExport
//! [`RiptideAgent::restore_state`]: crate::agent::RiptideAgent::restore_state

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::SimTime;

use crate::guard::{BreakerState, GuardExport};
use crate::history::HistoryState;

/// Snapshot magic: "RPTS".
const MAGIC: [u8; 4] = *b"RPTS";
/// Current snapshot format version. Version 1 (unprefixed history
/// encodings, tags 0x00–0x03 only) is still decoded.
pub const FORMAT_VERSION: u16 = 2;
/// Encoded size of one journal record.
pub const JOURNAL_RECORD_BYTES: usize = 22;
/// Upper bound on a windowed-mean history's retained values — far above
/// any configured window, low enough that a corrupt count cannot ask
/// for gigabytes.
const MAX_HISTORY_WINDOW: usize = 4096;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
///
/// The workspace is dependency-free, so the table is built at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a snapshot block failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input is shorter than the structure it declares — a torn
    /// snapshot write.
    Truncated,
    /// The leading magic is not `RPTS`.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The trailing CRC does not match the block's contents.
    CrcMismatch,
    /// A field holds an impossible value (prefix length over 32, an
    /// unknown tag, an oversized history window).
    Malformed(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "state block truncated"),
            PersistError::BadMagic => write!(f, "not a riptide state file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported state version {v}"),
            PersistError::CrcMismatch => write!(f, "state block CRC mismatch"),
            PersistError::Malformed(what) => write!(f, "malformed state block: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// One learned destination as persisted: the fields of
/// [`crate::table::FinalEntry`] plus its key.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// The destination key.
    pub key: Ipv4Prefix,
    /// The clamped window recorded for the destination.
    pub window: u32,
    /// The most recent fresh (pre-blend) combined value.
    pub last_fresh: f64,
    /// When the entry was last refreshed — the TTL clock, which keeps
    /// running across the restart: an entry that would have expired
    /// during the downtime is dropped at restore, not resurrected.
    pub last_updated: SimTime,
    /// The history accumulator.
    pub history: HistoryState,
}

/// A point-in-time copy of everything the agent would lose in a crash.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableSnapshot {
    /// When the snapshot was taken.
    pub taken_at: SimTime,
    /// Learned entries, key-ordered.
    pub entries: Vec<SnapshotEntry>,
    /// The agent's installed-routes view: `(key, window)`, key-ordered.
    pub installs: Vec<(Ipv4Prefix, u32)>,
    /// Loss-guard breaker states, key-ordered.
    pub guards: Vec<GuardExport>,
    /// Decode-side diagnostic (never encoded): entries dropped because
    /// their history tag is unknown to this build — written by a newer
    /// version whose policies this one does not have. Zero on snapshots
    /// built in memory.
    pub skipped_entries: u32,
}

/// What a journal record did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// A route was installed or updated with this window.
    Install {
        /// The window issued.
        window: u32,
    },
    /// The destination's route was withdrawn (TTL expiry, shutdown).
    Withdraw,
    /// The destination was evicted by the capacity bound.
    Evict,
}

/// One append-only journal delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalRecord {
    /// When the delta happened.
    pub at: SimTime,
    /// The destination key.
    pub key: Ipv4Prefix,
    /// What happened.
    pub op: JournalOp,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_prefix(out: &mut Vec<u8>, p: Ipv4Prefix) {
    put_u32(out, u32::from(p.network()));
    out.push(p.len());
}

/// A bounds-checked little-endian reader over the input slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn prefix(&mut self) -> Result<Ipv4Prefix, PersistError> {
        let bits = self.u32()?;
        let len = self.u8()?;
        if len > 32 {
            return Err(PersistError::Malformed("prefix length over 32"));
        }
        Ok(Ipv4Prefix::new(Ipv4Addr::from(bits), len))
    }
}

impl TableSnapshot {
    /// Encodes the snapshot as one CRC-trailed block.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.entries.len() * 32);
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.taken_at.as_nanos());
        put_u32(&mut out, self.entries.len() as u32);
        put_u32(&mut out, self.installs.len() as u32);
        put_u32(&mut out, self.guards.len() as u32);
        for e in &self.entries {
            put_prefix(&mut out, e.key);
            put_u32(&mut out, e.window);
            put_u64(&mut out, e.last_fresh.to_bits());
            put_u64(&mut out, e.last_updated.as_nanos());
            // v2: every history is `tag len:u16 payload`, so a decoder
            // can skip payloads whose tag it does not know.
            match &e.history {
                HistoryState::Ewma { value: None } => {
                    out.push(0x00);
                    put_u16(&mut out, 0);
                }
                HistoryState::Ewma { value: Some(v) } => {
                    out.push(0x01);
                    put_u16(&mut out, 8);
                    put_u64(&mut out, v.to_bits());
                }
                HistoryState::None => {
                    out.push(0x02);
                    put_u16(&mut out, 0);
                }
                HistoryState::Window { values } => {
                    out.push(0x03);
                    let n = values.len().min(MAX_HISTORY_WINDOW);
                    put_u16(&mut out, (2 + 8 * n) as u16);
                    put_u16(&mut out, n as u16);
                    for v in values.iter().take(n) {
                        put_u64(&mut out, v.to_bits());
                    }
                }
                HistoryState::Ring { values } => {
                    out.push(0x04);
                    let n = values.len().min(MAX_HISTORY_WINDOW);
                    put_u16(&mut out, (2 + 8 * n) as u16);
                    put_u16(&mut out, n as u16);
                    for v in values.iter().take(n) {
                        put_u64(&mut out, v.to_bits());
                    }
                }
                HistoryState::Utility { value: None } => {
                    out.push(0x05);
                    put_u16(&mut out, 0);
                }
                HistoryState::Utility { value: Some(v) } => {
                    out.push(0x06);
                    put_u16(&mut out, 8);
                    put_u64(&mut out, v.to_bits());
                }
            }
        }
        for &(key, window) in &self.installs {
            put_prefix(&mut out, key);
            put_u32(&mut out, window);
        }
        for g in &self.guards {
            put_prefix(&mut out, g.key);
            out.push(match g.breaker {
                BreakerState::Closed => 0,
                BreakerState::Open => 1,
                BreakerState::HalfOpen => 2,
            });
            put_u64(&mut out, g.penalty.to_bits());
            put_u64(&mut out, g.penalty_at.as_nanos());
            put_u32(&mut out, g.clean_streak);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes one snapshot block from the front of `bytes`, returning
    /// the snapshot and the number of bytes it consumed (the journal
    /// starts right after).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on truncation, a bad magic or version,
    /// a CRC mismatch, or any impossible field — never panics, whatever
    /// the input.
    pub fn decode(bytes: &[u8]) -> Result<(TableSnapshot, usize), PersistError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u16()?;
        if version != 1 && version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let taken_at = SimTime::from_nanos(r.u64()?);
        let n_entries = r.u32()? as usize;
        let n_installs = r.u32()? as usize;
        let n_guards = r.u32()? as usize;
        // Cheap plausibility bound before allocating: every declared
        // record costs at least 5 bytes of input.
        let min_needed = n_entries
            .saturating_add(n_installs)
            .saturating_add(n_guards)
            .saturating_mul(5);
        if min_needed > bytes.len() {
            return Err(PersistError::Truncated);
        }
        let mut entries = Vec::with_capacity(n_entries);
        let mut skipped_entries: u32 = 0;
        for _ in 0..n_entries {
            let key = r.prefix()?;
            let window = r.u32()?;
            let last_fresh = f64::from_bits(r.u64()?);
            let last_updated = SimTime::from_nanos(r.u64()?);
            let tag = r.u8()?;
            let history = if version == 1 {
                // v1: no length prefix; the tag dictates the payload, so
                // an unknown tag leaves the reader unalignable and the
                // whole block must be rejected.
                match tag {
                    0x00 => HistoryState::Ewma { value: None },
                    0x01 => HistoryState::Ewma {
                        value: Some(f64::from_bits(r.u64()?)),
                    },
                    0x02 => HistoryState::None,
                    0x03 => {
                        let n = r.u16()? as usize;
                        if n > MAX_HISTORY_WINDOW {
                            return Err(PersistError::Malformed("history window too large"));
                        }
                        let mut values = std::collections::VecDeque::with_capacity(n);
                        for _ in 0..n {
                            values.push_back(f64::from_bits(r.u64()?));
                        }
                        HistoryState::Window { values }
                    }
                    _ => return Err(PersistError::Malformed("unknown history tag")),
                }
            } else {
                // v2: length-prefixed payload. Known tags must consume
                // the payload exactly; an unknown tag (a policy from a
                // newer build) skips cleanly and drops only this entry.
                let len = r.u16()? as usize;
                let payload = r.take(len)?;
                let mut p = Reader::new(payload);
                let history = match tag {
                    0x00 => Some(HistoryState::Ewma { value: None }),
                    0x01 => Some(HistoryState::Ewma {
                        value: Some(f64::from_bits(p.u64()?)),
                    }),
                    0x02 => Some(HistoryState::None),
                    0x03 | 0x04 => {
                        let n = p.u16()? as usize;
                        if n > MAX_HISTORY_WINDOW {
                            return Err(PersistError::Malformed("history window too large"));
                        }
                        let mut values = std::collections::VecDeque::with_capacity(n);
                        for _ in 0..n {
                            values.push_back(f64::from_bits(p.u64()?));
                        }
                        Some(if tag == 0x03 {
                            HistoryState::Window { values }
                        } else {
                            HistoryState::Ring { values }
                        })
                    }
                    0x05 => Some(HistoryState::Utility { value: None }),
                    0x06 => Some(HistoryState::Utility {
                        value: Some(f64::from_bits(p.u64()?)),
                    }),
                    _ => None,
                };
                match history {
                    Some(history) => {
                        if p.pos != payload.len() {
                            return Err(PersistError::Malformed("history payload length mismatch"));
                        }
                        history
                    }
                    None => {
                        skipped_entries += 1;
                        continue;
                    }
                }
            };
            entries.push(SnapshotEntry {
                key,
                window,
                last_fresh,
                last_updated,
                history,
            });
        }
        let mut installs = Vec::with_capacity(n_installs);
        for _ in 0..n_installs {
            let key = r.prefix()?;
            installs.push((key, r.u32()?));
        }
        let mut guards = Vec::with_capacity(n_guards);
        for _ in 0..n_guards {
            let key = r.prefix()?;
            let breaker = match r.u8()? {
                0 => BreakerState::Closed,
                1 => BreakerState::Open,
                2 => BreakerState::HalfOpen,
                _ => return Err(PersistError::Malformed("unknown breaker state")),
            };
            let penalty = f64::from_bits(r.u64()?);
            let penalty_at = SimTime::from_nanos(r.u64()?);
            let clean_streak = r.u32()?;
            guards.push(GuardExport {
                key,
                breaker,
                penalty,
                penalty_at,
                clean_streak,
            });
        }
        let body_len = r.pos;
        let want = r.u32()?;
        if crc32(&bytes[..body_len]) != want {
            return Err(PersistError::CrcMismatch);
        }
        Ok((
            TableSnapshot {
                taken_at,
                entries,
                installs,
                guards,
                skipped_entries,
            },
            body_len + 4,
        ))
    }
}

impl JournalRecord {
    /// Appends the record's fixed-size CRC-guarded encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let (tag, window) = match self.op {
            JournalOp::Install { window } => (1u8, window),
            JournalOp::Withdraw => (2, 0),
            JournalOp::Evict => (3, 0),
        };
        out.push(tag);
        put_u64(out, self.at.as_nanos());
        put_prefix(out, self.key);
        put_u32(out, window);
        let crc = crc32(&out[start..]);
        put_u32(out, crc);
        debug_assert_eq!(out.len() - start, JOURNAL_RECORD_BYTES);
    }
}

/// Decodes journal records until the input runs dry, a record is torn
/// (fewer than [`JOURNAL_RECORD_BYTES`] remain) or a record fails its
/// CRC or field checks. Returns the records that decoded cleanly and
/// whether a torn/corrupt tail was dropped — the clean-truncation
/// semantics a `kill -9` mid-append demands.
pub fn decode_journal(bytes: &[u8]) -> (Vec<JournalRecord>, bool) {
    let mut records = Vec::new();
    let mut pos = 0;
    while bytes.len() - pos >= JOURNAL_RECORD_BYTES {
        let rec = &bytes[pos..pos + JOURNAL_RECORD_BYTES];
        let body = &rec[..JOURNAL_RECORD_BYTES - 4];
        let want = u32::from_le_bytes(rec[JOURNAL_RECORD_BYTES - 4..].try_into().unwrap());
        if crc32(body) != want {
            return (records, true);
        }
        let mut r = Reader::new(body);
        let parsed = (|| -> Result<JournalRecord, PersistError> {
            let tag = r.u8()?;
            let at = SimTime::from_nanos(r.u64()?);
            let key = r.prefix()?;
            let window = r.u32()?;
            let op = match tag {
                1 => JournalOp::Install { window },
                2 => JournalOp::Withdraw,
                3 => JournalOp::Evict,
                _ => return Err(PersistError::Malformed("unknown journal tag")),
            };
            Ok(JournalRecord { at, key, op })
        })();
        match parsed {
            Ok(record) => records.push(record),
            // CRC held but a field is impossible (e.g. a bit flip that
            // happened to preserve the checksum cannot; an unknown tag
            // from a future version can): stop cleanly here too.
            Err(_) => return (records, true),
        }
        pos += JOURNAL_RECORD_BYTES;
    }
    (records, pos < bytes.len())
}

/// A decoded state file: the snapshot plus whatever journal survived.
#[derive(Debug, Clone, PartialEq)]
pub struct StateFile {
    /// The snapshot block.
    pub snapshot: TableSnapshot,
    /// Journal records appended after the snapshot, oldest first.
    pub journal: Vec<JournalRecord>,
    /// Whether a torn or corrupt journal tail was dropped.
    pub torn_tail: bool,
}

/// Encodes a snapshot followed by journal records — the full state-file
/// image an atomic rewrite installs.
pub fn encode_state(snapshot: &TableSnapshot, journal: &[JournalRecord]) -> Vec<u8> {
    let mut out = snapshot.encode();
    for rec in journal {
        rec.encode_into(&mut out);
    }
    out
}

/// Decodes a state file: the snapshot block, then journal records to
/// the (possibly torn) end of input.
///
/// # Errors
///
/// Returns [`PersistError`] when the snapshot block itself is damaged —
/// the caller starts empty in that case. Journal damage is not an
/// error; the journal just truncates at the first bad record.
pub fn decode_state(bytes: &[u8]) -> Result<StateFile, PersistError> {
    let (snapshot, used) = TableSnapshot::decode(bytes)?;
    let (journal, torn_tail) = decode_journal(&bytes[used..]);
    Ok(StateFile {
        snapshot,
        journal,
        torn_tail,
    })
}

/// Folds `journal` into `snapshot`, oldest record first: installs
/// upsert the entry and installed view (last writer wins), withdrawals
/// and evictions remove both. Entries created by the journal carry an
/// unseeded history (the agent's restore re-seeds to its configured
/// strategy). Replay is idempotent: applying the same journal again
/// reaches the same state.
pub fn replay(snapshot: &TableSnapshot, journal: &[JournalRecord]) -> TableSnapshot {
    let mut entries: BTreeMap<Ipv4Prefix, SnapshotEntry> = snapshot
        .entries
        .iter()
        .map(|e| (e.key, e.clone()))
        .collect();
    let mut installs: BTreeMap<Ipv4Prefix, u32> = snapshot.installs.iter().copied().collect();
    let mut taken_at = snapshot.taken_at;
    for rec in journal {
        taken_at = taken_at.max(rec.at);
        match rec.op {
            JournalOp::Install { window } => {
                installs.insert(rec.key, window);
                entries
                    .entry(rec.key)
                    .and_modify(|e| {
                        e.window = window;
                        e.last_updated = rec.at;
                    })
                    .or_insert_with(|| SnapshotEntry {
                        key: rec.key,
                        window,
                        last_fresh: window as f64,
                        last_updated: rec.at,
                        history: HistoryState::Ewma { value: None },
                    });
            }
            JournalOp::Withdraw | JournalOp::Evict => {
                installs.remove(&rec.key);
                entries.remove(&rec.key);
            }
        }
    }
    TableSnapshot {
        taken_at,
        entries: entries.into_values().collect(),
        installs: installs.into_iter().collect(),
        guards: snapshot.guards.clone(),
        skipped_entries: snapshot.skipped_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> Ipv4Prefix {
        Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, n))
    }

    fn sample_snapshot() -> TableSnapshot {
        TableSnapshot {
            taken_at: SimTime::from_secs(100),
            entries: vec![
                SnapshotEntry {
                    key: key(1),
                    window: 80,
                    last_fresh: 81.5,
                    last_updated: SimTime::from_secs(90),
                    history: HistoryState::Ewma { value: Some(79.25) },
                },
                SnapshotEntry {
                    key: key(2),
                    window: 40,
                    last_fresh: 40.0,
                    last_updated: SimTime::from_secs(99),
                    history: HistoryState::Window {
                        values: [38.0, 41.0, 40.0].into_iter().collect(),
                    },
                },
                SnapshotEntry {
                    key: key(3),
                    window: 12,
                    last_fresh: 12.0,
                    last_updated: SimTime::from_secs(98),
                    history: HistoryState::None,
                },
            ],
            installs: vec![(key(1), 80), (key(2), 40)],
            guards: vec![GuardExport {
                key: key(1),
                breaker: BreakerState::Open,
                penalty: 1000.0,
                penalty_at: SimTime::from_secs(95),
                clean_streak: 0,
            }],
            skipped_entries: 0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_round_trips_bit_exact() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let (decoded, used) = TableSnapshot::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = TableSnapshot::default();
        let (decoded, _) = TableSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn truncated_snapshot_is_rejected_not_panicking() {
        let bytes = sample_snapshot().encode();
        for cut in 0..bytes.len() {
            let err = TableSnapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated | PersistError::CrcMismatch),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected_not_panicking() {
        let bytes = sample_snapshot().encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                TableSnapshot::decode(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_distinct_errors() {
        let mut bytes = sample_snapshot().encode();
        bytes[0] = b'X';
        assert_eq!(
            TableSnapshot::decode(&bytes).unwrap_err(),
            PersistError::BadMagic
        );
        let mut bytes = sample_snapshot().encode();
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            TableSnapshot::decode(&bytes).unwrap_err(),
            // The CRC catches the edit first only if we recompute it;
            // here the CRC no longer matches, either error is a rejection.
            PersistError::UnsupportedVersion(_) | PersistError::CrcMismatch
        ));
    }

    #[test]
    fn huge_declared_counts_do_not_allocate() {
        // A snapshot header claiming 4 billion entries against a
        // 30-byte input must fail fast on the plausibility bound.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_u16(&mut bytes, FORMAT_VERSION);
        put_u64(&mut bytes, 0);
        put_u32(&mut bytes, u32::MAX);
        put_u32(&mut bytes, u32::MAX);
        put_u32(&mut bytes, u32::MAX);
        assert_eq!(
            TableSnapshot::decode(&bytes).unwrap_err(),
            PersistError::Truncated
        );
    }

    #[test]
    fn journal_round_trips_and_truncates_cleanly() {
        let records = vec![
            JournalRecord {
                at: SimTime::from_secs(101),
                key: key(4),
                op: JournalOp::Install { window: 64 },
            },
            JournalRecord {
                at: SimTime::from_secs(102),
                key: key(1),
                op: JournalOp::Withdraw,
            },
            JournalRecord {
                at: SimTime::from_secs(103),
                key: key(2),
                op: JournalOp::Evict,
            },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        assert_eq!(bytes.len(), 3 * JOURNAL_RECORD_BYTES);
        let (decoded, torn) = decode_journal(&bytes);
        assert_eq!(decoded, records);
        assert!(!torn);

        // A torn tail: the last record loses its final 5 bytes. The
        // first two records survive, the tail is flagged.
        let (decoded, torn) = decode_journal(&bytes[..bytes.len() - 5]);
        assert_eq!(decoded, records[..2]);
        assert!(torn);

        // A bit flip mid-journal stops replay at the damaged record.
        let mut corrupt = bytes.clone();
        corrupt[JOURNAL_RECORD_BYTES + 3] ^= 0x01;
        let (decoded, torn) = decode_journal(&corrupt);
        assert_eq!(decoded, records[..1]);
        assert!(torn);
    }

    #[test]
    fn state_file_round_trips_with_journal() {
        let snap = sample_snapshot();
        let journal = vec![JournalRecord {
            at: SimTime::from_secs(105),
            key: key(9),
            op: JournalOp::Install { window: 33 },
        }];
        let bytes = encode_state(&snap, &journal);
        let state = decode_state(&bytes).unwrap();
        assert_eq!(state.snapshot, snap);
        assert_eq!(state.journal, journal);
        assert!(!state.torn_tail);
    }

    #[test]
    fn replay_applies_installs_withdrawals_and_evictions() {
        let snap = sample_snapshot();
        let journal = vec![
            // Update an existing destination.
            JournalRecord {
                at: SimTime::from_secs(101),
                key: key(1),
                op: JournalOp::Install { window: 90 },
            },
            // Install a brand-new one.
            JournalRecord {
                at: SimTime::from_secs(102),
                key: key(7),
                op: JournalOp::Install { window: 25 },
            },
            // Withdraw and evict.
            JournalRecord {
                at: SimTime::from_secs(103),
                key: key(2),
                op: JournalOp::Withdraw,
            },
            JournalRecord {
                at: SimTime::from_secs(104),
                key: key(3),
                op: JournalOp::Evict,
            },
        ];
        let replayed = replay(&snap, &journal);
        assert_eq!(replayed.taken_at, SimTime::from_secs(104));
        let keys: Vec<Ipv4Prefix> = replayed.entries.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![key(1), key(7)]);
        assert_eq!(replayed.entries[0].window, 90);
        assert_eq!(
            replayed.entries[0].last_updated,
            SimTime::from_secs(101),
            "install refreshes the TTL stamp"
        );
        assert_eq!(replayed.installs, vec![(key(1), 90), (key(7), 25)]);
        assert_eq!(replayed.guards, snap.guards, "guard state rides along");
    }

    #[test]
    fn replay_is_idempotent() {
        let snap = sample_snapshot();
        let journal = vec![
            JournalRecord {
                at: SimTime::from_secs(101),
                key: key(1),
                op: JournalOp::Install { window: 55 },
            },
            JournalRecord {
                at: SimTime::from_secs(102),
                key: key(3),
                op: JournalOp::Evict,
            },
        ];
        let once = replay(&snap, &journal);
        let twice = replay(&once, &journal);
        assert_eq!(once, twice);
    }

    #[test]
    fn last_writer_wins_on_repeated_installs() {
        let snap = TableSnapshot::default();
        let journal = vec![
            JournalRecord {
                at: SimTime::from_secs(1),
                key: key(5),
                op: JournalOp::Install { window: 20 },
            },
            JournalRecord {
                at: SimTime::from_secs(2),
                key: key(5),
                op: JournalOp::Install { window: 70 },
            },
        ];
        let replayed = replay(&snap, &journal);
        assert_eq!(replayed.installs, vec![(key(5), 70)]);
        assert_eq!(replayed.entries[0].window, 70);
    }

    /// Re-encodes a snapshot in the v1 format (no history length
    /// prefixes) — old state files a v2 decoder must still read.
    fn encode_v1(snap: &TableSnapshot) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, 1);
        put_u64(&mut out, snap.taken_at.as_nanos());
        put_u32(&mut out, snap.entries.len() as u32);
        put_u32(&mut out, snap.installs.len() as u32);
        put_u32(&mut out, snap.guards.len() as u32);
        for e in &snap.entries {
            put_prefix(&mut out, e.key);
            put_u32(&mut out, e.window);
            put_u64(&mut out, e.last_fresh.to_bits());
            put_u64(&mut out, e.last_updated.as_nanos());
            match &e.history {
                HistoryState::Ewma { value: None } => out.push(0x00),
                HistoryState::Ewma { value: Some(v) } => {
                    out.push(0x01);
                    put_u64(&mut out, v.to_bits());
                }
                HistoryState::None => out.push(0x02),
                HistoryState::Window { values } => {
                    out.push(0x03);
                    put_u16(&mut out, values.len() as u16);
                    for v in values {
                        put_u64(&mut out, v.to_bits());
                    }
                }
                other => panic!("v1 cannot encode {other:?}"),
            }
        }
        for &(key, window) in &snap.installs {
            put_prefix(&mut out, key);
            put_u32(&mut out, window);
        }
        for g in &snap.guards {
            put_prefix(&mut out, g.key);
            out.push(match g.breaker {
                BreakerState::Closed => 0,
                BreakerState::Open => 1,
                BreakerState::HalfOpen => 2,
            });
            put_u64(&mut out, g.penalty.to_bits());
            put_u64(&mut out, g.penalty_at.as_nanos());
            put_u32(&mut out, g.clean_streak);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    #[test]
    fn v1_snapshots_still_decode() {
        let snap = sample_snapshot();
        let bytes = encode_v1(&snap);
        let (decoded, used) = TableSnapshot::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, snap);
    }

    #[test]
    fn v1_unknown_history_tag_still_rejects_the_block() {
        // Without a length prefix an unknown tag is unalignable; the v1
        // path must keep its original whole-block rejection.
        let snap = TableSnapshot {
            entries: vec![SnapshotEntry {
                key: key(1),
                window: 80,
                last_fresh: 80.0,
                last_updated: SimTime::from_secs(90),
                history: HistoryState::None,
            }],
            ..TableSnapshot::default()
        };
        let mut bytes = encode_v1(&snap);
        let tag_pos = bytes.len() - 4 - 1; // tag is the last body byte
        assert_eq!(bytes[tag_pos], 0x02);
        bytes[tag_pos] = 0x7F;
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            TableSnapshot::decode(&bytes).unwrap_err(),
            PersistError::Malformed("unknown history tag")
        );
    }

    #[test]
    fn new_history_variants_round_trip() {
        let snap = TableSnapshot {
            taken_at: SimTime::from_secs(50),
            entries: vec![
                SnapshotEntry {
                    key: key(4),
                    window: 30,
                    last_fresh: 31.0,
                    last_updated: SimTime::from_secs(45),
                    history: HistoryState::Ring {
                        values: [28.0, 33.0, 30.5].into_iter().collect(),
                    },
                },
                SnapshotEntry {
                    key: key(5),
                    window: 60,
                    last_fresh: 61.0,
                    last_updated: SimTime::from_secs(46),
                    history: HistoryState::Utility { value: Some(58.75) },
                },
                SnapshotEntry {
                    key: key(6),
                    window: 20,
                    last_fresh: 20.0,
                    last_updated: SimTime::from_secs(47),
                    history: HistoryState::Utility { value: None },
                },
            ],
            ..TableSnapshot::default()
        };
        let bytes = snap.encode();
        let (decoded, used) = TableSnapshot::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, snap);
    }

    #[test]
    fn unknown_v2_history_tag_skips_only_that_entry() {
        // Encode three entries, rewrite the middle one's tag to a value
        // no build knows, and fix up the CRC: the other two entries must
        // survive and the skip must be counted.
        let snap = sample_snapshot();
        let mut bytes = snap.encode();
        // Locate the second entry's tag: walk the first two entries.
        let entry_head = 5 + 4 + 8 + 8; // prefix + window + fresh + updated
        let mut pos = 4 + 2 + 8 + 12; // magic version taken_at counts
        pos += entry_head; // first entry fields
        assert_eq!(bytes[pos], 0x01, "first entry: seeded EWMA");
        pos += 1 + 2 + 8; // tag len payload
        pos += entry_head; // second entry fields
        assert_eq!(bytes[pos], 0x03, "second entry: windowed mean");
        bytes[pos] = 0x7F;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());

        let (decoded, used) = TableSnapshot::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded.skipped_entries, 1);
        let keys: Vec<Ipv4Prefix> = decoded.entries.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![key(1), key(3)], "only the tagged entry drops");
        assert_eq!(decoded.installs, snap.installs);
        assert_eq!(decoded.guards, snap.guards);
    }

    #[test]
    fn prefix_length_over_32_is_rejected() {
        // Hand-build a snapshot whose single install has len = 40, with
        // a valid CRC — the field check itself must reject it.
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC);
        put_u16(&mut body, FORMAT_VERSION);
        put_u64(&mut body, 0);
        put_u32(&mut body, 0);
        put_u32(&mut body, 1);
        put_u32(&mut body, 0);
        put_u32(&mut body, 0x0A00_0001);
        body.push(40); // impossible length
        put_u32(&mut body, 80);
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        assert_eq!(
            TableSnapshot::decode(&body).unwrap_err(),
            PersistError::Malformed("prefix length over 32")
        );
    }
}
