//! Resilient agent I/O: retries, backoff, timeouts and the subprocess
//! bridge.
//!
//! The paper's agent is a long-lived daemon whose every cycle shells out
//! twice — `ss -i` to observe, `ip route` to act (§III, Fig. 8). Both
//! calls fail in production: polls time out, output arrives truncated,
//! installs race route churn. This module wraps the agent's two seams
//! with the production behaviours those failures demand:
//!
//! * [`BackoffPolicy`] / [`retry_with_backoff`] — bounded retries with
//!   exponential backoff and an optional total time budget (the agent
//!   cannot let one cycle's retries bleed into the next `i_u` interval);
//! * [`ResilientObserver`] — retries a [`FallibleObserver`], charging
//!   each timed-out attempt against the cycle budget, and reports
//!   failure only when the budget or attempts are exhausted — at which
//!   point the caller runs [`RiptideAgent::tick_degraded`] instead of
//!   guessing;
//! * [`ResilientController`] — retries a [`RouteController`] per call;
//! * [`SsExecObserver`] / [`IpExecController`] — the real-deployment
//!   shapes: an observer that runs `ss -i` through a
//!   [`CommandRunner`] and salvages partial output, and a controller
//!   that turns route decisions into `ip route` invocations.
//!
//! [`RiptideAgent::tick_degraded`]: crate::agent::RiptideAgent::tick_degraded

use riptide_linuxnet::exec::{CommandRunner, ExecError};
use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_linuxnet::ss::SockTable;
use riptide_simnet::time::SimDuration;

use crate::control::{ControlError, RouteController};
use crate::observe::{
    observations_from_sock_table, CwndObservation, FallibleObserver, ObserveError,
};
use crate::telemetry::IoCounters;

/// Exponential-backoff retry schedule for one I/O call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub initial: SimDuration,
    /// Multiplier applied to the delay after each retry.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
}

impl BackoffPolicy {
    /// The agent's deployment schedule: 4 attempts, 50 ms → 100 ms →
    /// 200 ms between them — all retries finish well inside the 1 s
    /// update interval of Table I.
    pub fn agent_default() -> Self {
        BackoffPolicy {
            initial: SimDuration::from_millis(50),
            factor: 2.0,
            cap: SimDuration::from_secs(1),
            max_attempts: 4,
        }
    }

    /// No retries: one attempt, report the first error.
    pub fn none() -> Self {
        BackoffPolicy {
            max_attempts: 1,
            ..BackoffPolicy::agent_default()
        }
    }

    /// The delay to wait before retry number `retry` (1-based: the delay
    /// between attempt `retry` and attempt `retry + 1`), capped.
    pub fn delay_before_retry(&self, retry: u32) -> SimDuration {
        let scaled = self.initial.as_secs_f64() * self.factor.powi(retry.saturating_sub(1) as i32);
        SimDuration::from_secs_f64(scaled.min(self.cap.as_secs_f64()))
    }

    /// Checks the schedule is usable.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".to_string());
        }
        if self.factor < 1.0 || self.factor.is_nan() {
            return Err(format!("backoff factor {} must be >= 1", self.factor));
        }
        Ok(())
    }
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy::agent_default()
    }
}

/// What a retried call ended as.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome<T, E> {
    /// The final result: the first success, or the last error.
    pub result: Result<T, E>,
    /// Attempts made (1 = succeeded first try).
    pub attempts: u32,
    /// Modeled time consumed by failed attempts and backoff delays.
    pub spent: SimDuration,
}

/// Runs `op` under `policy`, retrying failures with exponential backoff.
///
/// Time here is *modeled*, not wall-clock — the agent runs on simulated
/// time. `cost` charges each error with the time the failed attempt
/// itself consumed (a timeout costs its full deadline; an immediate
/// exec error costs nothing), and `budget` bounds the call's total
/// modeled time: a retry that would push `spent` past the budget is not
/// attempted.
pub fn retry_with_backoff<T, E>(
    policy: &BackoffPolicy,
    budget: Option<SimDuration>,
    mut cost: impl FnMut(&E) -> SimDuration,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> RetryOutcome<T, E> {
    debug_assert!(policy.validate().is_ok());
    let mut spent = SimDuration::ZERO;
    let mut attempt = 1u32;
    loop {
        match op(attempt) {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts: attempt,
                    spent,
                }
            }
            Err(e) => {
                spent += cost(&e);
                let delay = policy.delay_before_retry(attempt);
                let out_of_attempts = attempt >= policy.max_attempts;
                let out_of_budget = budget.is_some_and(|b| spent + delay > b);
                if out_of_attempts || out_of_budget {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt,
                        spent,
                    };
                }
                spent += delay;
                attempt += 1;
            }
        }
    }
}

/// Counters for one resilient I/O wrapper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical calls made through the wrapper.
    pub calls: u64,
    /// Extra attempts beyond the first, summed over all calls.
    pub retries: u64,
    /// Calls that failed even after retrying.
    pub gave_up: u64,
    /// Individual attempts that timed out.
    pub timeouts: u64,
}

/// Wraps a [`FallibleObserver`] with retry-with-backoff and a per-cycle
/// time budget.
///
/// Every timed-out attempt is charged `per_call` (the poll's own
/// deadline) against `budget`; when the budget or the policy's attempts
/// run out, [`ResilientObserver::observe`] returns the error and the
/// caller must degrade (freeze updates, let TTL expiry run) rather than
/// reuse stale rows.
#[derive(Debug)]
pub struct ResilientObserver<O> {
    inner: O,
    policy: BackoffPolicy,
    per_call: SimDuration,
    budget: SimDuration,
    stats: IoStats,
    counters: Option<IoCounters>,
}

impl<O: FallibleObserver> ResilientObserver<O> {
    /// Wraps `inner`. `per_call` is the modeled cost of one timed-out
    /// poll; `budget` bounds one logical observation including backoff
    /// (typically the agent's update interval).
    pub fn new(
        inner: O,
        policy: BackoffPolicy,
        per_call: SimDuration,
        budget: SimDuration,
    ) -> Self {
        assert!(policy.validate().is_ok(), "invalid backoff policy");
        ResilientObserver {
            inner,
            policy,
            per_call,
            budget,
            stats: IoStats::default(),
            counters: None,
        }
    }

    /// Mirrors this wrapper's [`IoStats`] increments into shared
    /// telemetry counters (see [`crate::telemetry`]).
    pub fn set_counters(&mut self, counters: IoCounters) {
        self.counters = Some(counters);
    }

    /// One logical observation: up to `max_attempts` polls.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's [`ObserveError`] when every retry
    /// failed or the budget ran out.
    pub fn observe(&mut self) -> Result<Vec<CwndObservation>, ObserveError> {
        self.stats.calls += 1;
        let inner = &mut self.inner;
        let per_call = self.per_call;
        let timeouts = &mut self.stats.timeouts;
        let timeout_counter = self.counters.as_ref().map(|c| c.timeouts.clone());
        let outcome = retry_with_backoff(
            &self.policy,
            Some(self.budget),
            |e: &ObserveError| {
                if *e == ObserveError::Timeout {
                    *timeouts += 1;
                    if let Some(c) = &timeout_counter {
                        c.inc();
                    }
                    per_call
                } else {
                    SimDuration::ZERO
                }
            },
            |_attempt| inner.try_observe(),
        );
        self.stats.retries += u64::from(outcome.attempts - 1);
        if outcome.result.is_err() {
            self.stats.gave_up += 1;
        }
        if let Some(c) = &self.counters {
            c.calls.inc();
            c.retries.add(u64::from(outcome.attempts - 1));
            if outcome.result.is_err() {
                c.gave_up.inc();
            }
        }
        outcome.result
    }

    /// Counters so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

/// Wraps a [`RouteController`] with per-call retry-with-backoff: a
/// transiently failing `ip route` (netlink busy, route churn) is retried
/// per the policy before the error is surfaced to the agent.
#[derive(Debug)]
pub struct ResilientController<C> {
    inner: C,
    policy: BackoffPolicy,
    stats: IoStats,
    counters: Option<IoCounters>,
}

impl<C: RouteController> ResilientController<C> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: C, policy: BackoffPolicy) -> Self {
        assert!(policy.validate().is_ok(), "invalid backoff policy");
        ResilientController {
            inner,
            policy,
            stats: IoStats::default(),
            counters: None,
        }
    }

    /// Mirrors this wrapper's [`IoStats`] increments into shared
    /// telemetry counters (see [`crate::telemetry`]).
    pub fn set_counters(&mut self, counters: IoCounters) {
        self.counters = Some(counters);
    }

    /// Counters so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn retried(
        &mut self,
        mut op: impl FnMut(&mut C) -> Result<(), ControlError>,
    ) -> Result<(), ControlError> {
        self.stats.calls += 1;
        let inner = &mut self.inner;
        let outcome = retry_with_backoff(
            &self.policy,
            None,
            |_e: &ControlError| SimDuration::ZERO,
            |_attempt| op(inner),
        );
        self.stats.retries += u64::from(outcome.attempts - 1);
        if outcome.result.is_err() {
            self.stats.gave_up += 1;
        }
        if let Some(c) = &self.counters {
            c.calls.inc();
            c.retries.add(u64::from(outcome.attempts - 1));
            if outcome.result.is_err() {
                c.gave_up.inc();
            }
        }
        outcome.result
    }
}

impl<C: RouteController> RouteController for ResilientController<C> {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        self.retried(|c| c.set_initcwnd(key, window))
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        self.retried(|c| c.clear_initcwnd(key))
    }
}

/// The real-deployment observer: polls by running `ss -i` through a
/// [`CommandRunner`] and parses the output *lossily* — rows that
/// survived a truncation are still used, and a fully unusable poll is an
/// error for the resilience layer above to retry.
#[derive(Debug)]
pub struct SsExecObserver<R> {
    runner: R,
    salvaged_defects: u64,
}

impl<R: CommandRunner> SsExecObserver<R> {
    /// Wraps a command runner.
    pub fn new(runner: R) -> Self {
        SsExecObserver {
            runner,
            salvaged_defects: 0,
        }
    }

    /// Parse defects skipped over by lossy parsing, lifetime total.
    pub fn salvaged_defects(&self) -> u64 {
        self.salvaged_defects
    }

    /// The wrapped runner.
    pub fn runner(&self) -> &R {
        &self.runner
    }
}

impl<R: CommandRunner> FallibleObserver for SsExecObserver<R> {
    fn try_observe(&mut self) -> Result<Vec<CwndObservation>, ObserveError> {
        let stdout = self.runner.run(&["ss", "-t", "-i"]).map_err(|e| match e {
            ExecError::Timeout { .. } => ObserveError::Timeout,
            other => ObserveError::Exec(other.to_string()),
        })?;
        let (table, errors) = SockTable::parse_lossy(&stdout);
        if table.is_empty() && !errors.is_empty() {
            // Nothing salvageable: treat as a failed poll, not "no
            // connections" (which would wrongly age every entry).
            return Err(ObserveError::Parse(errors[0].to_string()));
        }
        self.salvaged_defects += errors.len() as u64;
        Ok(observations_from_sock_table(&table))
    }
}

/// The real-deployment controller: issues each decision as the exact
/// `ip route` command line of the paper's Fig. 8 through a
/// [`CommandRunner`].
#[derive(Debug)]
pub struct IpExecController<R> {
    runner: R,
}

impl<R: CommandRunner> IpExecController<R> {
    /// Wraps a command runner.
    pub fn new(runner: R) -> Self {
        IpExecController { runner }
    }

    /// The wrapped runner.
    pub fn runner(&self) -> &R {
        &self.runner
    }

    fn run_cmd(&mut self, line: String) -> Result<(), ControlError> {
        let argv: Vec<&str> = line.split_whitespace().collect();
        self.runner
            .run(&argv)
            .map(|_| ())
            .map_err(|e| ControlError::new(e.to_string()))
    }
}

impl<R: CommandRunner> RouteController for IpExecController<R> {
    fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
        self.run_cmd(riptide_linuxnet::ip_cmd::IpRouteCmd::set_initcwnd(key, window).to_string())
    }

    fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
        self.run_cmd(riptide_linuxnet::ip_cmd::IpRouteCmd::del(key).to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::FnFallibleObserver;
    use riptide_linuxnet::exec::ScriptedRunner;
    use riptide_linuxnet::route::RouteTable;
    use riptide_linuxnet::ss::{SockEntry, SockState};
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn key(n: u8) -> Ipv4Prefix {
        Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, n))
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = BackoffPolicy::agent_default();
        assert_eq!(p.delay_before_retry(1), SimDuration::from_millis(50));
        assert_eq!(p.delay_before_retry(2), SimDuration::from_millis(100));
        assert_eq!(p.delay_before_retry(3), SimDuration::from_millis(200));
        assert_eq!(p.delay_before_retry(10), SimDuration::from_secs(1), "cap");
    }

    #[test]
    fn backoff_policy_validation() {
        let mut p = BackoffPolicy::agent_default();
        p.max_attempts = 0;
        assert!(p.validate().is_err());
        p = BackoffPolicy::agent_default();
        p.factor = 0.5;
        assert!(p.validate().is_err());
        assert!(BackoffPolicy::none().validate().is_ok());
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut failures_left = 2;
        let outcome = retry_with_backoff(
            &BackoffPolicy::agent_default(),
            None,
            |_: &&str| SimDuration::ZERO,
            |attempt| {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(outcome.result, Ok(3));
        assert_eq!(outcome.attempts, 3);
        // Backoffs before the 2nd and 3rd attempts: 50 + 100 ms.
        assert_eq!(outcome.spent, SimDuration::from_millis(150));
    }

    #[test]
    fn retry_stops_at_max_attempts() {
        let mut calls = 0;
        let outcome = retry_with_backoff(
            &BackoffPolicy::agent_default(),
            None,
            |_: &&str| SimDuration::ZERO,
            |_| -> Result<(), &str> {
                calls += 1;
                Err("down")
            },
        );
        assert_eq!(outcome.result, Err("down"));
        assert_eq!(outcome.attempts, 4);
        assert_eq!(calls, 4);
    }

    #[test]
    fn retry_respects_the_time_budget() {
        // Each failure costs 600 ms; after two failures 1.2 s is spent,
        // past the 1 s budget, so the third attempt is never made.
        let mut calls = 0;
        let outcome = retry_with_backoff(
            &BackoffPolicy::agent_default(),
            Some(SimDuration::from_secs(1)),
            |_: &&str| SimDuration::from_millis(600),
            |_| -> Result<(), &str> {
                calls += 1;
                Err("slow")
            },
        );
        assert_eq!(calls, 2, "third attempt would blow the budget");
        assert!(outcome.result.is_err());
        // The overshoot is bounded by the in-flight attempt's own cost.
        assert_eq!(
            outcome.spent,
            SimDuration::from_millis(600 + 50 + 600),
            "two attempt costs plus one backoff delay"
        );
    }

    #[test]
    fn single_attempt_policy_never_retries() {
        let outcome = retry_with_backoff(
            &BackoffPolicy::none(),
            None,
            |_: &&str| SimDuration::ZERO,
            |_| -> Result<(), &str> { Err("no") },
        );
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.spent, SimDuration::ZERO);
    }

    #[test]
    fn resilient_observer_retries_then_succeeds() {
        let mut polls = 0;
        let inner = FnFallibleObserver(|| {
            polls += 1;
            if polls < 3 {
                Err(ObserveError::Timeout)
            } else {
                Ok(vec![CwndObservation {
                    dst: Ipv4Addr::new(10, 0, 1, 1),
                    cwnd: 42,
                    bytes_acked: 0,
                    retrans: 0,
                    ecn_marks: 0,
                }])
            }
        });
        let mut obs = ResilientObserver::new(
            inner,
            BackoffPolicy::agent_default(),
            SimDuration::from_millis(100),
            SimDuration::from_secs(1),
        );
        let rows = obs.observe().unwrap();
        assert_eq!(rows[0].cwnd, 42);
        let s = obs.stats();
        assert_eq!((s.calls, s.retries, s.timeouts, s.gave_up), (1, 2, 2, 0));
    }

    #[test]
    fn resilient_observer_gives_up_within_budget() {
        let inner = FnFallibleObserver(|| Err(ObserveError::Timeout));
        // 500 ms per timed-out poll, 1 s budget: the second retry (1 s
        // spent + 100 ms backoff) must not be attempted.
        let mut obs = ResilientObserver::new(
            inner,
            BackoffPolicy::agent_default(),
            SimDuration::from_millis(500),
            SimDuration::from_secs(1),
        );
        assert_eq!(obs.observe(), Err(ObserveError::Timeout));
        let s = obs.stats();
        assert_eq!(s.gave_up, 1);
        assert_eq!(s.timeouts, 2, "two polls fit the budget");
    }

    #[test]
    fn resilient_controller_retries_transient_install_failures() {
        struct Flaky {
            table: RouteTable,
            failures_left: u32,
        }
        impl RouteController for Flaky {
            fn set_initcwnd(&mut self, key: Ipv4Prefix, window: u32) -> Result<(), ControlError> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    return Err(ControlError::new("netlink busy"));
                }
                self.table.set_initcwnd(key, window)
            }
            fn clear_initcwnd(&mut self, key: Ipv4Prefix) -> Result<(), ControlError> {
                self.table.clear_initcwnd(key)
            }
        }
        let mut ctl = ResilientController::new(
            Flaky {
                table: RouteTable::new(),
                failures_left: 2,
            },
            BackoffPolicy::agent_default(),
        );
        ctl.set_initcwnd(key(1), 80).unwrap();
        assert_eq!(
            ctl.inner().table.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(80)
        );
        assert_eq!(ctl.stats().retries, 2);

        // A permanent failure still surfaces after max_attempts.
        let mut dead = ResilientController::new(
            Flaky {
                table: RouteTable::new(),
                failures_left: u32::MAX,
            },
            BackoffPolicy::agent_default(),
        );
        assert!(dead.set_initcwnd(key(2), 50).is_err());
        assert_eq!(dead.stats().gave_up, 1);
    }

    #[test]
    fn io_counters_mirror_io_stats() {
        use crate::telemetry::{IoCounters, MetricsRegistry};

        let registry = MetricsRegistry::new();
        let inner = FnFallibleObserver(|| Err(ObserveError::Timeout));
        let mut obs = ResilientObserver::new(
            inner,
            BackoffPolicy::agent_default(),
            SimDuration::from_millis(100),
            SimDuration::from_secs(1),
        );
        obs.set_counters(IoCounters::attach(&registry));
        let _ = obs.observe();
        let s = obs.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.value("riptide_io_calls_total"), Some(s.calls));
        assert_eq!(snap.value("riptide_io_retries_total"), Some(s.retries));
        assert_eq!(snap.value("riptide_io_timeouts_total"), Some(s.timeouts));
        assert_eq!(snap.value("riptide_io_gave_up_total"), Some(s.gave_up));
        assert!(s.gave_up == 1 && s.timeouts > 0);

        // The controller shares the same counters on the same registry.
        struct Refusing;
        impl RouteController for Refusing {
            fn set_initcwnd(&mut self, _: Ipv4Prefix, _: u32) -> Result<(), ControlError> {
                Err(ControlError::new("refused"))
            }
            fn clear_initcwnd(&mut self, _: Ipv4Prefix) -> Result<(), ControlError> {
                Err(ControlError::new("refused"))
            }
        }
        let mut ctl = ResilientController::new(Refusing, BackoffPolicy::none());
        ctl.set_counters(IoCounters::attach(&registry));
        let _ = ctl.set_initcwnd(key(1), 80);
        let snap = registry.snapshot();
        assert_eq!(snap.value("riptide_io_calls_total"), Some(s.calls + 1));
        assert_eq!(snap.value("riptide_io_gave_up_total"), Some(s.gave_up + 1));
    }

    #[test]
    fn ss_exec_observer_salvages_partial_output() {
        let table: SockTable = vec![SockEntry {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 1, 1),
            state: SockState::Established,
            cc: "cubic".into(),
            cwnd: 64,
            ssthresh: None,
            rtt_ms: None,
            bytes_acked: 10,
            retrans: 0,
            lost: 0,
        }]
        .into_iter()
        .collect();
        let mut truncated = table.render();
        truncated.push_str("ESTAB 10.0.0.1 10.0.9.9\n"); // cut mid-socket

        let mut runner = ScriptedRunner::new();
        runner.push_ok(truncated).push_err(ExecError::Timeout {
            limit: Duration::from_millis(200),
        });
        let mut obs = SsExecObserver::new(runner);

        let rows = obs.try_observe().unwrap();
        assert_eq!(rows.len(), 1, "complete row salvaged");
        assert_eq!(obs.salvaged_defects(), 1);
        assert_eq!(obs.try_observe(), Err(ObserveError::Timeout));
        assert_eq!(obs.runner().calls()[0][0], "ss");
    }

    #[test]
    fn ss_exec_observer_rejects_fully_unusable_output() {
        let mut runner = ScriptedRunner::new();
        runner.push_ok("complete garbage\n");
        let mut obs = SsExecObserver::new(runner);
        assert!(matches!(obs.try_observe(), Err(ObserveError::Parse(_))));
    }

    #[test]
    fn ip_exec_controller_issues_fig8_command_lines() {
        let mut runner = ScriptedRunner::new();
        runner.push_ok("").push_err(ExecError::Failed {
            code: 2,
            stderr: "RTNETLINK answers: Operation not permitted".into(),
        });
        let mut ctl = IpExecController::new(runner);
        ctl.set_initcwnd(key(7), 80).unwrap();
        assert!(ctl.set_initcwnd(key(8), 60).is_err());
        assert_eq!(
            ctl.runner().calls()[0],
            vec!["ip", "route", "replace", "10.0.1.7", "proto", "static", "initcwnd", "80"]
        );
    }
}
