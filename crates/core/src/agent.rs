//! The Riptide agent: Algorithm 1 of the paper.
//!
//! Every `i_u` seconds the agent:
//!
//! 1. polls the current congestion windows of all open connections
//!    (via a [`WindowObserver`]);
//! 2. groups them by destination at the configured granularity;
//! 3. combines each group to one value (average in the deployment);
//! 4. blends it with the destination's history (EWMA with weight `α`);
//! 5. clamps into `[c_min, c_max]` and installs the result as a
//!    per-destination route `initcwnd` (via a [`RouteController`]);
//! 6. expires entries unseen for longer than `t`, withdrawing their
//!    routes so new connections fall back to the kernel default.
//!
//! The agent is deliberately a pure state machine over those two traits:
//! it can be driven from a simulation clock or a real one, and its
//! actuator can be an in-process table or a shell running `ip route`.

use std::collections::BTreeMap;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::SimTime;

use crate::config::RiptideConfig;
use crate::control::{ControlError, RouteController};
use crate::observe::{CwndObservation, WindowObserver};
use crate::table::FinalTable;

/// What one agent tick did, for logging and tests.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Established connections observed this tick.
    pub observed_connections: usize,
    /// Destination groups formed.
    pub groups: usize,
    /// Routes installed or updated: `(key, clamped window)`.
    pub updates: Vec<(Ipv4Prefix, u32)>,
    /// Destinations whose entries (and routes) expired this tick.
    pub expired: Vec<Ipv4Prefix>,
    /// Route-control failures (the agent continues past them, as a
    /// production tool must).
    pub errors: Vec<ControlError>,
    /// Whether this was a degraded tick ([`RiptideAgent::tick_degraded`]):
    /// the poll failed, so no advisory state was updated.
    pub degraded: bool,
}

/// Cumulative counters over the agent's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Observations consumed.
    pub observations: u64,
    /// Route installs/updates issued.
    pub route_updates: u64,
    /// Route withdrawals issued by TTL expiry.
    pub route_expirations: u64,
    /// Control errors encountered.
    pub errors: u64,
    /// Degraded ticks: cycles whose observation poll failed outright, so
    /// only TTL expiry ran.
    pub degraded_ticks: u64,
}

impl AgentStats {
    /// Renders the counters in Prometheus text exposition format, for a
    /// production deployment's metrics endpoint.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in [
            (
                "riptide_ticks_total",
                "Agent update cycles executed",
                self.ticks,
            ),
            (
                "riptide_observations_total",
                "Connection window observations consumed",
                self.observations,
            ),
            (
                "riptide_route_updates_total",
                "Route installs or updates issued",
                self.route_updates,
            ),
            (
                "riptide_route_expirations_total",
                "Routes withdrawn by TTL expiry",
                self.route_expirations,
            ),
            (
                "riptide_control_errors_total",
                "Failed route-control actions",
                self.errors,
            ),
            (
                "riptide_degraded_ticks_total",
                "Cycles that ran expiry-only because the poll failed",
                self.degraded_ticks,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        out
    }
}

/// The Riptide agent.
///
/// # Examples
///
/// ```
/// use riptide::prelude::*;
/// use riptide_linuxnet::route::RouteTable;
/// use riptide_simnet::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut agent = RiptideAgent::new(RiptideConfig::deployment())?;
/// let mut routes = RouteTable::new();
///
/// // One poll observed two connections to the same host, windows 60/100.
/// let mut observer = FnObserver(|| {
///     vec![
///         CwndObservation { dst: Ipv4Addr::new(10, 0, 1, 1), cwnd: 60, bytes_acked: 1 << 20 },
///         CwndObservation { dst: Ipv4Addr::new(10, 0, 1, 1), cwnd: 100, bytes_acked: 1 << 20 },
///     ]
/// });
/// let report = agent.tick(SimTime::from_secs(1), &mut observer, &mut routes);
/// assert_eq!(report.updates, vec![("10.0.1.1".parse()?, 80)]);
/// assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RiptideAgent {
    config: RiptideConfig,
    table: FinalTable,
    stats: AgentStats,
    advisory: crate::advisory::Advisory,
}

impl RiptideAgent {
    /// Creates an agent with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: RiptideConfig) -> Result<Self, crate::config::ConfigError> {
        config.validate()?;
        Ok(RiptideAgent {
            config,
            table: FinalTable::new(),
            stats: AgentStats::default(),
            advisory: crate::advisory::Advisory::Normal,
        })
    }

    /// Sets the control-plane advisory shaping future installs (§V).
    ///
    /// # Errors
    ///
    /// Returns the advisory's validation error, if any.
    pub fn set_advisory(
        &mut self,
        advisory: crate::advisory::Advisory,
    ) -> Result<(), crate::config::ConfigError> {
        advisory
            .validate()
            .map_err(crate::config::ConfigError::new)?;
        self.advisory = advisory;
        Ok(())
    }

    /// The currently active advisory.
    pub fn advisory(&self) -> crate::advisory::Advisory {
        self.advisory
    }

    /// The agent's configuration.
    pub fn config(&self) -> &RiptideConfig {
        &self.config
    }

    /// The live final-values table.
    pub fn table(&self) -> &FinalTable {
        &self.table
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// The window currently learned for a destination address, if any.
    pub fn learned_window(&self, dst: std::net::Ipv4Addr) -> Option<u32> {
        let key = self.config.granularity.key(dst);
        self.table.window(&key)
    }

    /// Runs one cycle of Algorithm 1 at simulated instant `now`.
    ///
    /// Route installs are issued only when the clamped window for a
    /// destination actually changed — repeating an identical `ip route
    /// replace` every second would be pure overhead (the stored TTL is
    /// refreshed regardless, as the paper requires).
    pub fn tick<O, C>(&mut self, now: SimTime, observer: &mut O, controller: &mut C) -> TickReport
    where
        O: WindowObserver + ?Sized,
        C: RouteController + ?Sized,
    {
        let mut report = TickReport::default();
        self.stats.ticks += 1;

        // 1. observed table ← current windows of all connections.
        let observations = observer.observe();
        report.observed_connections = observations.len();
        self.stats.observations += observations.len() as u64;

        // 2. group by destination (BTreeMap: deterministic order).
        let mut groups: BTreeMap<Ipv4Prefix, Vec<CwndObservation>> = BTreeMap::new();
        for obs in observations {
            groups
                .entry(self.config.granularity.key(obs.dst))
                .or_default()
                .push(obs);
        }
        report.groups = groups.len();

        // 3–5. combine, blend with history, shape (trend + advisory),
        // clamp, install.
        for (key, group) in groups {
            let Some(fresh) = self.config.combine.combine(&group) else {
                continue;
            };
            let previous = self.table.window(&key);
            let previous_fresh = self.table.last_fresh(&key);
            let blended = self.table.blend(key, fresh, &self.config.history, now);
            let shaped = match &self.config.trend {
                Some(trend) => trend.shape(previous_fresh, fresh, blended),
                None => blended,
            };
            let Some(shaped) = self.advisory.shape(shaped) else {
                // Suspended: keep learning but install nothing.
                continue;
            };
            let window = self.config.clamp(shaped);
            self.table.set_window(&key, window);
            if previous != Some(window) {
                match controller.set_initcwnd(key, window) {
                    Ok(()) => {
                        self.stats.route_updates += 1;
                        report.updates.push((key, window));
                    }
                    Err(e) => {
                        self.stats.errors += 1;
                        report.errors.push(e);
                    }
                }
            }
        }

        // 6. expire stale destinations, restoring the kernel default.
        self.expire_into(now, controller, &mut report);

        report
    }

    /// Runs one *degraded* cycle: the observation poll failed (timed out,
    /// subprocess died, unusable output), so the agent must not guess.
    ///
    /// Degraded semantics, per the no-harm requirement of §IV-D:
    ///
    /// * **Freeze** — no advisory/window state is updated; the agent
    ///   never extrapolates windows from polls it did not get.
    /// * **Decay** — TTL expiry still runs, so if polls keep failing,
    ///   every learned route is withdrawn within `t` seconds and new
    ///   connections fall back to the kernel default (`initcwnd=10`).
    ///
    /// A run of failed polls therefore converges to exactly the state of
    /// a host that never ran Riptide.
    pub fn tick_degraded<C>(&mut self, now: SimTime, controller: &mut C) -> TickReport
    where
        C: RouteController + ?Sized,
    {
        let mut report = TickReport {
            degraded: true,
            ..TickReport::default()
        };
        self.stats.ticks += 1;
        self.stats.degraded_ticks += 1;
        self.expire_into(now, controller, &mut report);
        report
    }

    fn expire_into<C>(&mut self, now: SimTime, controller: &mut C, report: &mut TickReport)
    where
        C: RouteController + ?Sized,
    {
        for key in self.table.expire(now, self.config.ttl) {
            match controller.clear_initcwnd(key) {
                Ok(()) => {
                    self.stats.route_expirations += 1;
                    report.expired.push(key);
                }
                Err(e) => {
                    self.stats.errors += 1;
                    report.errors.push(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::CombineStrategy;
    use crate::granularity::Granularity;
    use crate::history::HistoryStrategy;
    use crate::observe::FnObserver;
    use riptide_linuxnet::route::RouteTable;
    use std::net::Ipv4Addr;

    fn obs(dst: [u8; 4], cwnd: u32) -> CwndObservation {
        CwndObservation {
            dst: Ipv4Addr::from(dst),
            cwnd,
            bytes_acked: 1_000_000,
        }
    }

    fn agent(config: RiptideConfig) -> (RiptideAgent, RouteTable) {
        (RiptideAgent::new(config).unwrap(), RouteTable::new())
    }

    fn no_history() -> RiptideConfig {
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .unwrap()
    }

    #[test]
    fn fig7_average_of_observed_windows() {
        // The paper's Fig. 7: observed windows average 80 → initcwnd 80.
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 60),
                obs([10, 0, 1, 1], 80),
                obs([10, 0, 1, 1], 100),
            ]
        });
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.observed_connections, 3);
        assert_eq!(r.groups, 1);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
    }

    #[test]
    fn clamping_applies_both_bounds() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 500), obs([10, 0, 2, 1], 2)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(100),
            "c_max caps"
        );
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 2, 1)),
            Some(10),
            "c_min floors"
        );
    }

    #[test]
    fn ewma_damps_across_ticks() {
        let cfg = RiptideConfig::builder().alpha(0.7).build().unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut o1 = FnObserver(|| vec![obs([10, 0, 1, 1], 40)]);
        a.tick(SimTime::from_secs(1), &mut o1, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(40));
        // Windows spike to 100; EWMA moves only 30% of the way: 58.
        let mut o2 = FnObserver(|| vec![obs([10, 0, 1, 1], 100)]);
        a.tick(SimTime::from_secs(2), &mut o2, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(58));
    }

    #[test]
    fn ttl_expiry_withdraws_route() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)).is_some());
        // No connections for > 90 s: route withdrawn, default restored.
        let mut silent = FnObserver(Vec::new);
        let r = a.tick(SimTime::from_secs(95), &mut silent, &mut routes);
        assert_eq!(r.expired.len(), 1);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), None);
        assert!(a.table().is_empty());
    }

    #[test]
    fn continued_observation_refreshes_ttl() {
        let (mut a, mut routes) = agent(no_history());
        for t in (0..200).step_by(10) {
            let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
            let r = a.tick(SimTime::from_secs(t), &mut o, &mut routes);
            assert!(r.expired.is_empty(), "t={t}: live traffic never expires");
        }
    }

    #[test]
    fn unchanged_window_is_not_reinstalled() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        let r1 = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r1.updates.len(), 1);
        let r2 = a.tick(SimTime::from_secs(2), &mut o, &mut routes);
        assert!(r2.updates.is_empty(), "same value, no route churn");
        assert_eq!(a.stats().route_updates, 1);
    }

    #[test]
    fn prefix_granularity_installs_one_route_per_pop() {
        let cfg = RiptideConfig::builder()
            .granularity(Granularity::Prefix(24))
            .history(HistoryStrategy::None)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 40),
                obs([10, 0, 1, 2], 60),
                obs([10, 0, 1, 3], 80),
            ]
        });
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.groups, 1, "three hosts, one /24 group");
        assert_eq!(routes.len(), 1);
        // Any host in the PoP inherits the grouped window.
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 200)), Some(60));
    }

    #[test]
    fn max_strategy_is_more_aggressive_than_average() {
        let base = FnObserver(|| vec![obs([10, 0, 1, 1], 20), obs([10, 0, 1, 1], 90)]);
        let mut o = base;
        let cfg = RiptideConfig::builder()
            .combine(CombineStrategy::Max)
            .history(HistoryStrategy::None)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(90));
    }

    #[test]
    fn multiple_destinations_update_independently() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 30),
                obs([10, 0, 2, 1], 70),
                obs([10, 0, 3, 1], 110),
            ]
        });
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.groups, 3);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(30));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 2, 1)), Some(70));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 3, 1)), Some(100));
    }

    #[test]
    fn learned_window_respects_granularity() {
        let cfg = RiptideConfig::builder()
            .granularity(Granularity::Prefix(24))
            .history(HistoryStrategy::None)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 64)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(a.learned_window(Ipv4Addr::new(10, 0, 1, 99)), Some(64));
        assert_eq!(a.learned_window(Ipv4Addr::new(10, 0, 2, 1)), None);
    }

    #[test]
    fn empty_observation_is_harmless() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(Vec::new);
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.groups, 0);
        assert!(r.updates.is_empty() && r.expired.is_empty() && r.errors.is_empty());
        assert!(routes.is_empty());
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        let text = a.stats().render_prometheus();
        assert!(text.contains("riptide_ticks_total 1"));
        assert!(text.contains("riptide_route_updates_total 1"));
        assert!(text.contains("# TYPE riptide_observations_total counter"));
        // Every metric has HELP, TYPE and a value line.
        assert_eq!(text.lines().count(), 18);
    }

    #[test]
    fn degraded_tick_freezes_learning_but_still_expires() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(50));

        // Poll failures shortly after: nothing changes, nothing expires.
        let r = a.tick_degraded(SimTime::from_secs(2), &mut routes);
        assert!(r.degraded && r.updates.is_empty() && r.expired.is_empty());
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(50));
        assert_eq!(a.table().len(), 1, "learned state frozen, not dropped");

        // Poll failures past the TTL: the route is withdrawn and the
        // destination falls back to the kernel default.
        let r = a.tick_degraded(SimTime::from_secs(95), &mut routes);
        assert_eq!(r.expired.len(), 1);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), None);
        assert_eq!(a.stats().degraded_ticks, 2);
        assert_eq!(a.stats().ticks, 3);
    }

    #[test]
    fn conservative_advisory_scales_installs() {
        let (mut a, mut routes) = agent(no_history());
        a.set_advisory(crate::advisory::Advisory::Conservative { factor: 0.5 })
            .unwrap();
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 80)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(40),
            "half of the learned 80"
        );
    }

    #[test]
    fn suspend_advisory_stops_installs_but_keeps_learning() {
        let (mut a, mut routes) = agent(no_history());
        a.set_advisory(crate::advisory::Advisory::Suspend).unwrap();
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 80)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert!(routes.is_empty(), "no installs while suspended");
        assert_eq!(a.table().len(), 1, "learning continues");
        // Resume: the learned value lands on the next tick.
        a.set_advisory(crate::advisory::Advisory::Normal).unwrap();
        a.tick(SimTime::from_secs(2), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
    }

    #[test]
    fn invalid_advisory_rejected() {
        let (mut a, _) = agent(no_history());
        assert!(a
            .set_advisory(crate::advisory::Advisory::Conservative { factor: 2.0 })
            .is_err());
        assert_eq!(a.advisory(), crate::advisory::Advisory::Normal);
    }

    #[test]
    fn trend_damping_beats_slow_ewma_on_collapse() {
        let cfg = RiptideConfig::builder()
            .alpha(0.9)
            .trend(crate::trend::TrendPolicy::default())
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut high = FnObserver(|| vec![obs([10, 0, 1, 1], 100)]);
        a.tick(SimTime::from_secs(1), &mut high, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(100));
        // Windows collapse to 20; EWMA alone would install 92, the trend
        // override caps at fresh/2 = 10.
        let mut low = FnObserver(|| vec![obs([10, 0, 1, 1], 20)]);
        a.tick(SimTime::from_secs(2), &mut low, &mut routes);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(10),
            "aggressive decrease beyond the blend"
        );
    }

    #[test]
    fn stats_accumulate() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        let mut silent = FnObserver(Vec::new);
        a.tick(SimTime::from_secs(100), &mut silent, &mut routes);
        let s = a.stats();
        assert_eq!(s.ticks, 2);
        assert_eq!(s.observations, 1);
        assert_eq!(s.route_updates, 1);
        assert_eq!(s.route_expirations, 1);
        assert_eq!(s.errors, 0);
    }
}
