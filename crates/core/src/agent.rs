//! The Riptide agent: Algorithm 1 of the paper.
//!
//! Every `i_u` seconds the agent:
//!
//! 1. polls the current congestion windows of all open connections
//!    (via a [`WindowObserver`]);
//! 2. groups them by destination at the configured granularity;
//! 3. combines each group to one value (average in the deployment);
//! 4. blends it with the destination's history (EWMA with weight `α`);
//! 5. clamps into `[c_min, c_max]` and installs the result as a
//!    per-destination route `initcwnd` (via a [`RouteController`]);
//! 6. expires entries unseen for longer than `t`, withdrawing their
//!    routes so new connections fall back to the kernel default.
//!
//! The agent is deliberately a pure state machine over those two traits:
//! it can be driven from a simulation clock or a real one, and its
//! actuator can be an in-process table or a shell running `ip route`.

use std::collections::BTreeMap;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_simnet::time::SimTime;

use crate::config::RiptideConfig;
use crate::control::{ControlError, RouteController};
use crate::observe::WindowObserver;
use crate::policy::{Policy, PolicyInput};
use crate::table::FinalTable;
use crate::telemetry::{AgentTelemetry, DecisionAction, DecisionCause};

/// What one agent tick did, for logging and tests.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Established connections observed this tick.
    pub observed_connections: usize,
    /// Destination groups formed.
    pub groups: usize,
    /// Routes installed or updated: `(key, clamped window)`.
    pub updates: Vec<(Ipv4Prefix, u32)>,
    /// Destinations whose entries (and routes) expired this tick.
    pub expired: Vec<Ipv4Prefix>,
    /// Destinations evicted by the table's capacity bound this tick.
    pub evicted: Vec<Ipv4Prefix>,
    /// Covering routes installed (or retuned) by the aggregation pass:
    /// `(covering prefix, aggregate window)`.
    pub merged: Vec<(Ipv4Prefix, u32)>,
    /// Covering routes dissolved by the aggregation pass; their members
    /// were reinstalled individually in the same tick.
    pub disaggregated: Vec<Ipv4Prefix>,
    /// Destinations the loss guard tripped this tick (demoted to the
    /// probe window).
    pub guard_trips: Vec<Ipv4Prefix>,
    /// Route-control failures (the agent continues past them, as a
    /// production tool must).
    pub errors: Vec<ControlError>,
    /// Whether this was a degraded tick ([`RiptideAgent::tick_degraded`]):
    /// the poll failed, so no advisory state was updated.
    pub degraded: bool,
}

/// Cumulative counters over the agent's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Observations consumed.
    pub observations: u64,
    /// Route installs/updates issued.
    pub route_updates: u64,
    /// Route withdrawals issued by TTL expiry.
    pub route_expirations: u64,
    /// Control errors encountered.
    pub errors: u64,
    /// Degraded ticks: cycles whose observation poll failed outright, so
    /// only TTL expiry ran.
    pub degraded_ticks: u64,
    /// Loss-guard breaker trips (destinations demoted to the probe
    /// window because their post-install retransmit rate ran hot).
    pub guard_trips: u64,
    /// Destinations evicted by the learned table's capacity bound.
    pub table_evictions: u64,
    /// Drift repairs performed by reconciler audits (re-installs of
    /// externally deleted routes plus withdrawals of orphans).
    pub reconcile_repairs: u64,
    /// Sibling host routes coalesced into a covering aggregate route.
    pub aggregate_merges: u64,
    /// Aggregates dissolved back into individual member routes.
    pub aggregate_splits: u64,
    /// Routes reinstalled from a persisted state file at warm restart.
    pub restored_routes: u64,
    /// Entries accepted from gossip peers (newest-stamp conflict rule).
    pub sync_merges: u64,
}

impl AgentStats {
    /// Renders the counters in Prometheus text exposition format, for a
    /// production deployment's metrics endpoint.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in [
            (
                "riptide_ticks_total",
                "Agent update cycles executed",
                self.ticks,
            ),
            (
                "riptide_observations_total",
                "Connection window observations consumed",
                self.observations,
            ),
            (
                "riptide_route_updates_total",
                "Route installs or updates issued",
                self.route_updates,
            ),
            (
                "riptide_route_expirations_total",
                "Routes withdrawn by TTL expiry",
                self.route_expirations,
            ),
            (
                "riptide_control_errors_total",
                "Failed route-control actions",
                self.errors,
            ),
            (
                "riptide_degraded_ticks_total",
                "Cycles that ran expiry-only because the poll failed",
                self.degraded_ticks,
            ),
            (
                "riptide_guard_trips_total",
                "Loss-guard breaker trips (destinations demoted)",
                self.guard_trips,
            ),
            (
                "riptide_table_evictions_total",
                "Destinations evicted by the table capacity bound",
                self.table_evictions,
            ),
            (
                "riptide_reconcile_repairs_total",
                "Route-drift repairs performed by reconciler audits",
                self.reconcile_repairs,
            ),
            (
                "riptide_aggregate_merges_total",
                "Sibling host routes coalesced into covering aggregates",
                self.aggregate_merges,
            ),
            (
                "riptide_aggregate_splits_total",
                "Aggregates dissolved back into member routes",
                self.aggregate_splits,
            ),
            (
                "riptide_restored_routes_total",
                "Routes reinstalled from persisted state at warm restart",
                self.restored_routes,
            ),
            (
                "riptide_sync_merged_total",
                "Entries accepted from gossip peers",
                self.sync_merges,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        out
    }
}

/// The Riptide agent.
///
/// # Examples
///
/// ```
/// use riptide::prelude::*;
/// use riptide_linuxnet::route::RouteTable;
/// use riptide_simnet::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut agent = RiptideAgent::new(RiptideConfig::deployment())?;
/// let mut routes = RouteTable::new();
///
/// // One poll observed two connections to the same host, windows 60/100.
/// let mut observer = FnObserver(|| {
///     vec![
///         CwndObservation { dst: Ipv4Addr::new(10, 0, 1, 1), cwnd: 60, bytes_acked: 1 << 20, retrans: 0, ecn_marks: 0 },
///         CwndObservation { dst: Ipv4Addr::new(10, 0, 1, 1), cwnd: 100, bytes_acked: 1 << 20, retrans: 0, ecn_marks: 0 },
///     ]
/// });
/// let report = agent.tick(SimTime::from_secs(1), &mut observer, &mut routes);
/// assert_eq!(report.updates, vec![("10.0.1.1".parse()?, 80)]);
/// assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RiptideAgent {
    config: RiptideConfig,
    table: FinalTable,
    stats: AgentStats,
    advisory: crate::advisory::Advisory,
    /// Loss-aware circuit breaker, present when the config enables it.
    guard: Option<crate::guard::LossGuard>,
    /// Prefix aggregation pass, present when the config enables it.
    /// Learning stays at the configured granularity; this only changes
    /// what is *installed*: agreeing siblings share one covering route.
    aggregator: Option<crate::aggregate::Aggregator>,
    /// The agent's view of what it has installed in the kernel: key →
    /// last window issued through the controller. This is the expected
    /// state reconciler audits diff against, and the withdrawal list a
    /// graceful shutdown walks.
    installed: BTreeMap<Ipv4Prefix, u32>,
    /// Optional observability bundle; `None` means zero telemetry work.
    telemetry: Option<AgentTelemetry>,
    /// The most recent tick instant, used to stamp journal records for
    /// actions that happen outside a tick (reconcile, shutdown).
    last_now: SimTime,
}

impl RiptideAgent {
    /// Creates an agent with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: RiptideConfig) -> Result<Self, crate::config::ConfigError> {
        config.validate()?;
        let table = match config.table_capacity {
            Some(cap) => FinalTable::bounded(cap),
            None => FinalTable::new(),
        };
        let guard = config.guard.clone().map(crate::guard::LossGuard::new);
        let aggregator = config.aggregation.map(crate::aggregate::Aggregator::new);
        Ok(RiptideAgent {
            config,
            table,
            stats: AgentStats::default(),
            advisory: crate::advisory::Advisory::Normal,
            guard,
            aggregator,
            installed: BTreeMap::new(),
            telemetry: None,
            last_now: SimTime::ZERO,
        })
    }

    /// Attaches an observability bundle: from here on every tick updates
    /// its counters and gauges and every route decision is journaled.
    /// Agents without one (the default) skip all telemetry work.
    pub fn attach_telemetry(&mut self, telemetry: AgentTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The attached observability bundle, if any.
    pub fn telemetry(&self) -> Option<&AgentTelemetry> {
        self.telemetry.as_ref()
    }

    /// Sets the control-plane advisory shaping future installs (§V).
    ///
    /// # Errors
    ///
    /// Returns the advisory's validation error, if any.
    pub fn set_advisory(
        &mut self,
        advisory: crate::advisory::Advisory,
    ) -> Result<(), crate::config::ConfigError> {
        advisory
            .validate()
            .map_err(crate::config::ConfigError::new)?;
        self.advisory = advisory;
        Ok(())
    }

    /// The currently active advisory.
    pub fn advisory(&self) -> crate::advisory::Advisory {
        self.advisory
    }

    /// The agent's configuration.
    pub fn config(&self) -> &RiptideConfig {
        &self.config
    }

    /// The live final-values table.
    pub fn table(&self) -> &FinalTable {
        &self.table
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// The window currently learned for a destination address, if any.
    pub fn learned_window(&self, dst: std::net::Ipv4Addr) -> Option<u32> {
        let key = self.config.granularity.key(dst);
        self.table.window(&key)
    }

    /// The agent's view of what it has installed in the kernel: one
    /// `(key, window)` pair per route issued and not yet withdrawn.
    pub fn installed_view(&self) -> &BTreeMap<Ipv4Prefix, u32> {
        &self.installed
    }

    /// The loss guard, when the configuration enables one.
    pub fn guard(&self) -> Option<&crate::guard::LossGuard> {
        self.guard.as_ref()
    }

    /// The prefix aggregator, when the configuration enables one.
    pub fn aggregator(&self) -> Option<&crate::aggregate::Aggregator> {
        self.aggregator.as_ref()
    }

    /// Runs one cycle of Algorithm 1 at simulated instant `now`.
    ///
    /// Route installs are issued only when the clamped window for a
    /// destination actually changed — repeating an identical `ip route
    /// replace` every second would be pure overhead (the stored TTL is
    /// refreshed regardless, as the paper requires).
    pub fn tick<O, C>(&mut self, now: SimTime, observer: &mut O, controller: &mut C) -> TickReport
    where
        O: WindowObserver + ?Sized,
        C: RouteController + ?Sized,
    {
        let mut report = TickReport::default();
        self.stats.ticks += 1;
        self.last_now = now;

        // 1. observed table ← current windows of all connections.
        let observations = observer.observe();
        report.observed_connections = observations.len();
        self.stats.observations += observations.len() as u64;
        if let Some(t) = &self.telemetry {
            t.ticks.inc();
            t.observations.add(observations.len() as u64);
        }

        // 2. group by destination: a stable sort by key makes each run of
        // equal keys one group, visited in ascending key order — the same
        // groups, group order, and within-group order a BTreeMap of Vecs
        // would produce, without its per-destination allocations.
        let mut observations = observations;
        observations.sort_by_key(|obs| self.config.granularity.key(obs.dst));

        // 3–5. combine, blend with history, shape (trend + advisory),
        // clamp, guard, install.
        let mut start = 0;
        while start < observations.len() {
            let key = self.config.granularity.key(observations[start].dst);
            let mut end = start + 1;
            while end < observations.len()
                && self.config.granularity.key(observations[end].dst) == key
            {
                end += 1;
            }
            let group = &observations[start..end];
            start = end;
            report.groups += 1;
            let Some(fresh) = self.config.combine.combine(group) else {
                continue;
            };
            // The group's cumulative loss counters feed both the
            // loss-aware policies and (below) the guard.
            let retrans_total: u64 = group.iter().map(|o| o.retrans).sum();
            let ecn_total: u64 = group.iter().map(|o| o.ecn_marks).sum();
            let bytes_total: u64 = group.iter().map(|o| o.bytes_acked).sum();
            let previous_fresh = self.table.last_fresh(&key);
            let blended = self.table.observe(
                key,
                &PolicyInput {
                    fresh,
                    retrans: retrans_total,
                    ecn_marks: ecn_total,
                    bytes_acked: bytes_total,
                },
                &self.config.policy,
                now,
            );
            let (shaped, trend_damped) = match &self.config.trend {
                Some(trend) => {
                    let s =
                        trend.shape(previous_fresh, fresh, blended, self.config.cwnd_min as f64);
                    (s, s != blended)
                }
                None => (blended, false),
            };
            let Some(shaped) = self.advisory.shape(shaped) else {
                // Suspended: keep learning but install nothing.
                continue;
            };
            let window = self.config.clamp(shaped);
            let clamped = window as f64 != shaped.round();
            self.table.set_window(&key, window);

            // Guard: feed the group's cumulative loss counters and, when
            // the breaker is not Closed, demote the install to the probe
            // window — the kernel default, as if Riptide never touched
            // this destination.
            let mut effective = window;
            let mut suppressed_by = None;
            if let Some(guard) = &mut self.guard {
                let jump_started = self
                    .installed
                    .get(&key)
                    .is_some_and(|&w| w > guard.config().probe_window);
                let verdict = guard.update(key, retrans_total, bytes_total, jump_started, now);
                if verdict.tripped {
                    self.stats.guard_trips += 1;
                    report.guard_trips.push(key);
                    if let Some(t) = &self.telemetry {
                        t.guard_trips.inc();
                    }
                }
                if guard.suppressed(&key) {
                    effective = self.config.clamp(guard.config().probe_window as f64);
                    suppressed_by = Some(guard.state(&key));
                }
            }

            // A key covered by a live aggregate already rides its
            // covering route: learning (and the guard) keep running, but
            // no individual route is issued. Divergence dissolves the
            // aggregate in this tick's pass, after which the key installs
            // individually again.
            let covered = self
                .aggregator
                .as_ref()
                .and_then(|agg| agg.covering_of(&key))
                .is_some();

            // Install only when the issued window would actually change —
            // repeating an identical `ip route replace` is pure churn.
            if !covered && self.installed.get(&key).copied() != Some(effective) {
                match controller.set_initcwnd(key, effective) {
                    Ok(()) => {
                        self.stats.route_updates += 1;
                        report.updates.push((key, effective));
                        if let Some(t) = &self.telemetry {
                            t.route_updates.inc();
                            t.installed_window.observe(effective as u64);
                            match suppressed_by {
                                Some(state) => {
                                    t.suppressed_installs.inc();
                                    t.journal_decision(
                                        now,
                                        key,
                                        DecisionAction::Suppress { window: effective },
                                        DecisionCause::Guard { state },
                                    );
                                }
                                None => {
                                    if clamped {
                                        t.clamped_installs.inc();
                                    }
                                    t.journal_decision(
                                        now,
                                        key,
                                        DecisionAction::Install { window: effective },
                                        DecisionCause::Learned {
                                            fresh: fresh.round() as u32,
                                            clamped,
                                            trend_damped,
                                            policy: self.config.policy.name(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => {
                        self.stats.errors += 1;
                        report.errors.push(e);
                        if let Some(t) = &self.telemetry {
                            t.errors.inc();
                        }
                    }
                }
                // The view tracks what was *issued*, successful or not,
                // mirroring the learned table's own optimism — a failed
                // install is repaired by the next reconciler audit, not
                // by hammering the controller every tick.
                self.installed.insert(key, effective);
            }
        }

        // 6. expire stale destinations, restoring the kernel default.
        self.expire_into(now, controller, &mut report);

        // 7. enforce the table's capacity bound, withdrawing the routes
        // of evicted destinations. With aggregation on, an aggregate's
        // members are charged as ONE entry and evicted as a unit; its
        // covering route is withdrawn by this tick's pass (step 8), which
        // sees the member group vanish.
        let evicted = match self.aggregator.as_ref() {
            Some(agg) => self
                .table
                .enforce_capacity_grouped(|key| agg.covering_of(key)),
            None => self.table.enforce_capacity(),
        };
        for key in evicted {
            self.stats.table_evictions += 1;
            report.evicted.push(key);
            if let Some(guard) = &mut self.guard {
                guard.forget(&key);
            }
            if let Some(t) = &self.telemetry {
                t.table_evictions.inc();
                t.journal_decision(now, key, DecisionAction::Evict, DecisionCause::Capacity);
            }
            if self.installed.remove(&key).is_some() {
                if let Err(e) = controller.clear_initcwnd(key) {
                    self.stats.errors += 1;
                    report.errors.push(e);
                    if let Some(t) = &self.telemetry {
                        t.errors.inc();
                    }
                }
            }
        }

        // 8. aggregation: coalesce agreeing siblings into one covering
        // route, dissolve diverged or emptied aggregates back into
        // member routes. A no-op unless the config enables it.
        if self.aggregator.is_some() {
            let pass = {
                let agg = self.aggregator.as_mut().expect("checked above");
                agg.pass(&self.table)
            };
            self.apply_aggregation(now, &pass, controller, &mut report);
        }

        self.refresh_gauges();
        report
    }

    /// Applies one [`crate::aggregate::AggregationPass`] through the
    /// controller: merges withdraw member routes and install the covering
    /// route at the member-minimum window; splits withdraw the covering
    /// route and reinstall every surviving member at its learned window.
    /// Every action is journal-attributed to the merge/split that caused
    /// it.
    fn apply_aggregation<C>(
        &mut self,
        now: SimTime,
        pass: &crate::aggregate::AggregationPass,
        controller: &mut C,
        report: &mut TickReport,
    ) where
        C: RouteController + ?Sized,
    {
        for merge in &pass.merged {
            self.stats.aggregate_merges += 1;
            let cause = DecisionCause::Aggregated {
                members: merge.members.len() as u32,
                spread: merge.spread,
            };
            // The members' individual routes fold into the covering one.
            for &member in &merge.members {
                if self.installed.remove(&member).is_none() {
                    continue;
                }
                match controller.clear_initcwnd(member) {
                    Ok(()) => {
                        if let Some(t) = &self.telemetry {
                            t.journal_decision(now, member, DecisionAction::Withdraw, cause);
                        }
                    }
                    Err(e) => self.note_control_error(e, report),
                }
            }
            self.install_covering(now, merge, cause, controller, report);
        }
        for retune in &pass.retuned {
            let cause = DecisionCause::Aggregated {
                members: retune.members.len() as u32,
                spread: retune.spread,
            };
            self.install_covering(now, retune, cause, controller, report);
        }
        for split in &pass.split {
            self.stats.aggregate_splits += 1;
            report.disaggregated.push(split.covering);
            let cause = DecisionCause::Disaggregated {
                members: split.members.len() as u32,
                spread: split.spread,
            };
            if self.installed.remove(&split.covering).is_some() {
                match controller.clear_initcwnd(split.covering) {
                    Ok(()) => {
                        if let Some(t) = &self.telemetry {
                            t.journal_decision(
                                now,
                                split.covering,
                                DecisionAction::Withdraw,
                                cause,
                            );
                        }
                    }
                    Err(e) => self.note_control_error(e, report),
                }
            }
            // Surviving members come back as individual routes at their
            // learned windows. (A guard-suppressed member re-demotes to
            // the probe window on its next observed tick.)
            for &(member, window) in &split.members {
                match controller.set_initcwnd(member, window) {
                    Ok(()) => {
                        self.stats.route_updates += 1;
                        if let Some(t) = &self.telemetry {
                            t.route_updates.inc();
                            t.installed_window.observe(window as u64);
                            t.journal_decision(
                                now,
                                member,
                                DecisionAction::Install { window },
                                cause,
                            );
                        }
                    }
                    Err(e) => self.note_control_error(e, report),
                }
                self.installed.insert(member, window);
            }
        }
    }

    /// Installs (or retunes) one covering aggregate route.
    fn install_covering<C>(
        &mut self,
        now: SimTime,
        merge: &crate::aggregate::MergeOutcome,
        cause: DecisionCause,
        controller: &mut C,
        report: &mut TickReport,
    ) where
        C: RouteController + ?Sized,
    {
        match controller.set_initcwnd(merge.covering, merge.window) {
            Ok(()) => {
                self.stats.route_updates += 1;
                report.merged.push((merge.covering, merge.window));
                if let Some(t) = &self.telemetry {
                    t.route_updates.inc();
                    t.installed_window.observe(merge.window as u64);
                    t.journal_decision(
                        now,
                        merge.covering,
                        DecisionAction::Install {
                            window: merge.window,
                        },
                        cause,
                    );
                }
            }
            Err(e) => self.note_control_error(e, report),
        }
        self.installed.insert(merge.covering, merge.window);
    }

    /// Counts a route-control failure without aborting the tick.
    fn note_control_error(&mut self, e: ControlError, report: &mut TickReport) {
        self.stats.errors += 1;
        report.errors.push(e);
        if let Some(t) = &self.telemetry {
            t.errors.inc();
        }
    }

    /// Re-derives the point-in-time gauges from live state. Cheap enough
    /// to run at the end of every tick.
    fn refresh_gauges(&self) {
        let Some(t) = &self.telemetry else { return };
        t.table_entries.set(self.table.len() as u64);
        t.installed_routes.set(self.installed.len() as u64);
        let (_, open, half_open) = self
            .guard
            .as_ref()
            .map(|g| g.breaker_counts())
            .unwrap_or((0, 0, 0));
        t.breaker_open.set(open as u64);
        t.breaker_half_open.set(half_open as u64);
    }

    /// Runs one reconciler audit cycle against a kernel route dump:
    /// re-installs externally deleted or rewritten routes, withdraws
    /// orphaned Riptide-signature routes, and leaves foreign routes
    /// untouched (see [`crate::reconcile`]).
    pub fn reconcile<C>(
        &mut self,
        kernel: &riptide_linuxnet::route::RouteTable,
        controller: &mut C,
    ) -> crate::reconcile::AuditReport
    where
        C: RouteController + ?Sized,
    {
        let bounds = (self.config.cwnd_min, self.config.cwnd_max);
        let report = crate::reconcile::audit(&self.installed, kernel, bounds, controller);
        self.stats.reconcile_repairs += report.repairs() as u64;
        self.stats.errors += report.errors.len() as u64;
        if let Some(t) = &self.telemetry {
            t.reconcile_repairs.add(report.repairs() as u64);
            t.errors.add(report.errors.len() as u64);
            let verdict = report.verdict();
            for &(key, window) in &report.reinstalled {
                t.journal_decision(
                    self.last_now,
                    key,
                    DecisionAction::Repair {
                        window: Some(window),
                    },
                    DecisionCause::Reconcile { verdict },
                );
            }
            for &key in &report.withdrawn {
                t.journal_decision(
                    self.last_now,
                    key,
                    DecisionAction::Repair { window: None },
                    DecisionCause::Reconcile { verdict },
                );
            }
        }
        report
    }

    /// Gracefully shuts the agent down: withdraws every route it believes
    /// it has installed, so the host reverts to kernel-default behavior
    /// the moment the agent exits. Returns the keys withdrawn.
    ///
    /// Withdrawal failures are counted but do not stop the sweep — on the
    /// way out, every remaining route must still get its chance.
    pub fn shutdown<C>(&mut self, controller: &mut C) -> Vec<Ipv4Prefix>
    where
        C: RouteController + ?Sized,
    {
        let keys: Vec<Ipv4Prefix> = self.installed.keys().copied().collect();
        for &key in &keys {
            match controller.clear_initcwnd(key) {
                Ok(()) => {
                    self.stats.route_expirations += 1;
                    if let Some(t) = &self.telemetry {
                        t.route_expirations.inc();
                        t.shutdown_withdrawals.inc();
                        t.journal_decision(
                            self.last_now,
                            key,
                            DecisionAction::Withdraw,
                            DecisionCause::Shutdown,
                        );
                    }
                }
                Err(_) => {
                    self.stats.errors += 1;
                    if let Some(t) = &self.telemetry {
                        t.errors.inc();
                    }
                }
            }
        }
        self.installed.clear();
        self.refresh_gauges();
        keys
    }

    /// Captures the agent's full learned state — table entries with
    /// their history and TTL stamps, the installed-routes view, and the
    /// loss guard's breaker states — as a persistable
    /// [`crate::persist::TableSnapshot`] stamped `now`.
    pub fn snapshot_state(&self, now: SimTime) -> crate::persist::TableSnapshot {
        crate::persist::TableSnapshot {
            taken_at: now,
            entries: self
                .table
                .iter()
                .map(|(k, e)| crate::persist::SnapshotEntry {
                    key: *k,
                    window: e.window,
                    last_fresh: e.last_fresh,
                    last_updated: e.last_updated,
                    history: e.history.clone(),
                })
                .collect(),
            installs: self.installed.iter().map(|(k, w)| (*k, *w)).collect(),
            guards: self
                .guard
                .as_ref()
                .map(|g| g.export_states())
                .unwrap_or_default(),
            skipped_entries: 0,
        }
    }

    /// Warm-restarts the agent from a decoded snapshot: rebuilds the
    /// learned table, guard state, and installed routes, reissuing each
    /// surviving route through `controller`.
    ///
    /// Safety rules, in order:
    ///
    /// * **TTL keeps running across the downtime** — an entry whose
    ///   `last_updated` is more than `t` seconds before `now` is dropped,
    ///   not resurrected; its route is never reissued.
    /// * **Windows are clamped into `[c_min, c_max]`** on the way in, so
    ///   a corrupt or foreign-config state file cannot install an
    ///   out-of-bounds window.
    /// * **History re-seeds on policy mismatch** — a persisted history
    ///   whose variant does not match the configured learning policy
    ///   ([`Policy::state_matches`]) is replaced by a fresh state seeded
    ///   with one blend of the entry's `last_fresh` (never fed to
    ///   [`Policy::observe`] raw, which would panic on the mismatch).
    /// * **Entries the decoder skipped are surfaced** — a snapshot whose
    ///   decode dropped entries with unknown history tags (written by a
    ///   newer version) bumps the lazily registered
    ///   `riptide_persist_skipped_entries_total` counter.
    /// * **Only routes with a surviving table entry are reinstalled**,
    ///   each journalled as [`DecisionCause::Restored`]; foreign routes
    ///   are never touched (the controller only writes Riptide-signature
    ///   routes).
    ///
    /// Returns the `(key, window)` pairs reinstalled.
    ///
    /// [`Policy::state_matches`]: crate::policy::Policy::state_matches
    /// [`Policy::observe`]: crate::policy::Policy::observe
    pub fn restore_state<C>(
        &mut self,
        state: &crate::persist::TableSnapshot,
        now: SimTime,
        controller: &mut C,
    ) -> Vec<(Ipv4Prefix, u32)>
    where
        C: RouteController + ?Sized,
    {
        self.last_now = now;
        if state.skipped_entries > 0 {
            if let Some(t) = &self.telemetry {
                // Lazily registered, like the restore counter below.
                t.registry()
                    .counter(
                        "riptide_persist_skipped_entries_total",
                        "Snapshot entries dropped at decode for unknown history tags",
                    )
                    .add(state.skipped_entries as u64);
            }
        }
        for e in &state.entries {
            if now.saturating_since(e.last_updated) > self.config.ttl {
                continue;
            }
            let history = if self.config.policy.state_matches(&e.history) {
                e.history.clone()
            } else {
                let mut h = self.config.policy.new_state();
                self.config.policy.blend(&mut h, e.last_fresh);
                h
            };
            let window = e.window.clamp(self.config.cwnd_min, self.config.cwnd_max);
            self.table.restore_entry(
                e.key,
                crate::table::FinalEntry {
                    window,
                    history,
                    last_fresh: e.last_fresh,
                    last_updated: e.last_updated,
                },
            );
        }
        if let Some(guard) = &mut self.guard {
            guard.restore_states(&state.guards);
        }
        let mut reinstalled = Vec::new();
        for &(key, window) in &state.installs {
            // A route whose entry expired during the downtime (or was
            // filtered above) stays withdrawn — the restart withdrew
            // everything, so silence is already the correct state.
            if self.table.get(&key).is_none() {
                continue;
            }
            let window = window.clamp(self.config.cwnd_min, self.config.cwnd_max);
            match controller.set_initcwnd(key, window) {
                Ok(()) => {
                    self.stats.restored_routes += 1;
                    reinstalled.push((key, window));
                    if let Some(t) = &self.telemetry {
                        // Registered lazily at first restore so that
                        // runs without persistence keep their metric
                        // snapshots (and digests) byte-identical.
                        t.registry()
                            .counter(
                                "riptide_restored_routes_total",
                                "Routes reinstalled from persisted state at warm restart",
                            )
                            .inc();
                        let age = now.saturating_since(state.taken_at);
                        t.journal_decision(
                            now,
                            key,
                            DecisionAction::Install { window },
                            DecisionCause::Restored {
                                age_secs: age.as_secs_f64() as u32,
                            },
                        );
                    }
                }
                Err(_) => {
                    self.stats.errors += 1;
                    if let Some(t) = &self.telemetry {
                        t.errors.inc();
                    }
                }
            }
            self.installed.insert(key, window);
        }
        self.refresh_gauges();
        reinstalled
    }

    /// Merges a gossip delta from a peer into the learned table under
    /// the anti-entropy conflict rules of [`crate::sync`]:
    ///
    /// * **Newest `last_updated` wins** — a remote entry older than (or
    ///   tied with) the local one is ignored.
    /// * **Windows clamp-merge into `[c_min, c_max]`** — a peer with a
    ///   wider configuration can never push an out-of-bounds window.
    /// * **TTL applies** — a remote entry that would already have
    ///   expired here is ignored, not resurrected.
    /// * **Foreign routes are never touched** — accepted entries go
    ///   through the same controller path as learned ones, which only
    ///   writes Riptide-signature routes; keys covered by a live
    ///   aggregate ride their covering route, as in [`RiptideAgent::tick`].
    ///
    /// A locally known key keeps its history accumulator (the peer sent
    /// a window, not observations); an unknown key's history is seeded
    /// with the merged window. Every acceptance is journalled as
    /// [`DecisionCause::SyncMerged`]. Returns the `(key, window)` pairs
    /// accepted.
    pub fn merge_remote<C>(
        &mut self,
        delta: &[crate::sync::SyncEntry],
        now: SimTime,
        controller: &mut C,
    ) -> Vec<(Ipv4Prefix, u32)>
    where
        C: RouteController + ?Sized,
    {
        self.last_now = now;
        let mut accepted = Vec::new();
        for remote in delta {
            if now.saturating_since(remote.last_updated) > self.config.ttl {
                continue;
            }
            let local = self.table.get(&remote.key).map(|e| crate::sync::SyncEntry {
                key: remote.key,
                window: e.window,
                last_updated: e.last_updated,
            });
            if !crate::sync::remote_wins(local.as_ref(), remote) {
                continue;
            }
            let window =
                crate::sync::clamp_merge(remote.window, self.config.cwnd_min, self.config.cwnd_max);
            let clamped = window != remote.window;
            let (history, last_fresh) = match self.table.get(&remote.key) {
                Some(e) => (e.history.clone(), e.last_fresh),
                None => {
                    let mut h = self.config.policy.new_state();
                    self.config.policy.blend(&mut h, window as f64);
                    (h, window as f64)
                }
            };
            self.table.restore_entry(
                remote.key,
                crate::table::FinalEntry {
                    window,
                    history,
                    last_fresh,
                    last_updated: remote.last_updated,
                },
            );
            let covered = self
                .aggregator
                .as_ref()
                .and_then(|agg| agg.covering_of(&remote.key))
                .is_some();
            if !covered && self.installed.get(&remote.key).copied() != Some(window) {
                match controller.set_initcwnd(remote.key, window) {
                    Ok(()) => {
                        if let Some(t) = &self.telemetry {
                            // Lazily registered, like the restore counter.
                            t.registry()
                                .counter(
                                    "riptide_sync_merged_total",
                                    "Entries accepted from gossip peers",
                                )
                                .inc();
                            t.journal_decision(
                                now,
                                remote.key,
                                DecisionAction::Install { window },
                                DecisionCause::SyncMerged { clamped },
                            );
                        }
                    }
                    Err(_) => {
                        self.stats.errors += 1;
                        if let Some(t) = &self.telemetry {
                            t.errors.inc();
                        }
                    }
                }
                self.installed.insert(remote.key, window);
            }
            self.stats.sync_merges += 1;
            accepted.push((remote.key, window));
        }
        if !accepted.is_empty() {
            self.refresh_gauges();
        }
        accepted
    }

    /// Runs one *degraded* cycle: the observation poll failed (timed out,
    /// subprocess died, unusable output), so the agent must not guess.
    ///
    /// Degraded semantics, per the no-harm requirement of §IV-D:
    ///
    /// * **Freeze** — no advisory/window state is updated; the agent
    ///   never extrapolates windows from polls it did not get.
    /// * **Decay** — TTL expiry still runs, so if polls keep failing,
    ///   every learned route is withdrawn within `t` seconds and new
    ///   connections fall back to the kernel default (`initcwnd=10`).
    ///
    /// A run of failed polls therefore converges to exactly the state of
    /// a host that never ran Riptide.
    pub fn tick_degraded<C>(&mut self, now: SimTime, controller: &mut C) -> TickReport
    where
        C: RouteController + ?Sized,
    {
        let mut report = TickReport {
            degraded: true,
            ..TickReport::default()
        };
        self.stats.ticks += 1;
        self.stats.degraded_ticks += 1;
        self.last_now = now;
        if let Some(t) = &self.telemetry {
            t.ticks.inc();
            t.degraded_ticks.inc();
        }
        self.expire_into(now, controller, &mut report);
        self.refresh_gauges();
        report
    }

    fn expire_into<C>(&mut self, now: SimTime, controller: &mut C, report: &mut TickReport)
    where
        C: RouteController + ?Sized,
    {
        for key in self.table.expire(now, self.config.ttl) {
            let was_installed = self.installed.remove(&key).is_some();
            if let Some(guard) = &mut self.guard {
                guard.forget(&key);
            }
            // A member covered by an aggregate has no individual route to
            // withdraw; the aggregate itself dissolves via the pass once
            // its member group thins out. (Without aggregation the
            // withdrawal is issued unconditionally, as ever — a failed
            // install may have left the kernel ahead of our view.)
            if self.aggregator.is_some() && !was_installed {
                report.expired.push(key);
                continue;
            }
            match controller.clear_initcwnd(key) {
                Ok(()) => {
                    self.stats.route_expirations += 1;
                    report.expired.push(key);
                    if let Some(t) = &self.telemetry {
                        t.route_expirations.inc();
                        t.journal_decision(
                            now,
                            key,
                            DecisionAction::Withdraw,
                            DecisionCause::TtlExpired,
                        );
                    }
                }
                Err(e) => {
                    self.stats.errors += 1;
                    report.errors.push(e);
                    if let Some(t) = &self.telemetry {
                        t.errors.inc();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::CombineStrategy;
    use crate::granularity::Granularity;
    use crate::history::HistoryStrategy;
    use crate::observe::{CwndObservation, FnObserver};
    use riptide_linuxnet::route::RouteTable;
    use std::net::Ipv4Addr;

    fn obs(dst: [u8; 4], cwnd: u32) -> CwndObservation {
        CwndObservation {
            dst: Ipv4Addr::from(dst),
            cwnd,
            bytes_acked: 1_000_000,
            retrans: 0,
            ecn_marks: 0,
        }
    }

    fn agent(config: RiptideConfig) -> (RiptideAgent, RouteTable) {
        (RiptideAgent::new(config).unwrap(), RouteTable::new())
    }

    fn no_history() -> RiptideConfig {
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .unwrap()
    }

    #[test]
    fn fig7_average_of_observed_windows() {
        // The paper's Fig. 7: observed windows average 80 → initcwnd 80.
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 60),
                obs([10, 0, 1, 1], 80),
                obs([10, 0, 1, 1], 100),
            ]
        });
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.observed_connections, 3);
        assert_eq!(r.groups, 1);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
    }

    #[test]
    fn clamping_applies_both_bounds() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 500), obs([10, 0, 2, 1], 2)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(100),
            "c_max caps"
        );
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 2, 1)),
            Some(10),
            "c_min floors"
        );
    }

    #[test]
    fn ewma_damps_across_ticks() {
        let cfg = RiptideConfig::builder().alpha(0.7).build().unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut o1 = FnObserver(|| vec![obs([10, 0, 1, 1], 40)]);
        a.tick(SimTime::from_secs(1), &mut o1, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(40));
        // Windows spike to 100; EWMA moves only 30% of the way: 58.
        let mut o2 = FnObserver(|| vec![obs([10, 0, 1, 1], 100)]);
        a.tick(SimTime::from_secs(2), &mut o2, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(58));
    }

    #[test]
    fn ttl_expiry_withdraws_route() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)).is_some());
        // No connections for > 90 s: route withdrawn, default restored.
        let mut silent = FnObserver(Vec::new);
        let r = a.tick(SimTime::from_secs(95), &mut silent, &mut routes);
        assert_eq!(r.expired.len(), 1);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), None);
        assert!(a.table().is_empty());
    }

    #[test]
    fn continued_observation_refreshes_ttl() {
        let (mut a, mut routes) = agent(no_history());
        for t in (0..200).step_by(10) {
            let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
            let r = a.tick(SimTime::from_secs(t), &mut o, &mut routes);
            assert!(r.expired.is_empty(), "t={t}: live traffic never expires");
        }
    }

    #[test]
    fn unchanged_window_is_not_reinstalled() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        let r1 = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r1.updates.len(), 1);
        let r2 = a.tick(SimTime::from_secs(2), &mut o, &mut routes);
        assert!(r2.updates.is_empty(), "same value, no route churn");
        assert_eq!(a.stats().route_updates, 1);
    }

    #[test]
    fn prefix_granularity_installs_one_route_per_pop() {
        let cfg = RiptideConfig::builder()
            .granularity(Granularity::Prefix(24))
            .history(HistoryStrategy::None)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 40),
                obs([10, 0, 1, 2], 60),
                obs([10, 0, 1, 3], 80),
            ]
        });
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.groups, 1, "three hosts, one /24 group");
        assert_eq!(routes.len(), 1);
        // Any host in the PoP inherits the grouped window.
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 200)), Some(60));
    }

    #[test]
    fn max_strategy_is_more_aggressive_than_average() {
        let base = FnObserver(|| vec![obs([10, 0, 1, 1], 20), obs([10, 0, 1, 1], 90)]);
        let mut o = base;
        let cfg = RiptideConfig::builder()
            .combine(CombineStrategy::Max)
            .history(HistoryStrategy::None)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(90));
    }

    #[test]
    fn multiple_destinations_update_independently() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 30),
                obs([10, 0, 2, 1], 70),
                obs([10, 0, 3, 1], 110),
            ]
        });
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.groups, 3);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(30));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 2, 1)), Some(70));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 3, 1)), Some(100));
    }

    #[test]
    fn learned_window_respects_granularity() {
        let cfg = RiptideConfig::builder()
            .granularity(Granularity::Prefix(24))
            .history(HistoryStrategy::None)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 64)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(a.learned_window(Ipv4Addr::new(10, 0, 1, 99)), Some(64));
        assert_eq!(a.learned_window(Ipv4Addr::new(10, 0, 2, 1)), None);
    }

    #[test]
    fn empty_observation_is_harmless() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(Vec::new);
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.groups, 0);
        assert!(r.updates.is_empty() && r.expired.is_empty() && r.errors.is_empty());
        assert!(routes.is_empty());
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        let text = a.stats().render_prometheus();
        assert!(text.contains("riptide_ticks_total 1"));
        assert!(text.contains("riptide_route_updates_total 1"));
        assert!(text.contains("# TYPE riptide_observations_total counter"));
        // Every metric has HELP, TYPE and a value line.
        assert_eq!(text.lines().count(), 39);
        assert!(text.contains("riptide_guard_trips_total 0"));
        assert!(text.contains("riptide_aggregate_merges_total 0"));
        assert!(text.contains("riptide_restored_routes_total 0"));
        assert!(text.contains("riptide_sync_merged_total 0"));
    }

    #[test]
    fn degraded_tick_freezes_learning_but_still_expires() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(50));

        // Poll failures shortly after: nothing changes, nothing expires.
        let r = a.tick_degraded(SimTime::from_secs(2), &mut routes);
        assert!(r.degraded && r.updates.is_empty() && r.expired.is_empty());
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(50));
        assert_eq!(a.table().len(), 1, "learned state frozen, not dropped");

        // Poll failures past the TTL: the route is withdrawn and the
        // destination falls back to the kernel default.
        let r = a.tick_degraded(SimTime::from_secs(95), &mut routes);
        assert_eq!(r.expired.len(), 1);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), None);
        assert_eq!(a.stats().degraded_ticks, 2);
        assert_eq!(a.stats().ticks, 3);
    }

    #[test]
    fn conservative_advisory_scales_installs() {
        let (mut a, mut routes) = agent(no_history());
        a.set_advisory(crate::advisory::Advisory::Conservative { factor: 0.5 })
            .unwrap();
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 80)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(40),
            "half of the learned 80"
        );
    }

    #[test]
    fn suspend_advisory_stops_installs_but_keeps_learning() {
        let (mut a, mut routes) = agent(no_history());
        a.set_advisory(crate::advisory::Advisory::Suspend).unwrap();
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 80)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert!(routes.is_empty(), "no installs while suspended");
        assert_eq!(a.table().len(), 1, "learning continues");
        // Resume: the learned value lands on the next tick.
        a.set_advisory(crate::advisory::Advisory::Normal).unwrap();
        a.tick(SimTime::from_secs(2), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
    }

    #[test]
    fn invalid_advisory_rejected() {
        let (mut a, _) = agent(no_history());
        assert!(a
            .set_advisory(crate::advisory::Advisory::Conservative { factor: 2.0 })
            .is_err());
        assert_eq!(a.advisory(), crate::advisory::Advisory::Normal);
    }

    #[test]
    fn trend_damping_beats_slow_ewma_on_collapse() {
        let cfg = RiptideConfig::builder()
            .alpha(0.9)
            .trend(crate::trend::TrendPolicy::default())
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        let mut high = FnObserver(|| vec![obs([10, 0, 1, 1], 100)]);
        a.tick(SimTime::from_secs(1), &mut high, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(100));
        // Windows collapse to 20; EWMA alone would install 92, the trend
        // override caps at fresh/2 = 10.
        let mut low = FnObserver(|| vec![obs([10, 0, 1, 1], 20)]);
        a.tick(SimTime::from_secs(2), &mut low, &mut routes);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(10),
            "aggressive decrease beyond the blend"
        );
    }

    #[test]
    fn trend_collapse_to_near_zero_still_installs_c_min() {
        use crate::telemetry::{AgentTelemetry, DecisionCause};

        let cfg = RiptideConfig::builder()
            .alpha(0.9)
            .trend(crate::trend::TrendPolicy::default())
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg.clone());
        a.attach_telemetry(AgentTelemetry::standalone(64));
        let mut high = FnObserver(|| vec![obs([10, 0, 1, 1], 100)]);
        a.tick(SimTime::from_secs(1), &mut high, &mut routes);

        // Windows collapse 100 -> 2: the overshoot cap alone would ask
        // for 1, below the kernel floor. The policy's floor keeps the
        // damped value installable, so the journal attributes the low
        // window to trend damping, not to the clamp papering over it.
        let mut low = FnObserver(|| vec![obs([10, 0, 1, 1], 2)]);
        a.tick(SimTime::from_secs(2), &mut low, &mut routes);
        let installed = routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)).unwrap();
        assert_eq!(installed, cfg.cwnd_min, "never below the kernel floor");

        let records = a.telemetry().unwrap().journal().snapshot();
        assert!(
            matches!(
                records.last().unwrap().cause,
                DecisionCause::Learned {
                    trend_damped: true,
                    clamped: false,
                    ..
                }
            ),
            "{:?}",
            records.last().unwrap()
        );
    }

    fn lossy_obs(dst: [u8; 4], cwnd: u32, retrans: u64, bytes: u64) -> CwndObservation {
        CwndObservation {
            dst: Ipv4Addr::from(dst),
            cwnd,
            bytes_acked: bytes,
            retrans,
            ecn_marks: 0,
        }
    }

    fn guarded() -> RiptideConfig {
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .guard(crate::guard::GuardConfig::default())
            .build()
            .unwrap()
    }

    #[test]
    fn guard_demotes_lossy_jump_started_destination() {
        let (mut a, mut routes) = agent(guarded());
        // Tick 1: clean traffic, window 80 learned and installed.
        let mut o = FnObserver(|| vec![lossy_obs([10, 0, 1, 1], 80, 0, 1_000_000)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));

        // Tick 2: the path turns sour — heavy retransmits on the
        // jump-started destination. The breaker trips and the install is
        // demoted to the kernel-default probe window.
        let mut bad = FnObserver(|| vec![lossy_obs([10, 0, 1, 1], 80, 500, 2_000_000)]);
        let r = a.tick(SimTime::from_secs(2), &mut bad, &mut routes);
        assert_eq!(r.guard_trips, vec!["10.0.1.1".parse().unwrap()]);
        assert_eq!(a.stats().guard_trips, 1);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            Some(10),
            "demoted to the probe window, not left at 80"
        );
        // The learned table keeps learning underneath the demotion.
        assert!(a.table().window(&"10.0.1.1".parse().unwrap()).is_some());
    }

    #[test]
    fn guard_never_trips_without_a_jump_start() {
        let (mut a, mut routes) = agent(guarded());
        // Loss from the very first sighting: we never installed anything
        // above the default, so the harm cannot be ours.
        let mut bad = FnObserver(|| vec![lossy_obs([10, 0, 1, 1], 10, 500, 1_000_000)]);
        a.tick(SimTime::from_secs(1), &mut bad, &mut routes);
        let r = a.tick(SimTime::from_secs(2), &mut bad, &mut routes);
        assert!(r.guard_trips.is_empty());
        assert_eq!(a.stats().guard_trips, 0);
    }

    #[test]
    fn guarded_clean_run_matches_unguarded() {
        // The guard must be invisible on a loss-free run: identical
        // installs, identical stats counters that both configs share.
        let (mut plain, mut routes_p) = agent(no_history());
        let (mut armed, mut routes_g) = agent(guarded());
        for t in 1..30 {
            let mk = move || {
                vec![
                    lossy_obs([10, 0, 1, 1], 40 + (t as u32 % 20), 0, t * 1_000_000),
                    lossy_obs([10, 0, 2, 1], 70, 0, t * 500_000),
                ]
            };
            let mut o1 = FnObserver(mk);
            let mut o2 = FnObserver(mk);
            let r1 = plain.tick(SimTime::from_secs(t), &mut o1, &mut routes_p);
            let r2 = armed.tick(SimTime::from_secs(t), &mut o2, &mut routes_g);
            assert_eq!(r1.updates, r2.updates, "t={t}");
        }
        assert_eq!(plain.stats().route_updates, armed.stats().route_updates);
        assert_eq!(armed.stats().guard_trips, 0);
        assert_eq!(routes_p.render(), routes_g.render());
    }

    #[test]
    fn capacity_bound_evicts_and_withdraws() {
        let cfg = RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .table_capacity(2)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        for (t, n) in [(1u64, 1u8), (2, 2), (3, 3)] {
            let mut o = FnObserver(move || vec![obs([10, 0, n, 1], 50)]);
            a.tick(SimTime::from_secs(t), &mut o, &mut routes);
        }
        // Three destinations through a 2-slot table: the oldest was
        // evicted and its route withdrawn.
        assert_eq!(a.table().len(), 2);
        assert_eq!(a.stats().table_evictions, 1);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), None);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 2, 1)), Some(50));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 3, 1)), Some(50));
        assert_eq!(a.installed_view().len(), 2);
    }

    fn aggregated() -> RiptideConfig {
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .aggregation(crate::aggregate::AggregationPolicy::default())
            .build()
            .unwrap()
    }

    #[test]
    fn aggregation_folds_agreeing_siblings_into_one_covering_route() {
        let (mut a, mut routes) = agent(aggregated());
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 40),
                obs([10, 0, 1, 2], 42),
                obs([10, 0, 1, 3], 44),
            ]
        });
        let r = a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(r.updates.len(), 3, "members install individually first");
        assert_eq!(r.merged, vec![("10.0.1.0/24".parse().unwrap(), 40)]);
        assert_eq!(routes.len(), 1, "three host routes became one aggregate");
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 3)),
            Some(40),
            "member minimum — never widen past a learned window"
        );
        assert_eq!(a.stats().aggregate_merges, 1);
        assert_eq!(a.installed_view().len(), 1);

        // Steady state: covered members issue no individual installs and
        // the unchanged aggregate is not reissued.
        let r2 = a.tick(SimTime::from_secs(2), &mut o, &mut routes);
        assert!(r2.updates.is_empty() && r2.merged.is_empty() && r2.disaggregated.is_empty());
        assert_eq!(a.stats().route_updates, 4, "3 members + 1 covering, once");
    }

    #[test]
    fn diverging_member_splits_the_aggregate_same_tick() {
        let (mut a, mut routes) = agent(aggregated());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 40), obs([10, 0, 1, 2], 42)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.len(), 1);

        let mut diverged = FnObserver(|| vec![obs([10, 0, 1, 1], 40), obs([10, 0, 1, 2], 90)]);
        let r = a.tick(SimTime::from_secs(2), &mut diverged, &mut routes);
        assert_eq!(r.disaggregated, vec!["10.0.1.0/24".parse().unwrap()]);
        assert_eq!(a.stats().aggregate_splits, 1);
        assert_eq!(routes.len(), 2, "members reinstalled individually");
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(40));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 2)), Some(90));
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 200)),
            None,
            "no covering route lingers after the split"
        );
    }

    #[test]
    fn aggregate_round_trip_is_deterministic_and_journaled() {
        use crate::telemetry::AgentTelemetry;

        let run = || {
            let (mut a, mut routes) = agent(aggregated());
            a.attach_telemetry(AgentTelemetry::standalone(64));
            let mut converged = FnObserver(|| vec![obs([10, 0, 1, 1], 40), obs([10, 0, 1, 2], 42)]);
            let mut diverged = FnObserver(|| vec![obs([10, 0, 1, 1], 40), obs([10, 0, 1, 2], 90)]);
            a.tick(SimTime::from_secs(1), &mut converged, &mut routes);
            a.tick(SimTime::from_secs(2), &mut diverged, &mut routes);
            a.tick(SimTime::from_secs(3), &mut converged, &mut routes);
            let journal: Vec<String> = a
                .telemetry()
                .unwrap()
                .journal()
                .snapshot()
                .iter()
                .map(|r| r.render())
                .collect();
            (routes.render(), journal, a.stats())
        };
        let (routes_a, journal_a, stats_a) = run();
        let (routes_b, journal_b, stats_b) = run();
        assert_eq!(
            routes_a, routes_b,
            "identical inputs, identical kernel state"
        );
        assert_eq!(journal_a, journal_b, "identical decision history");
        assert_eq!(stats_a, stats_b);
        assert_eq!(stats_a.aggregate_merges, 2, "re-convergence re-merges");
        assert_eq!(stats_a.aggregate_splits, 1);
        assert!(
            journal_a
                .iter()
                .any(|line| line.contains("aggregated members=2 spread=2")),
            "merge attributed: {journal_a:?}"
        );
        assert!(
            journal_a
                .iter()
                .any(|line| line.contains("disaggregated members=2 spread=50")),
            "split attributed: {journal_a:?}"
        );
    }

    #[test]
    fn aggregated_prefix_counts_as_one_capacity_entry() {
        let cfg = RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .aggregation(crate::aggregate::AggregationPolicy::default())
            .table_capacity(2)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        // Tick 1: three siblings merge into one aggregate.
        let mut o = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 40),
                obs([10, 0, 1, 2], 42),
                obs([10, 0, 1, 3], 44),
            ]
        });
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(a.stats().aggregate_merges, 1);
        // Tick 2: a fourth destination. Four learned entries but only two
        // capacity units — the aggregate is charged as ONE entry covering
        // its three learned destinations, so nothing is evicted.
        let mut o2 = FnObserver(|| {
            vec![
                obs([10, 0, 1, 1], 40),
                obs([10, 0, 1, 2], 42),
                obs([10, 0, 1, 3], 44),
                obs([10, 0, 9, 1], 70),
            ]
        });
        let r = a.tick(SimTime::from_secs(2), &mut o2, &mut routes);
        assert!(
            r.evicted.is_empty(),
            "one aggregate + one host fit a 2-slot table"
        );
        assert_eq!(a.table().len(), 4);
        // Tick 3: a third unit. The aggregate is now the stalest unit and
        // is evicted whole; its covering route dissolves the same tick.
        let mut o3 = FnObserver(|| vec![obs([10, 0, 9, 1], 70), obs([10, 0, 10, 1], 80)]);
        let r = a.tick(SimTime::from_secs(3), &mut o3, &mut routes);
        assert_eq!(r.evicted.len(), 3, "the whole unit leaves together");
        assert_eq!(r.disaggregated.len(), 1);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)),
            None,
            "covering route withdrawn with its unit"
        );
        assert_eq!(a.table().len(), 2);
        assert_eq!(a.installed_view().len(), 2);
    }

    #[test]
    fn expired_members_dissolve_their_aggregate() {
        let (mut a, mut routes) = agent(aggregated());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 40), obs([10, 0, 1, 2], 42)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.len(), 1);

        let mut silent = FnObserver(Vec::new);
        let r = a.tick(SimTime::from_secs(200), &mut silent, &mut routes);
        assert_eq!(r.expired.len(), 2);
        assert_eq!(r.disaggregated.len(), 1);
        assert!(routes.is_empty(), "no orphan covering route");
        assert!(a.installed_view().is_empty());
        assert_eq!(
            a.stats().route_expirations,
            0,
            "covered members had no individual routes to withdraw"
        );
    }

    #[test]
    fn installed_view_tracks_the_kernel() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50), obs([10, 0, 2, 1], 70)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        let view = a.installed_view();
        assert_eq!(view.len(), 2);
        assert_eq!(view.get(&"10.0.1.1".parse().unwrap()), Some(&50));
        // Expiry drops the view entry along with the route.
        let mut silent = FnObserver(Vec::new);
        a.tick(SimTime::from_secs(120), &mut silent, &mut routes);
        assert!(a.installed_view().is_empty());
    }

    #[test]
    fn shutdown_withdraws_every_installed_route() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50), obs([10, 0, 2, 1], 70)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        assert_eq!(routes.len(), 2);
        let withdrawn = a.shutdown(&mut routes);
        assert_eq!(withdrawn.len(), 2);
        assert!(routes.is_empty(), "host reverts to kernel defaults");
        assert!(a.installed_view().is_empty());
        // Idempotent: nothing left to withdraw.
        assert!(a.shutdown(&mut routes).is_empty());
    }

    #[test]
    fn reconcile_repairs_external_drift() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50), obs([10, 0, 2, 1], 70)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);

        // An operator deletes one of our routes and a predecessor's
        // orphan appears.
        routes.clear_initcwnd("10.0.1.1".parse().unwrap()).unwrap();
        routes
            .set_initcwnd("10.0.9.9".parse().unwrap(), 64)
            .unwrap();

        let dump = routes.clone();
        let report = a.reconcile(&dump, &mut routes);
        assert_eq!(report.reinstalled, vec![("10.0.1.1".parse().unwrap(), 50)]);
        assert_eq!(report.withdrawn, vec!["10.0.9.9".parse().unwrap()]);
        assert_eq!(a.stats().reconcile_repairs, 2);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(50));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 9, 9)), None);

        // Converged: a second audit is a no-op.
        let dump = routes.clone();
        assert!(a.reconcile(&dump, &mut routes).converged());
    }

    #[test]
    fn telemetry_counters_mirror_agent_stats() {
        use crate::telemetry::AgentTelemetry;

        let cfg = RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .guard(crate::guard::GuardConfig::default())
            .table_capacity(2)
            .build()
            .unwrap();
        let (mut a, mut routes) = agent(cfg);
        a.attach_telemetry(AgentTelemetry::standalone(64));

        // Installs for three destinations through a 2-slot table (one
        // eviction), then loss trips the guard, then TTL expiry.
        for (t, n) in [(1u64, 1u8), (2, 2), (3, 3)] {
            let mut o = FnObserver(move || vec![obs([10, 0, n, 1], 50)]);
            a.tick(SimTime::from_secs(t), &mut o, &mut routes);
        }
        let mut bad = FnObserver(|| vec![lossy_obs([10, 0, 3, 1], 80, 500, 2_000_000)]);
        a.tick(SimTime::from_secs(4), &mut bad, &mut routes);
        a.tick(SimTime::from_secs(5), &mut bad, &mut routes);
        let mut silent = FnObserver(Vec::new);
        a.tick(SimTime::from_secs(200), &mut silent, &mut routes);

        let s = a.stats();
        let snap = a.telemetry().unwrap().registry().snapshot();
        for (name, want) in [
            ("riptide_ticks_total", s.ticks),
            ("riptide_observations_total", s.observations),
            ("riptide_route_updates_total", s.route_updates),
            ("riptide_route_expirations_total", s.route_expirations),
            ("riptide_control_errors_total", s.errors),
            ("riptide_degraded_ticks_total", s.degraded_ticks),
            ("riptide_guard_trips_total", s.guard_trips),
            ("riptide_table_evictions_total", s.table_evictions),
            ("riptide_reconcile_repairs_total", s.reconcile_repairs),
        ] {
            assert_eq!(snap.value(name), Some(want), "{name}");
        }
        assert!(s.guard_trips >= 1 && s.table_evictions >= 1 && s.route_expirations >= 1);
        assert_eq!(
            snap.value("riptide_table_entries"),
            Some(a.table().len() as u64)
        );
        assert_eq!(
            snap.value("riptide_installed_routes"),
            Some(a.installed_view().len() as u64)
        );
    }

    #[test]
    fn journal_records_the_decision_taxonomy() {
        use crate::telemetry::{AgentTelemetry, DecisionAction, DecisionCause};

        let (mut a, mut routes) = agent(guarded());
        a.attach_telemetry(AgentTelemetry::standalone(64));

        let mut o = FnObserver(|| vec![lossy_obs([10, 0, 1, 1], 80, 0, 1_000_000)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        let mut bad = FnObserver(|| vec![lossy_obs([10, 0, 1, 1], 80, 500, 2_000_000)]);
        a.tick(SimTime::from_secs(2), &mut bad, &mut routes);
        let mut silent = FnObserver(Vec::new);
        a.tick(SimTime::from_secs(200), &mut silent, &mut routes);

        let records = a.telemetry().unwrap().journal().snapshot();
        assert!(
            matches!(
                records[0],
                crate::telemetry::DecisionRecord {
                    action: DecisionAction::Install { window: 80 },
                    cause: DecisionCause::Learned { clamped: false, .. },
                    ..
                }
            ),
            "{:?}",
            records[0]
        );
        assert!(
            records
                .iter()
                .any(|r| matches!(r.action, DecisionAction::Suppress { window: 10 })),
            "guard demotion journaled: {records:?}"
        );
        assert!(
            records
                .iter()
                .any(|r| matches!(r.cause, DecisionCause::TtlExpired)),
            "expiry journaled: {records:?}"
        );

        // Shutdown of a fresh install journals a Shutdown withdrawal.
        let mut o = FnObserver(|| vec![obs([10, 0, 2, 1], 50)]);
        a.tick(SimTime::from_secs(201), &mut o, &mut routes);
        a.shutdown(&mut routes);
        let records = a.telemetry().unwrap().journal().snapshot();
        assert!(records
            .iter()
            .any(|r| matches!(r.cause, DecisionCause::Shutdown)));
    }

    #[test]
    fn reconcile_repairs_are_journaled_with_verdict() {
        use crate::telemetry::{AgentTelemetry, DecisionAction, DecisionCause};

        let (mut a, mut routes) = agent(no_history());
        a.attach_telemetry(AgentTelemetry::standalone(64));
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        routes.clear_initcwnd("10.0.1.1".parse().unwrap()).unwrap();
        routes
            .set_initcwnd("10.0.9.9".parse().unwrap(), 64)
            .unwrap();

        let dump = routes.clone();
        a.reconcile(&dump, &mut routes);
        let records = a.telemetry().unwrap().journal().snapshot();
        assert!(records.iter().any(|r| matches!(
            (r.action, r.cause),
            (
                DecisionAction::Repair { window: Some(50) },
                DecisionCause::Reconcile {
                    verdict: crate::reconcile::AuditVerdict::Repaired
                }
            )
        )));
        assert!(records
            .iter()
            .any(|r| matches!(r.action, DecisionAction::Repair { window: None })));
        let snap = a.telemetry().unwrap().registry().snapshot();
        assert_eq!(snap.value("riptide_reconcile_repairs_total"), Some(2));
    }

    #[test]
    fn snapshot_restore_round_trips_through_the_codec() {
        use crate::telemetry::AgentTelemetry;

        // Learn on one agent, snapshot, encode, decode, restore into a
        // fresh agent — the restarted agent must present the same
        // learned table and kernel routes without re-learning.
        let (mut a, mut routes) = agent(guarded());
        let mut o = FnObserver(|| {
            vec![
                lossy_obs([10, 0, 1, 1], 80, 0, 1_000_000),
                lossy_obs([10, 0, 2, 1], 40, 0, 500_000),
            ]
        });
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        a.tick(SimTime::from_secs(2), &mut o, &mut routes);
        let snap = a.snapshot_state(SimTime::from_secs(2));
        let bytes = crate::persist::encode_state(&snap, &[]);

        let state = crate::persist::decode_state(&bytes).unwrap();
        let replayed = crate::persist::replay(&state.snapshot, &state.journal);
        let (mut b, mut routes_b) = agent(guarded());
        b.attach_telemetry(AgentTelemetry::standalone(16));
        let reinstalled = b.restore_state(&replayed, SimTime::from_secs(10), &mut routes_b);
        assert_eq!(reinstalled.len(), 2);
        assert_eq!(b.stats().restored_routes, 2);
        assert_eq!(routes_b.render(), routes.render(), "same kernel state");
        assert_eq!(
            b.learned_window(Ipv4Addr::new(10, 0, 1, 1)),
            a.learned_window(Ipv4Addr::new(10, 0, 1, 1))
        );
        // Restores are journalled with their on-disk age and counted on
        // the lazily-registered metric.
        let records = b.telemetry().unwrap().journal().snapshot();
        assert!(records
            .iter()
            .all(|r| matches!(r.cause, DecisionCause::Restored { age_secs: 8 })));
        let snap_metrics = b.telemetry().unwrap().registry().snapshot();
        assert_eq!(snap_metrics.value("riptide_restored_routes_total"), Some(2));

        // The restarted agent keeps ticking normally from here.
        let r = b.tick(SimTime::from_secs(11), &mut o, &mut routes_b);
        assert!(r.errors.is_empty());
    }

    #[test]
    fn restore_drops_expired_entries_and_clamps_windows() {
        let (mut b, mut routes) = agent(no_history());
        let snap = crate::persist::TableSnapshot {
            taken_at: SimTime::from_secs(50),
            entries: vec![
                crate::persist::SnapshotEntry {
                    key: "10.0.0.1".parse().unwrap(),
                    window: 900, // way out of bounds
                    last_fresh: 900.0,
                    last_updated: SimTime::from_secs(50),
                    history: crate::history::HistoryState::None,
                },
                crate::persist::SnapshotEntry {
                    key: "10.0.0.2".parse().unwrap(),
                    window: 60,
                    last_fresh: 60.0,
                    last_updated: SimTime::from_secs(1), // stale
                    history: crate::history::HistoryState::None,
                },
            ],
            installs: vec![
                ("10.0.0.1".parse().unwrap(), 900),
                ("10.0.0.2".parse().unwrap(), 60),
            ],
            guards: Vec::new(),
            skipped_entries: 0,
        };
        // Restore at t=100: entry 2 sat unrefreshed for 99 s > 90 s TTL.
        let reinstalled = b.restore_state(&snap, SimTime::from_secs(100), &mut routes);
        assert_eq!(
            reinstalled,
            vec![("10.0.0.1".parse().unwrap(), 100)],
            "out-of-bounds window clamped to c_max, stale route dropped"
        );
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 1)), Some(100));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 2)), None);
        assert_eq!(b.table().len(), 1);
        // The restored entry expires off its original stamp: by t=145
        // it is 95 s old and goes.
        let mut silent = FnObserver(Vec::new);
        let r = b.tick(SimTime::from_secs(145), &mut silent, &mut routes);
        assert_eq!(r.expired.len(), 1, "TTL kept running across restart");
    }

    #[test]
    fn restore_reseeds_history_on_strategy_mismatch() {
        // State persisted by an EWMA agent, restored into a
        // windowed-mean agent: blending the foreign variant would panic;
        // the restore must re-seed instead.
        let snap = crate::persist::TableSnapshot {
            taken_at: SimTime::from_secs(5),
            entries: vec![crate::persist::SnapshotEntry {
                key: "10.0.0.1".parse().unwrap(),
                window: 48,
                last_fresh: 48.0,
                last_updated: SimTime::from_secs(5),
                history: crate::history::HistoryState::Ewma { value: Some(48.0) },
            }],
            installs: vec![("10.0.0.1".parse().unwrap(), 48)],
            guards: Vec::new(),
            skipped_entries: 0,
        };
        let cfg = RiptideConfig::builder()
            .history(HistoryStrategy::WindowedMean { window: 3 })
            .build()
            .unwrap();
        let (mut b, mut routes) = agent(cfg);
        b.restore_state(&snap, SimTime::from_secs(6), &mut routes);
        // The next tick blends through the re-seeded window state
        // without panicking: mean(48, 90) = 69.
        let mut o = FnObserver(|| vec![obs([10, 0, 0, 1], 90)]);
        b.tick(SimTime::from_secs(7), &mut o, &mut routes);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 1)), Some(69));
    }

    #[test]
    fn merge_remote_applies_newest_wins_clamp_and_ttl() {
        use crate::sync::SyncEntry;
        use crate::telemetry::AgentTelemetry;

        let (mut a, mut routes) = agent(no_history());
        a.attach_telemetry(AgentTelemetry::standalone(16));
        // Local learns key 1 at t=10.
        let mut o = FnObserver(|| vec![obs([10, 0, 0, 1], 50)]);
        a.tick(SimTime::from_secs(10), &mut o, &mut routes);

        let delta = vec![
            // Older than local: ignored.
            SyncEntry {
                key: "10.0.0.1".parse().unwrap(),
                window: 90,
                last_updated: SimTime::from_secs(5),
            },
            // Unknown key, fresh, out-of-bounds window: clamp-merged.
            SyncEntry {
                key: "10.0.0.2".parse().unwrap(),
                window: 400,
                last_updated: SimTime::from_secs(95),
            },
            // Stamped 100 s before the merge instant — would already be
            // TTL-expired here (t=90): ignored.
            SyncEntry {
                key: "10.0.0.3".parse().unwrap(),
                window: 30,
                last_updated: SimTime::ZERO,
            },
        ];
        let accepted = a.merge_remote(&delta, SimTime::from_secs(100), &mut routes);
        assert_eq!(accepted, vec![("10.0.0.2".parse().unwrap(), 100)]);
        assert_eq!(a.stats().sync_merges, 1);
        assert_eq!(
            routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 1)),
            Some(50),
            "older remote does not clobber local"
        );
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 2)), Some(100));
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 3)), None);
        let records = a.telemetry().unwrap().journal().snapshot();
        assert!(records
            .iter()
            .any(|r| matches!(r.cause, DecisionCause::SyncMerged { clamped: true })));
        let snap = a.telemetry().unwrap().registry().snapshot();
        assert_eq!(snap.value("riptide_sync_merged_total"), Some(1));

        // A newer remote beats the local entry.
        let newer = vec![SyncEntry {
            key: "10.0.0.1".parse().unwrap(),
            window: 72,
            last_updated: SimTime::from_secs(101),
        }];
        let accepted = a.merge_remote(&newer, SimTime::from_secs(102), &mut routes);
        assert_eq!(accepted, vec![("10.0.0.1".parse().unwrap(), 72)]);
        assert_eq!(routes.initcwnd_for(Ipv4Addr::new(10, 0, 0, 1)), Some(72));

        // Re-merging the same delta is a no-op (ties keep local).
        assert!(a
            .merge_remote(&newer, SimTime::from_secs(103), &mut routes)
            .is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let (mut a, mut routes) = agent(no_history());
        let mut o = FnObserver(|| vec![obs([10, 0, 1, 1], 50)]);
        a.tick(SimTime::from_secs(1), &mut o, &mut routes);
        let mut silent = FnObserver(Vec::new);
        a.tick(SimTime::from_secs(100), &mut silent, &mut routes);
        let s = a.stats();
        assert_eq!(s.ticks, 2);
        assert_eq!(s.observations, 1);
        assert_eq!(s.route_updates, 1);
        assert_eq!(s.route_expirations, 1);
        assert_eq!(s.errors, 0);
    }
}
