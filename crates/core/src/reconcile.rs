//! Kernel-route reconciliation: an anti-entropy audit between what the
//! agent believes it installed and what the kernel actually holds.
//!
//! The agent's learned table and the kernel routing table are two copies
//! of the same state updated over an unreliable channel: an operator can
//! `ip route flush` our installs, a DHCP hook can rewrite the table, a
//! crashed predecessor can leave orphans behind, and a config-management
//! run can inject routes that *look* like ours. Left alone, the copies
//! drift — and every drifted route is either a lost jump-start (deleted
//! install) or a stale window of unknown age (orphan), both of which
//! break the paper's §IV-D no-harm argument.
//!
//! The audit cycle is one pass of classic anti-entropy repair:
//!
//! 1. **Dump** the kernel state (`ip route show`, parsed leniently so one
//!    unparseable foreign route cannot abort the audit).
//! 2. **Diff** it against the agent's installed view.
//! 3. **Repair**: re-install missing or rewritten routes, withdraw
//!    orphans that carry Riptide's exact signature, and *count but never
//!    touch* everything else — foreign routes are someone else's.
//!
//! Riptide's signature is `proto static` + an `initcwnd` attribute, the
//! same predicate startup recovery uses
//! ([`crate::control::recover_stale_routes`]). A route missing either
//! half of the signature is foreign by definition, even when it sits at a
//! prefix the agent owns: the conflict is reported, not resolved, because
//! overwriting an operator's deliberate route is worse drift than living
//! with it.

use std::collections::BTreeMap;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_linuxnet::route::{RouteAttrs, RouteProto, RouteTable};

use crate::control::{ControlError, RouteController};

/// Whether a route carries Riptide's install signature (`proto static`
/// with an `initcwnd` attribute) and may therefore be repaired or
/// withdrawn by the reconciler.
pub fn is_riptide_route(attrs: &RouteAttrs) -> bool {
    attrs.proto == RouteProto::Static && attrs.initcwnd.is_some()
}

/// The overall outcome of one audit cycle, summarising an
/// [`AuditReport`] for counters and the decision journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The kernel already agreed with the expected view.
    Converged,
    /// Drift was found and every repair succeeded.
    Repaired,
    /// At least one repair was rejected by the controller.
    Failed,
}

/// What one audit cycle found and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Expected routes that were missing or rewritten in the kernel and
    /// were re-installed: `(key, window)`.
    pub reinstalled: Vec<(Ipv4Prefix, u32)>,
    /// Riptide-signature routes present in the kernel with no matching
    /// expectation — orphans — that were withdrawn.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Expected routes found present and correct.
    pub in_sync: usize,
    /// Kernel routes without Riptide's signature: observed, counted,
    /// never modified. Includes foreign routes squatting on a key the
    /// agent expects (those also suppress the re-install).
    pub foreign_seen: usize,
    /// Repairs the controller rejected.
    pub errors: Vec<ControlError>,
}

impl AuditReport {
    /// Total repairs performed (re-installs + withdrawals).
    pub fn repairs(&self) -> usize {
        self.reinstalled.len() + self.withdrawn.len()
    }

    /// Whether the kernel already agreed with the expected view.
    pub fn converged(&self) -> bool {
        self.repairs() == 0 && self.errors.is_empty()
    }

    /// Collapses the report into its [`AuditVerdict`].
    pub fn verdict(&self) -> AuditVerdict {
        if !self.errors.is_empty() {
            AuditVerdict::Failed
        } else if self.repairs() > 0 {
            AuditVerdict::Repaired
        } else {
            AuditVerdict::Converged
        }
    }
}

/// Runs one audit cycle: diffs `expected` (the agent's installed view)
/// against `kernel` (a parsed route dump) and issues repairs through
/// `controller`.
///
/// Re-installed windows are clamped into `bounds` (`[c_min, c_max]`)
/// so a corrupted expectation can never push an out-of-range window into
/// the kernel — the audit upholds the same invariant as
/// [`crate::control::CheckedController`].
pub fn audit<C>(
    expected: &BTreeMap<Ipv4Prefix, u32>,
    kernel: &RouteTable,
    bounds: (u32, u32),
    controller: &mut C,
) -> AuditReport
where
    C: RouteController + ?Sized,
{
    let (lo, hi) = bounds;
    assert!(lo <= hi, "empty window range [{lo}, {hi}]");
    let mut report = AuditReport::default();

    // Pass 1 over the kernel dump: count foreign routes, withdraw
    // Riptide-signature orphans.
    for route in kernel.iter() {
        if !is_riptide_route(&route.attrs) {
            report.foreign_seen += 1;
            continue;
        }
        if !expected.contains_key(&route.prefix) {
            match controller.clear_initcwnd(route.prefix) {
                Ok(()) => report.withdrawn.push(route.prefix),
                Err(e) => report.errors.push(e),
            }
        }
    }

    // Pass 2 over expectations: re-install what is missing or rewritten.
    for (&key, &want) in expected {
        let want = want.clamp(lo, hi);
        match kernel.get(key) {
            Some(route) if !is_riptide_route(&route.attrs) => {
                // A foreign route squats on our key. Counted in pass 1;
                // leave it alone rather than fight an operator.
            }
            Some(route) if route.attrs.initcwnd == Some(want) => report.in_sync += 1,
            // Missing entirely, or ours-but-rewritten (e.g. a stale
            // window from a predecessor): converge it to the expectation.
            _ => match controller.set_initcwnd(key, want) {
                Ok(()) => report.reinstalled.push((key, want)),
                Err(e) => report.errors.push(e),
            },
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> Ipv4Prefix {
        Ipv4Prefix::host(Ipv4Addr::new(10, 0, 1, n))
    }

    fn expected(pairs: &[(u8, u32)]) -> BTreeMap<Ipv4Prefix, u32> {
        pairs.iter().map(|&(n, w)| (key(n), w)).collect()
    }

    #[test]
    fn converged_state_is_a_no_op() {
        let mut kernel = RouteTable::new();
        kernel.set_initcwnd(key(1), 80).unwrap();
        kernel.set_initcwnd(key(2), 40).unwrap();
        let exp = expected(&[(1, 80), (2, 40)]);
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert!(report.converged());
        assert_eq!(report.in_sync, 2);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn externally_deleted_route_is_reinstalled() {
        let mut kernel = RouteTable::new();
        kernel.set_initcwnd(key(1), 80).unwrap();
        // key(2)'s route was deleted behind our back.
        let exp = expected(&[(1, 80), (2, 40)]);
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.reinstalled, vec![(key(2), 40)]);
        assert_eq!(report.in_sync, 1);
        assert_eq!(live.initcwnd_for(Ipv4Addr::new(10, 0, 1, 2)), Some(40));
    }

    #[test]
    fn rewritten_window_is_converged() {
        let mut kernel = RouteTable::new();
        kernel.set_initcwnd(key(1), 97).unwrap(); // someone changed 80 → 97
        let exp = expected(&[(1, 80)]);
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.reinstalled, vec![(key(1), 80)]);
        assert_eq!(live.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(80));
    }

    #[test]
    fn orphaned_riptide_route_is_withdrawn() {
        let mut kernel = RouteTable::new();
        kernel.set_initcwnd(key(9), 64).unwrap(); // crashed predecessor's
        let exp = BTreeMap::new();
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.withdrawn, vec![key(9)]);
        assert!(live.is_empty());
    }

    #[test]
    fn foreign_routes_are_counted_never_touched() {
        let mut kernel = RouteTable::new();
        // A kernel-proto route with initcwnd and a bare static route:
        // neither matches the signature.
        kernel
            .add(
                key(3),
                RouteAttrs {
                    proto: RouteProto::Kernel,
                    initcwnd: Some(10),
                    ..RouteAttrs::default()
                },
            )
            .unwrap();
        kernel
            .add("10.9.0.0/16".parse().unwrap(), RouteAttrs::default())
            .unwrap();
        let exp = BTreeMap::new();
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.foreign_seen, 2);
        assert!(report.withdrawn.is_empty() && report.reinstalled.is_empty());
        assert_eq!(live.len(), 2, "foreign routes untouched");
    }

    #[test]
    fn foreign_route_on_our_key_suppresses_reinstall() {
        let mut kernel = RouteTable::new();
        kernel
            .add(
                key(1),
                RouteAttrs {
                    proto: RouteProto::Boot,
                    via: Some(Ipv4Addr::new(192, 0, 2, 1)),
                    ..RouteAttrs::default()
                },
            )
            .unwrap();
        let exp = expected(&[(1, 80)]);
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.foreign_seen, 1);
        assert!(report.reinstalled.is_empty(), "never fight an operator");
        let got = live.get(key(1)).unwrap();
        assert_eq!(got.attrs.proto, RouteProto::Boot, "route left as-is");
    }

    #[test]
    fn reinstalls_are_clamped_into_bounds() {
        let kernel = RouteTable::new();
        // A corrupted expectation outside [10, 100]:
        let exp = expected(&[(1, 400), (2, 3)]);
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.reinstalled, vec![(key(1), 100), (key(2), 10)]);
        assert_eq!(live.initcwnd_for(Ipv4Addr::new(10, 0, 1, 1)), Some(100));
        assert_eq!(live.initcwnd_for(Ipv4Addr::new(10, 0, 1, 2)), Some(10));
    }

    #[test]
    fn mixed_drift_repairs_everything_in_one_cycle() {
        let mut kernel = RouteTable::new();
        kernel.set_initcwnd(key(1), 80).unwrap(); // in sync
        kernel.set_initcwnd(key(3), 55).unwrap(); // orphan
        kernel
            .add(
                "10.8.0.0/16".parse().unwrap(),
                RouteAttrs {
                    proto: RouteProto::Kernel,
                    ..RouteAttrs::default()
                },
            )
            .unwrap(); // foreign
        let exp = expected(&[(1, 80), (2, 40)]); // key(2) deleted externally
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.repairs(), 2);
        assert_eq!(report.in_sync, 1);
        assert_eq!(report.foreign_seen, 1);

        // A second audit against the repaired table converges.
        let repaired = live.clone();
        let report = audit(&exp, &repaired, (10, 100), &mut live);
        assert!(report.converged(), "{report:?}");
    }

    #[test]
    fn verdict_tracks_report_outcome() {
        let mut kernel = RouteTable::new();
        kernel.set_initcwnd(key(1), 80).unwrap();
        let exp = expected(&[(1, 80)]);
        let mut live = kernel.clone();
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.verdict(), AuditVerdict::Converged);

        let exp = expected(&[(1, 80), (2, 40)]);
        let report = audit(&exp, &kernel, (10, 100), &mut live);
        assert_eq!(report.verdict(), AuditVerdict::Repaired);
    }

    #[test]
    fn controller_failures_are_reported_not_fatal() {
        struct Refusing;
        impl RouteController for Refusing {
            fn set_initcwnd(&mut self, _: Ipv4Prefix, _: u32) -> Result<(), ControlError> {
                Err(ControlError::new("refused"))
            }
            fn clear_initcwnd(&mut self, _: Ipv4Prefix) -> Result<(), ControlError> {
                Err(ControlError::new("refused"))
            }
        }
        let mut kernel = RouteTable::new();
        kernel.set_initcwnd(key(9), 64).unwrap();
        let exp = expected(&[(1, 80)]);
        let report = audit(&exp, &kernel, (10, 100), &mut Refusing);
        assert_eq!(report.errors.len(), 2);
        assert!(!report.converged());
    }
}
