//! Operator advisories (§V "Additional Algorithms").
//!
//! The paper sketches feeding Riptide higher-level signals from the cloud
//! control plane: *"if a cloud system were able to provide it with higher
//! level information (e.g., the need to perform immediate load
//! balancing), it could be used to set more conservative congestion
//! windows to avoid sudden crowding."* This module realizes that hook:
//! an [`Advisory`] is runtime state an operator (or orchestrator) sets on
//! the agent, scaling or suspending what it installs without touching
//! what it *learns*.

/// A control-plane signal shaping the agent's route installs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Advisory {
    /// Normal operation: install learned windows as-is.
    #[default]
    Normal,
    /// Scale every installed window by `factor` — e.g. `0.5` while a
    /// load-balancing wave is about to move traffic onto paths whose
    /// history no longer predicts their load.
    Conservative {
        /// Multiplier in `(0, 1]` applied before clamping.
        factor: f64,
    },
    /// Keep learning (and expiring), but install no new windows. Useful
    /// during maintenance freezes.
    Suspend,
}

impl Advisory {
    /// Validates the advisory's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description if a conservative factor lies outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if let Advisory::Conservative { factor } = *self {
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(format!(
                    "conservative factor must be in (0, 1], got {factor}"
                ));
            }
        }
        Ok(())
    }

    /// Applies the advisory to a blended window value. Returns `None`
    /// when installs are suspended.
    pub fn shape(&self, value: f64) -> Option<f64> {
        match *self {
            Advisory::Normal => Some(value),
            Advisory::Conservative { factor } => Some(value * factor),
            Advisory::Suspend => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_passes_through() {
        assert_eq!(Advisory::Normal.shape(80.0), Some(80.0));
    }

    #[test]
    fn conservative_scales() {
        let a = Advisory::Conservative { factor: 0.5 };
        a.validate().unwrap();
        assert_eq!(a.shape(80.0), Some(40.0));
    }

    #[test]
    fn suspend_installs_nothing() {
        assert_eq!(Advisory::Suspend.shape(80.0), None);
    }

    #[test]
    fn validation_bounds_factor() {
        assert!(Advisory::Conservative { factor: 0.0 }.validate().is_err());
        assert!(Advisory::Conservative { factor: 1.5 }.validate().is_err());
        assert!(Advisory::Conservative { factor: 1.0 }.validate().is_ok());
        assert!(Advisory::Normal.validate().is_ok());
        assert!(Advisory::Suspend.validate().is_ok());
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(Advisory::default(), Advisory::Normal);
    }
}
