//! Per-destination combination strategies (§III-B "Combination
//! Algorithm").
//!
//! When several connections to the same destination are open at poll time,
//! their windows must be reduced to one number. The deployed system
//! averages; the paper sketches a more aggressive variant (the maximum
//! "represents the most the link is capable of handling") and a more
//! conservative one (weight each window by the traffic that has actually
//! passed through it, "information which is also available via ss").

use crate::observe::CwndObservation;

/// How simultaneous observations of one destination collapse to a single
/// window value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CombineStrategy {
    /// Arithmetic mean of the observed windows — the deployed choice.
    #[default]
    Average,
    /// Maximum observed window — the aggressive variant.
    Max,
    /// Mean of windows weighted by each connection's `bytes_acked` — the
    /// conservative variant (a barely-used connection's window says little
    /// about the path). Connections with zero traffic get a weight of one
    /// byte so a group of all-idle connections still produces a value.
    TrafficWeighted,
}

impl CombineStrategy {
    /// Collapses a non-empty group of observations to one window value.
    ///
    /// Returns `None` for an empty group (no information, no route).
    pub fn combine(self, group: &[CwndObservation]) -> Option<f64> {
        if group.is_empty() {
            return None;
        }
        Some(match self {
            CombineStrategy::Average => {
                group.iter().map(|o| o.cwnd as f64).sum::<f64>() / group.len() as f64
            }
            CombineStrategy::Max => group
                .iter()
                .map(|o| o.cwnd as f64)
                .fold(f64::NEG_INFINITY, f64::max),
            CombineStrategy::TrafficWeighted => {
                let total_weight: f64 = group.iter().map(|o| (o.bytes_acked.max(1)) as f64).sum();
                group
                    .iter()
                    .map(|o| o.cwnd as f64 * (o.bytes_acked.max(1)) as f64)
                    .sum::<f64>()
                    / total_weight
            }
        })
    }

    /// A short identifier for reports and benches.
    pub fn name(self) -> &'static str {
        match self {
            CombineStrategy::Average => "average",
            CombineStrategy::Max => "max",
            CombineStrategy::TrafficWeighted => "traffic-weighted",
        }
    }
}

impl std::fmt::Display for CombineStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn obs(cwnd: u32, bytes: u64) -> CwndObservation {
        CwndObservation {
            dst: Ipv4Addr::new(10, 0, 1, 1),
            cwnd,
            bytes_acked: bytes,
            retrans: 0,
            ecn_marks: 0,
        }
    }

    #[test]
    fn empty_group_yields_none() {
        for s in [
            CombineStrategy::Average,
            CombineStrategy::Max,
            CombineStrategy::TrafficWeighted,
        ] {
            assert_eq!(s.combine(&[]), None);
        }
    }

    #[test]
    fn average_is_the_papers_fig7() {
        // Fig. 7: observed windows averaging to 80 produce initcwnd 80.
        let group = [obs(60, 0), obs(80, 0), obs(100, 0)];
        assert_eq!(CombineStrategy::Average.combine(&group), Some(80.0));
    }

    #[test]
    fn max_is_aggressive() {
        let group = [obs(20, 0), obs(90, 0), obs(40, 0)];
        assert_eq!(CombineStrategy::Max.combine(&group), Some(90.0));
    }

    #[test]
    fn traffic_weighting_discounts_idle_connections() {
        // A big window on a connection that moved almost nothing should
        // barely count.
        let group = [obs(100, 10), obs(20, 1_000_000)];
        let v = CombineStrategy::TrafficWeighted.combine(&group).unwrap();
        assert!((19.0..21.0).contains(&v), "weighted value {v}");
        // Plain average would say 60.
        assert_eq!(CombineStrategy::Average.combine(&group), Some(60.0));
    }

    #[test]
    fn traffic_weighting_survives_all_zero_traffic() {
        let group = [obs(30, 0), obs(50, 0)];
        assert_eq!(
            CombineStrategy::TrafficWeighted.combine(&group),
            Some(40.0),
            "zero-traffic group degrades to plain average"
        );
    }

    #[test]
    fn single_observation_passes_through() {
        let group = [obs(42, 999)];
        for s in [
            CombineStrategy::Average,
            CombineStrategy::Max,
            CombineStrategy::TrafficWeighted,
        ] {
            assert_eq!(s.combine(&group), Some(42.0), "{s}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CombineStrategy::Average.to_string(), "average");
        assert_eq!(CombineStrategy::Max.to_string(), "max");
        assert_eq!(
            CombineStrategy::TrafficWeighted.to_string(),
            "traffic-weighted"
        );
    }
}
