//! §V "Overhead": the cost of one Riptide agent update cycle as the
//! number of observed connections grows. The paper argues the agent is
//! cheap because all work is a scheduled, local computation — this bench
//! quantifies that for our implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

use riptide::prelude::*;
use riptide_linuxnet::route::RouteTable;
use riptide_simnet::time::SimTime;

fn observations(conns: usize, destinations: usize) -> Vec<CwndObservation> {
    (0..conns)
        .map(|i| {
            let d = i % destinations;
            CwndObservation {
                dst: Ipv4Addr::new(10, (d / 256) as u8, (d % 256) as u8, 1),
                cwnd: 10 + (i % 90) as u32,
                bytes_acked: 1_000_000,
                retrans: 0,
                ecn_marks: 0,
            }
        })
        .collect()
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_tick");
    for &conns in &[10usize, 100, 1_000, 10_000] {
        let destinations = (conns / 3).max(1);
        group.bench_with_input(BenchmarkId::new("conns", conns), &conns, |b, _| {
            let obs = observations(conns, destinations);
            let mut agent = RiptideAgent::new(RiptideConfig::deployment()).unwrap();
            let mut routes = RouteTable::new();
            let mut t = 1u64;
            b.iter(|| {
                let mut observer = FnObserver(|| obs.clone());
                t += 1;
                agent.tick(SimTime::from_secs(t), &mut observer, &mut routes);
                black_box(agent.table().len())
            });
        });
    }
    group.finish();
}

fn bench_tick_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_tick_granularity");
    let obs = observations(3_000, 1_000);
    for (label, granularity) in [
        ("host", Granularity::Host),
        ("prefix24", Granularity::Prefix(24)),
    ] {
        group.bench_function(label, |b| {
            let cfg = RiptideConfig::builder()
                .granularity(granularity)
                .build()
                .unwrap();
            let mut agent = RiptideAgent::new(cfg).unwrap();
            let mut routes = RouteTable::new();
            let mut t = 1u64;
            b.iter(|| {
                let mut observer = FnObserver(|| obs.clone());
                t += 1;
                agent.tick(SimTime::from_secs(t), &mut observer, &mut routes);
                black_box(routes.len())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tick, bench_tick_granularity
}
criterion_main!(benches);
