//! Ablations over the §III-B design alternatives: what each combine /
//! history strategy costs per agent cycle. (The *quality* ablation —
//! what each alternative does to completion times — is the `ablation`
//! binary; this bench isolates compute cost.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

use riptide::prelude::*;
use riptide_linuxnet::route::RouteTable;
use riptide_simnet::time::SimTime;

fn observations() -> Vec<CwndObservation> {
    (0..2_000usize)
        .map(|i| {
            let d = i % 400;
            CwndObservation {
                dst: Ipv4Addr::new(10, (d / 250) as u8, (d % 250) as u8, 1),
                cwnd: 10 + (i % 120) as u32,
                bytes_acked: (i as u64 + 1) * 10_000,
                retrans: 0,
                ecn_marks: 0,
            }
        })
        .collect()
}

fn bench_combine_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_combine");
    let obs = observations();
    for combine in [
        CombineStrategy::Average,
        CombineStrategy::Max,
        CombineStrategy::TrafficWeighted,
    ] {
        group.bench_function(combine.name(), |b| {
            let cfg = RiptideConfig::builder().combine(combine).build().unwrap();
            let mut agent = RiptideAgent::new(cfg).unwrap();
            let mut routes = RouteTable::new();
            let mut t = 1u64;
            b.iter(|| {
                let mut observer = FnObserver(|| obs.clone());
                t += 1;
                agent.tick(SimTime::from_secs(t), &mut observer, &mut routes);
                black_box(routes.len())
            });
        });
    }
    group.finish();
}

fn bench_history_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_history");
    let obs = observations();
    for (label, history) in [
        ("ewma", HistoryStrategy::Ewma { alpha: 0.7 }),
        ("none", HistoryStrategy::None),
        ("windowed8", HistoryStrategy::WindowedMean { window: 8 }),
    ] {
        group.bench_function(label, |b| {
            let cfg = RiptideConfig::builder().history(history).build().unwrap();
            let mut agent = RiptideAgent::new(cfg).unwrap();
            let mut routes = RouteTable::new();
            let mut t = 1u64;
            b.iter(|| {
                let mut observer = FnObserver(|| obs.clone());
                t += 1;
                agent.tick(SimTime::from_secs(t), &mut observer, &mut routes);
                black_box(routes.len())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_combine_strategies, bench_history_strategies
}
criterion_main!(benches);
