//! Cost of the §II-B analytic model — used in tight loops by the
//! Fig. 3/4/6 generators, so it should be effectively free.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use riptide::model::{rtt_gain, rtts_for_bytes, transfer_time, DEFAULT_MSS};
use riptide_simnet::time::SimDuration;

fn bench_model(c: &mut Criterion) {
    c.bench_function("model_rtts_for_bytes", |b| {
        let mut size = 1_000u64;
        b.iter(|| {
            size = (size * 7 + 13) % 10_000_000 + 1;
            black_box(rtts_for_bytes(size, DEFAULT_MSS, 10))
        });
    });
    c.bench_function("model_gain_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for size in (1_000u64..1_000_000).step_by(10_000) {
                acc += rtt_gain(size, DEFAULT_MSS, 100, 10);
            }
            black_box(acc)
        });
    });
    c.bench_function("model_transfer_time", |b| {
        let rtt = SimDuration::from_millis(125);
        b.iter(|| black_box(transfer_time(100_000, DEFAULT_MSS, 10, rtt, true)));
    });
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
