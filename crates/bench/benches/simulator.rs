//! Simulator throughput: how much simulated transfer work the substrate
//! sustains per wall-clock second — the budget every figure run spends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use riptide_simnet::prelude::*;
use riptide_simnet::time::SimDuration;

fn run_transfers(flows: usize, bytes: u64, loss: f64) -> u64 {
    let mut w = World::new(TcpConfig::default(), 42);
    let a = w.add_pop();
    let b = w.add_pop();
    let h1 = w.add_host(a);
    let h2 = w.add_host(b);
    w.set_symmetric_path(
        a,
        b,
        PathConfig::with_delay(SimDuration::from_millis(40)).loss(loss),
    );
    for _ in 0..flows {
        w.open_and_transfer(h1, h2, bytes);
    }
    w.run_to_quiescence();
    let stats = w.stats();
    assert_eq!(stats.transfers_completed, flows as u64);
    stats.events_processed
}

fn bench_transfer_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_transfers");
    for &flows in &[10usize, 100] {
        group.throughput(Throughput::Elements(flows as u64));
        group.bench_with_input(
            BenchmarkId::new("lossless_100KB", flows),
            &flows,
            |b, &flows| b.iter(|| black_box(run_transfers(flows, 100_000, 0.0))),
        );
        group.bench_with_input(
            BenchmarkId::new("lossy1pct_100KB", flows),
            &flows,
            |b, &flows| b.iter(|| black_box(run_transfers(flows, 100_000, 0.01))),
        );
    }
    group.finish();
}

fn bench_cdn_deployment_minute(c: &mut Criterion) {
    use riptide_cdn::prelude::*;
    let mut group = c.benchmark_group("cdn_sim_minute");
    group.sample_size(10);
    for riptide in [false, true] {
        let label = if riptide { "riptide" } else { "control" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = CdnSimConfig {
                    testbed: TestbedConfig::tiny(5, 2, 11),
                    riptide: riptide.then(riptide::config::RiptideConfig::deployment),
                    probes: ProbeConfig {
                        interval: SimDuration::from_secs(20),
                        ..ProbeConfig::default()
                    },
                    organic: OrganicConfig::among(vec![0, 1], 0.5),
                    cwnd_sample_interval: SimDuration::from_secs(30),
                    probe_senders: None,
                    faults: riptide_simnet::fault::FaultPlan::none(),
                    reconcile_every: None,
                    telemetry: false,
                    persistence: None,
                    gossip: None,
                    track_ramp: false,
                };
                let mut sim = CdnSim::new(cfg);
                sim.run_for(SimDuration::from_secs(60));
                black_box(sim.probe_outcomes().len())
            });
        });
    }
    group.finish();
}

fn bench_parallel_engine(c: &mut Criterion) {
    use riptide_cdn::engine::RunPlan;
    use riptide_cdn::experiment::ExperimentScale;
    let mut scale = ExperimentScale::test();
    scale.duration = SimDuration::from_secs(120);
    let plan = RunPlan::cwnd_sweep(&scale, &[None, Some(50), Some(100), Some(200)], 1);
    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(plan.shards.len() as u64));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("cwnd_sweep_4shards", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(plan.run_with_threads(threads).total_events())),
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use riptide_simnet::event::EventQueue;
    use riptide_simnet::time::SimTime;
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_nanos(i * 7919 % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_transfer_batch, bench_cdn_deployment_minute, bench_parallel_engine, bench_event_queue
}
criterion_main!(benches);
