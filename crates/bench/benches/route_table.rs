//! Cost of the control-plane substrate: longest-prefix-match lookups
//! (the kernel-side cost every new connection pays) and route
//! install/replace cycles (the agent-side cost every update pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_linuxnet::route::{RouteAttrs, RouteTable};

fn filled_table(routes: usize) -> RouteTable {
    let mut t = RouteTable::new();
    for i in 0..routes as u32 {
        let addr = Ipv4Addr::from(0x0a00_0000 | i);
        t.add(Ipv4Prefix::host(addr), RouteAttrs::initcwnd(i % 200 + 1))
            .unwrap();
    }
    t
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_lookup");
    for &routes in &[16usize, 256, 4_096, 65_536] {
        let table = filled_table(routes);
        group.bench_with_input(BenchmarkId::new("routes", routes), &routes, |b, &routes| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(2_654_435_761) % routes as u32;
                let addr = Ipv4Addr::from(0x0a00_0000 | i);
                black_box(table.initcwnd_for(addr))
            });
        });
    }
    group.finish();
}

fn bench_replace(c: &mut Criterion) {
    c.bench_function("route_replace_cycle", |b| {
        let mut table = filled_table(1_024);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1) % 1_024;
            let addr = Ipv4Addr::from(0x0a00_0000 | i);
            table.replace(Ipv4Prefix::host(addr), RouteAttrs::initcwnd(50));
            black_box(table.len())
        });
    });
}

fn bench_ip_cmd_parse(c: &mut Criterion) {
    use riptide_linuxnet::ip_cmd::IpRouteCmd;
    c.bench_function("ip_cmd_parse_fig8", |b| {
        let line = "ip route add 10.0.0.127 dev eth0 proto static initcwnd 80 via 10.0.0.1";
        b.iter(|| black_box(line.parse::<IpRouteCmd>().unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_lookup, bench_replace, bench_ip_cmd_parse
}
criterion_main!(benches);
