//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! --scale test|quick|paper   run size (default: quick)
//! --seed N                   RNG seed override
//! --points N                 CDF resolution when printing series
//! --seeds N                  pool N independent replications
//! --threads N                worker threads (default: RIPTIDE_THREADS
//!                            or all cores)
//! --manifest PATH            write the JSON-lines run manifest here
//! --out PATH                 write the BENCH_*.json summary here
//!                            instead of the checked-in default (CI
//!                            smoke runs point this at a scratch dir
//!                            so baselines stay clean)
//! ```
//!
//! Simulation-backed binaries run through the parallel experiment
//! engine (`riptide_cdn::engine`): work is sharded per (arm × sender ×
//! replicate) and executed on a worker pool, and results are
//! bit-identical whatever the thread count.
//!
//! Output is plain aligned text with a `# comment` header naming the
//! figure, so runs can be diffed and redirected into EXPERIMENTS.md.

#![warn(missing_docs)]

use riptide_cdn::engine::{self, RunPlan, RunReport};
use riptide_cdn::experiment::ExperimentScale;
use riptide_cdn::stats::{Cdf, PercentileGain};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The experiment scale.
    pub scale: ExperimentScale,
    /// Points per printed CDF series.
    pub points: usize,
    /// Independent replications (distinct seeds) pooled into one result.
    pub seeds: usize,
    /// Worker threads; `None` defers to `RIPTIDE_THREADS` or the
    /// machine's core count.
    pub threads: Option<usize>,
    /// Where to write the JSON-lines run manifest, if anywhere.
    pub manifest: Option<std::path::PathBuf>,
    /// Override for the binary's `BENCH_*.json` output path; `None`
    /// keeps the checked-in default next to the workspace root.
    pub out: Option<std::path::PathBuf>,
}

/// Parses `std::env::args` into [`RunOptions`].
///
/// # Panics
///
/// Panics with a usage message on unknown flags or malformed values —
/// appropriate for a CLI entry point.
pub fn parse_args() -> RunOptions {
    let mut scale = ExperimentScale::quick();
    let mut points = 20usize;
    let mut seeds = 1usize;
    let mut threads = None;
    let mut manifest = None;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                scale = match value("--scale").as_str() {
                    "test" => ExperimentScale::test(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => panic!("unknown scale {other:?} (test|quick|paper)"),
                };
            }
            "--seed" => {
                scale.seed = value("--seed").parse().expect("--seed takes a number");
            }
            "--points" => {
                points = value("--points").parse().expect("--points takes a number");
            }
            "--seeds" => {
                seeds = value("--seeds")
                    .parse()
                    .expect("--seeds takes a positive number");
                assert!(seeds >= 1, "--seeds must be at least 1");
            }
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .expect("--threads takes a positive number");
                assert!(n >= 1, "--threads must be at least 1");
                threads = Some(n);
            }
            "--manifest" => {
                manifest = Some(std::path::PathBuf::from(value("--manifest")));
            }
            "--out" => {
                out = Some(std::path::PathBuf::from(value("--out")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: [--scale test|quick|paper] [--seed N] [--points N] [--seeds N] \
                     [--threads N] [--manifest PATH] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; try --help"),
        }
    }
    RunOptions {
        scale,
        points,
        seeds,
        threads,
        manifest,
        out,
    }
}

/// The `BENCH_*.json` path a binary should write: the `--out` override
/// when given, else `default` (the checked-in baseline location).
pub fn out_file(opts: &RunOptions, default: &str) -> std::path::PathBuf {
    opts.out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from(default))
}

/// Writes a bench summary to [`out_file`]'s resolution of the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_bench_json(opts: &RunOptions, default: &str, json: &str) {
    let path = out_file(opts, default);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
}

/// The worker-pool size these options resolve to.
pub fn resolved_threads(opts: &RunOptions) -> usize {
    opts.threads.unwrap_or_else(engine::default_threads)
}

/// Executes a plan on the configured worker pool, writing the run
/// manifest when `--manifest` was given.
///
/// # Panics
///
/// Panics if the manifest path cannot be written.
pub fn execute_plan(opts: &RunOptions, plan: &RunPlan) -> RunReport {
    let threads = resolved_threads(opts);
    eprintln!(
        "running {} ({} shards) on {} thread{}...",
        plan.name,
        plan.shards.len(),
        threads,
        if threads == 1 { "" } else { "s" }
    );
    let report = plan.run_with_threads(threads);
    if let Some(path) = &opts.manifest {
        std::fs::write(path, report.manifest_jsonl())
            .unwrap_or_else(|e| panic!("writing manifest {}: {e}", path.display()));
        eprintln!("manifest written to {}", path.display());
    }
    report
}

/// Prints a figure banner.
pub fn banner(figure: &str, what: &str) {
    println!("# {figure}: {what}");
}

/// Prints one CDF as `label, value, cumulative_probability` rows.
pub fn print_cdf_series(label: &str, cdf: &Cdf, points: usize) {
    if cdf.is_empty() {
        println!("{label:>16}  (no samples)");
        return;
    }
    for (value, p) in cdf.series(points) {
        println!("{label:>16}  {value:>12.2}  {p:>6.3}");
    }
}

/// Prints a one-line summary of a CDF.
pub fn print_cdf_summary(label: &str, cdf: &Cdf) {
    if cdf.is_empty() {
        println!("{label:>16}  (no samples)");
        return;
    }
    println!(
        "{label:>16}  n={:<7} min={:<10.2} p25={:<10.2} p50={:<10.2} p75={:<10.2} p90={:<10.2} max={:<10.2}",
        cdf.len(),
        cdf.min(),
        cdf.quantile(0.25),
        cdf.quantile(0.50),
        cdf.quantile(0.75),
        cdf.quantile(0.90),
        cdf.max()
    );
}

/// Prints a Fig. 15/16-style gain table.
pub fn print_gain_table(label: &str, gains: &[PercentileGain]) {
    println!("# {label}");
    println!(
        "{:>10} {:>14} {:>14} {:>9}",
        "percentile", "control_ms", "riptide_ms", "gain_%"
    );
    for g in gains {
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>9.1}",
            g.percentile,
            g.baseline,
            g.treated,
            g.gain * 100.0
        );
    }
}

/// Runs the paired probe experiment through the parallel engine —
/// sharded per (arm × sender × replicate), seed-paired across arms —
/// and pools the outcomes.
pub fn pooled_probe_comparison(opts: &RunOptions) -> riptide_cdn::experiment::ProbeComparison {
    let plan = RunPlan::probe_comparison(&opts.scale, opts.seeds as u32);
    execute_plan(opts, &plan).comparison()
}

/// Runs the paired probe experiment and prints a Figs. 12–14-style
/// report for one probe size: per sender PoP, per RTT bucket, control vs
/// Riptide completion-time CDF summaries.
pub fn run_probe_time_figure(opts: &RunOptions, size: u64, figure: &str, paper_note: &str) {
    use riptide_cdn::experiment::{completion_by_bucket, probe_sender_sites};

    banner(
        figure,
        &format!(
            "{} KB probe completion times by destination RTT bucket",
            size / 1000
        ),
    );
    eprintln!("running control and riptide arms...");
    let cmp = pooled_probe_comparison(opts);
    let senders = probe_sender_sites(&opts.scale);
    for &sender in &senders {
        let ctl = completion_by_bucket(&cmp.control, sender, size);
        let rip = completion_by_bucket(&cmp.riptide, sender, size);
        println!("\n## sender site {sender}");
        println!(
            "{:>12} {:>10} {:>9} {:>10} {:>10} {:>10}",
            "bucket", "arm", "n", "p50_ms", "p75_ms", "p90_ms"
        );
        for (bucket, cdf) in &ctl {
            print_bucket_row(&bucket.to_string(), "control", cdf);
            if let Some(r) = rip.get(bucket) {
                print_bucket_row(&bucket.to_string(), "riptide", r);
            }
        }
    }
    println!("\n# paper: {paper_note}");
}

fn print_bucket_row(bucket: &str, arm: &str, cdf: &Cdf) {
    if cdf.is_empty() {
        println!("{bucket:>12} {arm:>10}  (no samples)");
        return;
    }
    println!(
        "{:>12} {:>10} {:>9} {:>10.1} {:>10.1} {:>10.1}",
        bucket,
        arm,
        cdf.len(),
        cdf.median(),
        cdf.quantile(0.75),
        cdf.quantile(0.90)
    );
}

/// Runs the paired probe experiment and prints a Figs. 15/16-style
/// per-percentile gain report for one probe size, for both sender PoPs.
pub fn run_gain_figure(opts: &RunOptions, size: u64, figure: &str, paper_note: &str) {
    use riptide_cdn::experiment::{gain_by_percentile, probe_sender_sites};

    banner(
        figure,
        &format!(
            "fraction of completion-time gain by percentile, {} KB probes",
            size / 1000
        ),
    );
    eprintln!("running control and riptide arms...");
    let cmp = pooled_probe_comparison(opts);
    for &sender in &probe_sender_sites(&opts.scale) {
        let gains = gain_by_percentile(&cmp, sender, size);
        print_gain_table(&format!("sender site {sender}"), &gains);
        let best = gains
            .iter()
            .max_by(|a, b| a.gain.total_cmp(&b.gain))
            .expect("non-empty gain table");
        println!(
            "# best gain {:.1}% at p{}\n",
            best.gain * 100.0,
            best.percentile
        );
    }
    println!("# paper: {paper_note}");
}

/// Log-spaced file sizes between `lo` and `hi` bytes, inclusive.
pub fn log_spaced_sizes(lo: u64, hi: u64, points: usize) -> Vec<u64> {
    assert!(lo > 0 && hi > lo && points >= 2, "bad sweep bounds");
    let (l, h) = ((lo as f64).ln(), (hi as f64).ln());
    (0..points)
        .map(|i| (l + (h - l) * i as f64 / (points - 1) as f64).exp().round() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spacing_endpoints_and_monotonicity() {
        let s = log_spaced_sizes(1_000, 10_000_000, 9);
        assert_eq!(s.len(), 9);
        assert_eq!(s[0], 1_000);
        assert_eq!(*s.last().unwrap(), 10_000_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "bad sweep bounds")]
    fn log_spacing_rejects_degenerate() {
        let _ = log_spaced_sizes(10, 10, 5);
    }
}
