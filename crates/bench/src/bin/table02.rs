//! Table II: CDN PoPs with Riptide deployed, per continent.

use riptide_cdn::geo::{continent_counts, POP_SITES};

fn main() {
    println!("# Table II: CDN PoPs with Riptide deployed");
    println!("{:>15} {:>10}", "continent", "pop_count");
    let mut total = 0;
    for (continent, count) in continent_counts() {
        println!("{:>15} {:>10}", continent.to_string(), count);
        total += count;
    }
    println!("{:>15} {:>10}", "total", total);
    println!("\n# sites:");
    for site in &POP_SITES {
        println!(
            "{:>15}  {:<13} lat {:>7.2} lon {:>8.2}",
            site.continent.to_string(),
            site.name,
            site.lat,
            site.lon
        );
    }
}
