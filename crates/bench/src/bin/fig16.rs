//! Figure 16: fraction of gain by percentile, 100 KB probes — broader
//! improvements than Fig. 15 (gains from ~p30 in the EU case, all
//! percentiles in the NA case, up to ~25%).

use riptide_bench::{parse_args, run_gain_figure};

fn main() {
    let opts = parse_args();
    run_gain_figure(
        &opts,
        100_000,
        "Figure 16",
        "100KB probes: gains reach lower percentiles (p30+ EU, all NA), up to ~25%",
    );
}
